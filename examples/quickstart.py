#!/usr/bin/env python
"""Quickstart: build a random temporal clique and analyse it with one handle.

The "hostile clique" of the paper: every arc of the directed clique K_n is
available at exactly one uniformly random time in {1, …, n}.  Despite that
hostility, messages spread in Θ(log n) time (Theorem 4) — this script samples
a few instances and reads several exact quantities of each through a single
:class:`repro.NetworkAnalysis` handle, so each instance costs exactly one
batched all-pairs sweep however many columns the table prints.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import math
import sys

from repro import (
    NetworkAnalysis,
    complete_graph,
    flood_broadcast,
    foremost_journey,
    normalized_urtn,
)
from repro.io.tables import format_table


def main(n: int = 128, instances: int = 5, seed: int = 2014) -> None:
    clique = complete_graph(n, directed=True)
    rows = []
    for instance in range(instances):
        network = normalized_urtn(clique, seed=seed + instance)
        analysis = NetworkAnalysis(network)  # one sweep feeds every column
        broadcast = flood_broadcast(network, source=0)
        rows.append(
            {
                "instance": instance,
                "temporal_diameter": analysis.diameter,
                "TD / log n": analysis.diameter / math.log(n),
                "radius": analysis.radius,
                "mean_distance": round(analysis.average_distance, 2),
                "broadcast_time_from_0": broadcast.broadcast_time,
                "direct_wait_baseline": (n + 1) / 2,
            }
        )
    print(format_table(rows, title=f"Normalized uniform random temporal clique, n = {n}"))

    # Show one explicit foremost journey: the multi-hop route is much faster
    # than waiting for the direct (0, 1) arc.
    network = normalized_urtn(clique, seed=seed)
    journey = foremost_journey(network, 0, 1)
    direct_label = network.labels_of(0, 1)[0]
    print()
    print(f"Foremost journey 0 → 1: vertices {journey.vertices()}")
    print(f"  labels used {journey.labels()}  (arrival {journey.arrival_time})")
    print(f"  waiting for the direct arc instead would take until t = {direct_label}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    main(size)
