#!/usr/bin/env python
"""Batched multi-source temporal distances: the CSR time-arc engine.

Demonstrates the difference between looping a single-source kernel over every
vertex and advancing all sources at once with
:func:`repro.core.journeys.earliest_arrival_matrix` over the cached
:class:`~repro.core.timearc_csr.TimeArcCSR` layout.  Both paths are timed on
the same normalized random clique and cross-checked entry for entry; the
batched sweep also feeds :func:`repro.core.distances.temporal_distance_summary`
so the diameter, radius and average distance come out of a single pass.

Run:  python examples/batched_distances.py
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro import complete_graph, earliest_arrival_matrix, normalized_urtn
from repro.core.distances import (
    temporal_distance_matrix_reference,
    temporal_distance_summary,
)


def main() -> None:
    n = 64 if os.environ.get("REPRO_EXAMPLE_QUICK") else 192
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=2014)

    csr = network.timearc_csr  # built once, cached on the network
    print(f"normalized U-RT clique: n={n}, arcs={csr.num_arcs}, "
          f"label groups={csr.num_groups}, CSR size={csr.nbytes / 1024:.0f} KiB")

    start = time.perf_counter()
    batched = earliest_arrival_matrix(network)
    batched_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    looped = temporal_distance_matrix_reference(network)
    looped_ms = (time.perf_counter() - start) * 1e3

    assert np.array_equal(batched, looped), "engines disagree!"
    print(f"batched engine: {batched_ms:7.2f} ms for all {n}x{n} distances")
    print(f"looped path:    {looped_ms:7.2f} ms ({n} single-source sweeps)")
    print(f"speedup:        {looped_ms / batched_ms:7.1f}x")

    summary = temporal_distance_summary(network)
    print(f"temporal diameter = {summary.diameter}  (log n = {math.log(n):.1f}, "
          f"direct-edge wait ~ n/2 = {n / 2:.0f})")
    print(f"temporal radius   = {summary.radius}")
    print(f"average distance  = {summary.average_distance:.2f}")


if __name__ == "__main__":
    main()
