#!/usr/bin/env python
"""Scenario: buying random availability on a star network (Theorem 6).

A hub-and-spoke network (the star K_{1,n−1}) cannot be made temporally
reachable with a single random availability per link — the two hops through
the hub would need increasing labels.  How many random availabilities must be
bought per link?  This example sweeps the number of labels per edge, measures
the probability that all pairs can communicate, locates the empirical
threshold and reports the resulting Price of Randomness — all Θ(log n), as
Theorem 6 proves.

Run:  python examples/star_reachability_por.py
"""

from __future__ import annotations

import math
import os

from repro import (
    opt_labels_star,
    price_of_randomness,
    reachability_probability,
    star_graph,
    tree_broadcast_assignment,
)
from repro.analysis.thresholds import estimate_probability_threshold
from repro.core.guarantees import two_split_journey_probability_analytic
from repro.io.tables import format_table


def main(n: int = 256, trials: int = 40, seed: int = 3) -> None:
    star = star_graph(n)
    log_n = math.log(n)
    r_values = sorted({1, 2, 3, 4, 6, 8, int(log_n), int(2 * log_n), int(3 * log_n)})

    rows = []
    for r in r_values:
        probability = reachability_probability(star, r, trials=trials, seed=seed + r)
        rows.append(
            {
                "labels_per_edge_r": r,
                "P[all pairs reachable]": probability,
                "2-split prob (analytic, one pair)": two_split_journey_probability_analytic(n, r),
            }
        )
    print(format_table(rows, title=f"Star K_{{1,{n - 1}}}: reachability vs labels per edge"))

    threshold = estimate_probability_threshold(
        [float(r) for r in r_values],
        [row["P[all pairs reachable]"] for row in rows],
        target=0.9,
    )
    opt = opt_labels_star(n)
    deterministic = tree_broadcast_assignment(star)
    print()
    print(f"log n                          = {log_n:.2f}")
    print(f"empirical threshold r̂ (90%)    = {threshold:.2f}" if threshold else "no threshold found")
    if threshold:
        por = price_of_randomness(star, max(1, round(threshold)), opt=opt)
        print(f"OPT (deterministic, = 2m)      = {opt}  "
              f"(constructed assignment uses {deterministic.total_labels} labels)")
        print(f"Price of Randomness m·r̂/OPT    = {por:.2f}  (≈ r̂/2, i.e. Θ(log n))")
    print()
    print("Paying randomly costs a Θ(log n) factor over the optimal deterministic labelling.")


if __name__ == "__main__":
    if os.environ.get("REPRO_EXAMPLE_QUICK"):
        main(n=64, trials=15)
    else:
        main()
