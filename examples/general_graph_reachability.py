#!/usr/bin/env python
"""Scenario: provisioning random availability on arbitrary topologies (Theorems 7–8).

A network operator with no global coordination can only buy, per link, a number
of independent random availability slots.  Theorem 7 says 2·diam(G)·log n slots
per link always suffice for whp all-pairs temporal reachability; Theorem 8
bounds the resulting Price of Randomness.  This example runs the check on
several topologies (path, cycle, grid, hypercube, random tree) and also
verifies the deterministic "box" construction of Figure 3.

Run:  python examples/general_graph_reachability.py
"""

from __future__ import annotations

import math
import os

from repro import box_assignment, preserves_reachability, reachability_probability
from repro.core.price_of_randomness import (
    opt_labels_upper_bound,
    por_upper_bound_theorem8,
    price_of_randomness,
    r_sufficient_theorem7,
)
from repro.core.guarantees import minimal_labels_for_reachability
from repro.graphs.generators import cycle_graph, grid_graph, hypercube_graph, path_graph, random_tree
from repro.graphs.properties import diameter
from repro.io.tables import format_table


def main(trials: int = 15, seed: int = 11) -> None:
    graphs = {
        "path_24": path_graph(24),
        "cycle_24": cycle_graph(24),
        "grid_5x5": grid_graph(5, 5),
        "hypercube_5": hypercube_graph(5),
        "random_tree_24": random_tree(24, seed=seed),
    }
    rows = []
    for name, graph in graphs.items():
        d = diameter(graph)
        r_sufficient = max(1, int(math.ceil(r_sufficient_theorem7(graph.n, d))) + 1)
        prob = reachability_probability(graph, r_sufficient, trials=trials, seed=seed)
        r_hat = minimal_labels_for_reachability(
            graph, target_probability=0.9, trials=trials, r_max=4 * r_sufficient, seed=seed
        )
        box_ok = preserves_reachability(box_assignment(graph, mode="random", seed=seed))
        rows.append(
            {
                "graph": name,
                "n": graph.n,
                "m": graph.m,
                "diam": d,
                "2·d·log n (Thm 7)": r_sufficient_theorem7(graph.n, d),
                "P[reach] at sufficient r": prob,
                "empirical r̂ (90%)": r_hat,
                "measured PoR": price_of_randomness(graph, r_hat, opt=opt_labels_upper_bound(graph)),
                "Thm 8 PoR bound": por_upper_bound_theorem8(graph.n, graph.m, d),
                "box assignment ok": box_ok,
            }
        )
    print(format_table(rows, title="Random availability on general graphs (Theorems 7–8, Figure 3)"))
    print()
    print("Every topology is reachable whp at the Theorem 7 label budget, the measured")
    print("Price of Randomness stays below the Theorem 8 bound, and the deterministic")
    print("box labelling (Figure 3 / Claim 1) preserves reachability exactly.")


if __name__ == "__main__":
    if os.environ.get("REPRO_EXAMPLE_QUICK"):
        main(trials=5)
    else:
        main()
