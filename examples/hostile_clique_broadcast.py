#!/usr/bin/env python
"""Scenario: covert information spread through a hostile, guarded network.

The paper's motivating story (§1): in a clique whose links are guarded except
for one random unguarded moment each, how fast can an adversary spread a
message?  This example sweeps the network size, runs the §3.5 flooding
protocol and the random phone-call push baseline, and fits the measured
broadcast times to c·log n — reproducing the "the hostile clique is not secure"
conclusion of Theorem 4 / §3.5.

Run:  python examples/hostile_clique_broadcast.py
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro import complete_graph, flood_broadcast, normalized_urtn, push_phone_call_broadcast
from repro.analysis.fitting import fit_log_model
from repro.io.tables import format_table


def main(sizes: tuple[int, ...] = (32, 64, 128, 256), trials: int = 8, seed: int = 7) -> None:
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        clique = complete_graph(n, directed=True)
        flood_times = []
        phone_rounds = []
        transmissions = []
        for _ in range(trials):
            network = normalized_urtn(clique, seed=rng)
            source = int(rng.integers(0, n))
            flood = flood_broadcast(network, source)
            phone = push_phone_call_broadcast(n, source=source, seed=rng)
            flood_times.append(flood.broadcast_time)
            phone_rounds.append(phone.broadcast_time)
            transmissions.append(flood.num_transmissions)
        rows.append(
            {
                "n": n,
                "log_n": math.log(n),
                "flood_broadcast_time": float(np.mean(flood_times)),
                "phone_call_rounds": float(np.mean(phone_rounds)),
                "flood_transmissions": float(np.mean(transmissions)),
                "direct_wait_baseline": (n + 1) / 2,
            }
        )
    print(format_table(rows, title="Broadcast on the hostile clique (means over trials)"))

    fit = fit_log_model([row["n"] for row in rows], [row["flood_broadcast_time"] for row in rows])
    print()
    print(
        f"flooding broadcast time ≈ {fit.coefficients[0]:.2f}·log n + "
        f"{fit.coefficients[1]:.2f}   (R² = {fit.r_squared:.3f})"
    )
    print("Θ(log n), exactly as Theorem 4 / §3.5 predict — the guards do not help.")


if __name__ == "__main__":
    if os.environ.get("REPRO_EXAMPLE_QUICK"):
        main(sizes=(16, 32, 64), trials=3)
    else:
        main()
