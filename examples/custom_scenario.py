"""Define and run a brand-new workload as a registry entry — no experiment module.

The scenario grid is (graph family × label model × metric suite).  This
example composes a new grid point from registered parts, adds one custom
metric, registers the scenario under a name, and runs it through the same
generic pipeline that powers E1–E9 — serially and with two worker processes,
checking the results are bit-identical.

Run:  PYTHONPATH=src python examples/custom_scenario.py
"""

from __future__ import annotations

import os

from repro.scenarios import (
    METRICS,
    GraphFamilySpec,
    LabelModelSpec,
    MetricSpec,
    MetricSuite,
    Scenario,
    ScenarioScale,
    SweepBlock,
    get_scenario,
    register_metric,
    register_scenario,
    run_scenario,
)

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"


def hub_eccentricity(ctx, options):
    """Custom metric: how long the wheel's hub needs to reach every rim vertex."""
    del options
    from repro.core.journeys import earliest_arrival_times

    network = ctx.require_network("hub_eccentricity")
    arrivals = earliest_arrival_times(network, source=0)
    return {"hub_eccentricity": float(arrivals[1:].max())}


if "hub_eccentricity" not in METRICS:
    register_metric("hub_eccentricity", hub_eccentricity)

SCENARIO = Scenario(
    name="wheel-multilabel-diameter",
    title="Multi-label temporal diameter on wheels",
    description=(
        "Temporal diameter of the wheel W_n and the hub's broadcast "
        "eccentricity vs labels per edge"
    ),
    graph=GraphFamilySpec("wheel", {"n": "n"}),
    labels=LabelModelSpec(model="uniform", labels_per_edge="r", lifetime="n"),
    # A single random label rarely makes the sparse wheel temporally
    # connected, so read reachability-aware statistics rather than the
    # (often infinite) diameter.
    metrics=MetricSuite.of(
        MetricSpec(
            "distance_summary",
            {"fields": ["mean_temporal_distance", "reachable_fraction"]},
        ),
        "hub_eccentricity",
    ),
    scales={
        "quick": ScenarioScale(
            repetitions=4,
            blocks=(SweepBlock(axes={"n": [12, 24], "r": [1, 2, 4]}),),
        ),
        "default": ScenarioScale(
            repetitions=12,
            blocks=(SweepBlock(axes={"n": [16, 32, 64], "r": [1, 2, 4, 8]}),),
        ),
    },
    default_seed=99,
)

register_scenario(SCENARIO, replace=True)


def main() -> None:
    scale = "quick" if QUICK else "default"
    scenario = get_scenario("wheel-multilabel-diameter")
    print(f"scenario: {scenario.name} — {scenario.title} [scale={scale}]")

    serial = run_scenario(scenario, scale=scale, seed=7)
    parallel = run_scenario(scenario, scale=scale, seed=7, jobs=2)
    assert serial.to_records() == parallel.to_records(), "jobs=2 must be bit-identical"

    print(f"{'n':>4} {'r':>3} {'mean dist':>10} {'reach frac':>11} {'hub ecc':>9}")
    for record in serial.to_records():
        print(
            f"{record['param_n']:>4} {record['param_r']:>3} "
            f"{record['mean_temporal_distance_mean']:>10.2f} "
            f"{record['reachable_fraction_mean']:>11.2f} "
            f"{record['hub_eccentricity_mean']:>9.2f}"
        )

    # The definition is data: it round-trips through JSON unchanged.
    from repro.scenarios import Scenario as ScenarioCls

    assert ScenarioCls.from_json(scenario.to_json()) == scenario
    print("scenario JSON round-trip OK; serial == jobs=2 (bit-identical)")


if __name__ == "__main__":
    main()
