#!/usr/bin/env python
"""The `NetworkAnalysis` handle: many quantities, one sweep per instance.

Demonstrates the memoized per-instance analysis API on the paper's normalized
random clique:

* read diameter/radius/mean distance/reachability from one shared sweep,
  with a scoped `compute_events()` probe proving the arrival matrix was built
  exactly once;
* derive the Theorem 5 labels-≤-k restriction *without* a second sweep and
  plot the prefix diameter profile;
* run a memoized Expansion Process trace and a Price-of-Randomness audit on
  the same handle.

Run:  python examples/analysis_handle.py
"""

from __future__ import annotations

import os

from repro import UNREACHABLE, NetworkAnalysis, complete_graph, compute_events, normalized_urtn
from repro.io.tables import format_table


def main(n: int = 96, seed: int = 2014) -> None:
    network = normalized_urtn(complete_graph(n, directed=True), seed=seed)

    with compute_events() as events:
        analysis = NetworkAnalysis(network)
        print(f"n = {n}: diameter {analysis.diameter}, radius {analysis.radius}, "
              f"mean distance {analysis.average_distance:.2f}, "
              f"reachable fraction {analysis.reachable_fraction:.2f}, "
              f"T_reach {analysis.preserves_reachability()}")
        sweeps = events.counts.get("arrival_matrix", 0)
        print(f"artifacts computed: {sorted(events.counts)}  (arrival sweeps: {sweeps})")
        assert sweeps == 1, "every quantity above shared one batched sweep"

        # Theorem 5 view: restrict to labels <= k.  Children derive their
        # arrival matrices from the parent's cache — no further sweeps.
        rows = []
        for k in range(2, analysis.diameter + 3, 2):
            child = analysis.restricted_to_max_label(k)
            diameter_at_k = child.diameter
            rows.append(
                {
                    "max_label k": k,
                    "diameter_at_k": (
                        "disconnected" if diameter_at_k >= UNREACHABLE else diameter_at_k
                    ),
                    "reachable_fraction": round(child.reachable_fraction, 3),
                }
            )
        print()
        print(format_table(rows, title="Prefix profile (derived, zero extra sweeps)"))
        assert events.counts["arrival_matrix"] == 1

        # Algorithm 1 and the PoR audit ride on the same handle, memoized.
        trace = analysis.expansion(0, n // 2)
        audit = analysis.por_audit()
        print()
        print(f"Expansion 0 → {n // 2}: success={trace.success}, "
              f"time bound {trace.time_bound:.1f}, "
              f"forward layers {trace.forward_layer_sizes}")
        print(f"PoR audit: r={audit.r}, OPT≤{audit.opt}, measured PoR "
              f"{audit.measured_por:.2f} (Theorem 8 bound {audit.theorem8_bound:.1f})")


if __name__ == "__main__":
    main(48 if os.environ.get("REPRO_EXAMPLE_QUICK") else 96)
