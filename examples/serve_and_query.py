#!/usr/bin/env python
"""The analysis service over plain HTTP — stdlib client, stdlib server.

Walks the whole serving loop with nothing but ``urllib``:

* start the service in-process on an ephemeral port (the same stack
  ``repro-experiments serve`` runs as a daemon);
* submit the ``clique-temporal-centrality`` scenario and poll the job to
  completion;
* fetch the persisted summaries by run fingerprint, then resubmit the
  identical scenario and watch it come back instantly ``from_store`` — the
  idempotent-by-fingerprint contract of the SQLite artifact store;
* answer point queries (harmonic centrality, reverse reachable set) against
  the bounded LRU of live analysis handles, where the second query hits the
  memoized artifacts of the first.

Run:  python examples/serve_and_query.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.request

from repro.service import serve


def call(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    quick = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
    scale = "quick" if quick else "default"

    with tempfile.TemporaryDirectory() as data_dir, \
            serve(data_dir=data_dir) as server:
        base = server.url
        health = call(base, "GET", "/healthz")
        print(f"service up at {base} (store schema v{health['schema_version']})")

        # -- submit a scenario run and poll it to completion ----------------
        body = {"scenario": "clique-temporal-centrality", "scale": scale}
        job = call(base, "POST", "/scenarios", body)
        print(f"submitted {job['id']}: state={job['state']} "
              f"fingerprint={job['fingerprint'][:12]}…")
        while True:
            snapshot = call(base, "GET", f"/jobs/{job['id']}")
            if snapshot["state"] in ("done", "failed"):
                break
            time.sleep(0.1)
        assert snapshot["state"] == "done", snapshot
        print(f"job finished: progress={snapshot['progress']:.0%}")

        # -- fetch the persisted result by fingerprint ----------------------
        result = call(base, "GET", f"/results/{job['fingerprint']}")
        for record in result["records"]:
            print(f"  n={record['param_n']}: mean closeness "
                  f"{record['mean_closeness_mean']:.4f} "
                  f"over {record['repetitions']} repetitions")
        print(f"engine wall-clock: {result['timings']['run_s']:.3f}s")

        # -- an identical resubmission is a pure store hit ------------------
        again = call(base, "POST", "/scenarios", body)
        assert again["from_store"] and again["state"] == "done", again
        print(f"resubmitted: served from store in "
              f"{again['finished_at'] - again['submitted_at']:.4f}s, "
              "zero new sweeps")

        # -- point queries against the live-handle cache --------------------
        n = 16 if quick else 64
        query = {
            "op": "centrality", "measure": "harmonic",
            "graph": {"family": "clique", "params": {"n": n}},
            "labels": {"model": "uniform", "lifetime": n},
            "seed": 2014,
        }
        cold = call(base, "POST", "/query", query)
        warm = call(base, "POST", "/query", query)
        assert not cold["cache_hit"] and warm["cache_hit"]
        assert warm["result"] == cold["result"]
        top = max(range(n), key=lambda v: cold["result"][v])
        print(f"harmonic centrality on the n={n} clique: "
              f"top vertex {top} at {cold['result'][top]:.4f} "
              f"(cold miss, then warm hit on the same handle)")

        reach = call(base, "POST", "/query",
                     dict(query, op="reverse_reachable_set", target=0))
        print(f"{len(reach['result'])}/{n} vertices can reach vertex 0 "
              f"(cache_hit={reach['cache_hit']})")

        stats = call(base, "GET", "/stats")
        print(f"stats: {stats['store']['runs_done']} stored run(s), "
              f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
              f"{stats['counters']['service.requests']} requests served")


if __name__ == "__main__":
    main()
