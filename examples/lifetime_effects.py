#!/usr/bin/env python
"""Scenario: the price of a long lifetime (Theorem 5).

When the availability times are spread over a window much longer than the
number of nodes (lifetime a ≫ n), dissemination slows down proportionally:
the temporal diameter grows like (a/n)·log n.  This example fixes n, sweeps
the lifetime multiplier and prints the measured temporal diameter, the
certified per-instance lower bound (the first time the revealed edges connect
the graph) and the (a/n)·log n reference curve.

Run:  python examples/lifetime_effects.py
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro import complete_graph, temporal_diameter, uniform_random_labels
from repro.core.lifetime import prefix_connectivity_time, temporal_diameter_lower_bound_theorem5
from repro.io.tables import format_table


def main(n: int = 64, multipliers: tuple[int, ...] = (1, 2, 4, 8, 16), trials: int = 6, seed: int = 5) -> None:
    clique = complete_graph(n, directed=True)
    rng = np.random.default_rng(seed)
    rows = []
    for multiplier in multipliers:
        lifetime = multiplier * n
        diameters = []
        certificates = []
        for _ in range(trials):
            network = uniform_random_labels(clique, lifetime=lifetime, seed=rng)
            diameters.append(temporal_diameter(network))
            certificates.append(prefix_connectivity_time(network))
        scale = temporal_diameter_lower_bound_theorem5(n, lifetime)
        rows.append(
            {
                "lifetime a": lifetime,
                "a / n": multiplier,
                "measured TD": float(np.mean(diameters)),
                "certified lower bound": float(np.mean(certificates)),
                "(a/n)·log n reference": scale,
                "TD / reference": float(np.mean(diameters)) / scale,
            }
        )
    print(format_table(rows, title=f"Temporal diameter vs lifetime on K_{n} (means over {trials} instances)"))
    print()
    print("The temporal diameter tracks (a/n)·log n — the lifetime dependence that")
    print("static models such as the random phone-call process cannot express (Theorem 5).")


if __name__ == "__main__":
    if os.environ.get("REPRO_EXAMPLE_QUICK"):
        main(n=32, multipliers=(1, 2, 4), trials=3)
    else:
        main()
