"""Tests for repro.core.guarantees: empirical r(n) and 2-split journeys."""

from __future__ import annotations

import math

import pytest

from repro.core.guarantees import (
    minimal_labels_for_reachability,
    minimal_labels_linear_sweep,
    reachability_probability,
    two_split_journey_probability,
    two_split_journey_probability_analytic,
)
from repro.exceptions import ConfigurationError
from repro.graphs.generators import complete_graph, path_graph, star_graph


class TestReachabilityProbability:
    def test_clique_single_label_is_always_reachable(self):
        probability = reachability_probability(
            complete_graph(8, directed=True), 1, trials=10, seed=0
        )
        assert probability == 1.0

    def test_star_single_label_never_reachable(self):
        probability = reachability_probability(star_graph(12), 1, trials=20, seed=0)
        assert probability == 0.0

    def test_star_many_labels_reachable(self):
        n = 16
        r = 4 * int(math.ceil(math.log(n)))
        probability = reachability_probability(star_graph(n), r, trials=20, seed=1)
        assert probability >= 0.9

    def test_probability_monotone_in_r(self):
        graph = star_graph(16)
        low = reachability_probability(graph, 2, trials=40, seed=2)
        high = reachability_probability(graph, 12, trials=40, seed=3)
        assert high >= low

    def test_reproducible(self):
        graph = path_graph(6)
        a = reachability_probability(graph, 4, trials=15, seed=5)
        b = reachability_probability(graph, 4, trials=15, seed=5)
        assert a == b

    def test_custom_lifetime(self):
        graph = star_graph(8)
        probability = reachability_probability(graph, 8, lifetime=2, trials=20, seed=6)
        # with labels drawn from {1, 2} and 8 draws per edge, each of the 7 edges
        # receives both labels with probability 1 − 2·2^{−8} ≈ 0.992, so the star
        # is reachable in most trials
        assert probability > 0.5


class TestMinimalLabels:
    def test_clique_needs_one_label(self):
        r = minimal_labels_for_reachability(
            complete_graph(8, directed=True), trials=10, seed=0
        )
        assert r == 1

    def test_star_threshold_is_plausible(self):
        n = 24
        r = minimal_labels_for_reachability(
            star_graph(n), target_probability=0.8, trials=20, seed=1
        )
        assert 2 <= r <= 6 * math.log(n)

    def test_linear_sweep_agrees_with_binary_search(self):
        graph = star_graph(16)
        binary = minimal_labels_for_reachability(
            graph, target_probability=0.8, trials=30, seed=7
        )
        linear = minimal_labels_linear_sweep(
            graph, target_probability=0.8, trials=30, seed=8, r_max=32
        )
        assert abs(binary - linear) <= 3  # Monte-Carlo noise tolerance

    def test_unreachable_target_raises(self):
        # A path with lifetime 1 can never satisfy both directions.
        with pytest.raises(ConfigurationError):
            minimal_labels_for_reachability(
                path_graph(4), lifetime=1, trials=5, r_max=4, seed=2
            )

    def test_linear_sweep_unreachable_raises(self):
        with pytest.raises(ConfigurationError):
            minimal_labels_linear_sweep(
                path_graph(4), lifetime=1, trials=5, r_max=3, seed=3
            )


class TestTwoSplitJourneys:
    def test_analytic_increases_with_r(self):
        values = [two_split_journey_probability_analytic(64, r) for r in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > 0.99

    def test_analytic_single_label(self):
        n = 64
        value = two_split_journey_probability_analytic(n, 1)
        labels_below = (n // 2) - 1  # labels strictly below n/2
        labels_above = n - n // 2  # labels strictly above n/2
        expected = (labels_below / n) * (labels_above / n)
        assert value == pytest.approx(expected)

    def test_monte_carlo_matches_analytic(self):
        n, r = 128, 5
        measured = two_split_journey_probability(n, r, trials=4000, seed=0)
        exact = two_split_journey_probability_analytic(n, r)
        assert measured == pytest.approx(exact, abs=0.04)

    def test_probability_bounds(self):
        value = two_split_journey_probability(32, 3, trials=500, seed=1)
        assert 0.0 <= value <= 1.0

    def test_theorem6_bound_holds(self):
        # P(2-split) >= (1 - 2^-r)^2 approximately (the paper's bound uses
        # halves of the label range); the analytic value should not be far below.
        n, r = 256, 10
        exact = two_split_journey_probability_analytic(n, r)
        assert exact >= (1 - 2 ** (-r)) ** 2 - 0.05
