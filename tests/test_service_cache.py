"""The bounded LRU of analysis handles: semantics, fingerprint reuse, load."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis_api import NetworkAnalysis, compute_events
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, star_graph
from repro.service.cache import AnalysisCache
from repro.telemetry import TelemetryRecorder, attach
from repro.utils.fingerprint import graph_fingerprint


def _network(n: int, *, lifetime: int = 8) -> TemporalGraph:
    graph = complete_graph(n, directed=True)
    return TemporalGraph(
        graph, {i: [1 + (i % lifetime)] for i in range(graph.m)}, lifetime=lifetime
    )


class TestLRUSemantics:
    def test_miss_then_hit(self):
        cache = AnalysisCache(capacity=4)
        network = _network(5)
        key, handle, hit = cache.get_or_create(network)
        assert not hit and key == graph_fingerprint(network)
        key2, handle2, hit2 = cache.get_or_create(network)
        assert hit2 and key2 == key and handle2 is handle
        assert cache.hits == 1 and cache.misses == 1

    def test_rebuilt_instance_hits_same_handle(self):
        """Two separately-built copies of the same network share one handle."""
        cache = AnalysisCache(capacity=4)
        _, handle_a, _ = cache.get_or_create(_network(6))
        _, handle_b, hit = cache.get_or_create(_network(6))
        assert hit and handle_b is handle_a

    def test_eviction_is_least_recently_used(self):
        cache = AnalysisCache(capacity=2)
        n_small, n_mid, n_big = _network(4), _network(5), _network(6)
        key_small, _, _ = cache.get_or_create(n_small)
        key_mid, _, _ = cache.get_or_create(n_mid)
        cache.get_or_create(n_small)  # refresh: mid is now LRU
        key_big, _, _ = cache.get_or_create(n_big)
        assert key_small in cache and key_big in cache
        assert key_mid not in cache
        assert cache.evictions == 1

    def test_evicted_entry_rebuilds_on_next_request(self):
        cache = AnalysisCache(capacity=1)
        cache.get_or_create(_network(4))
        cache.get_or_create(_network(5))  # evicts n=4
        _, handle, hit = cache.get_or_create(_network(4))
        assert not hit and handle.n == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisCache(capacity=0)

    def test_custom_factory(self):
        cache = AnalysisCache(capacity=2)
        seen = []

        def factory(network):
            seen.append(network.n)
            return NetworkAnalysis(network)

        cache.get_or_create(_network(4), factory=factory)
        cache.get_or_create(_network(4), factory=factory)
        assert seen == [4]

    def test_clear_drops_entries_but_keeps_stats(self):
        cache = AnalysisCache(capacity=4)
        cache.get_or_create(_network(4))
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1

    def test_telemetry_counters(self):
        cache = AnalysisCache(capacity=1)
        recorder = TelemetryRecorder()
        with attach(recorder):
            cache.get_or_create(_network(4))
            cache.get_or_create(_network(4))
            cache.get_or_create(_network(5))
        assert recorder.counters["service.cache.miss"] == 2
        assert recorder.counters["service.cache.hit"] == 1
        assert recorder.counters["service.cache.evict"] == 1


class TestAliasLayer:
    def test_alias_resolves_without_rebuild(self):
        cache = AnalysisCache(capacity=2)
        key, handle, _ = cache.get_or_create(_network(6))
        cache.alias("spec-abc", key)
        resolved = cache.get_by_alias("spec-abc")
        assert resolved is not None
        assert resolved == (key, handle)
        assert cache.hits == 1

    def test_unknown_alias_is_a_silent_none(self):
        cache = AnalysisCache(capacity=2)
        assert cache.get_by_alias("ghost") is None
        assert cache.misses == 0  # the rebuild path records the miss

    def test_alias_misses_after_handle_eviction(self):
        cache = AnalysisCache(capacity=1)
        key, _, _ = cache.get_or_create(_network(4))
        cache.alias("spec-abc", key)
        cache.get_or_create(_network(5))  # evicts the n=4 handle
        assert cache.get_by_alias("spec-abc") is None

    def test_alias_map_is_bounded(self):
        cache = AnalysisCache(capacity=1)
        key, _, _ = cache.get_or_create(_network(4))
        bound = cache.capacity * AnalysisCache.ALIASES_PER_SLOT
        for index in range(bound + 5):
            cache.alias(f"spec-{index}", key)
        assert len(cache._aliases) == bound

    def test_clear_drops_aliases(self):
        cache = AnalysisCache(capacity=2)
        key, _, _ = cache.get_or_create(_network(4))
        cache.alias("spec-abc", key)
        cache.clear()
        cache.get_or_create(_network(4))  # same fingerprint, fresh handle
        assert cache.get_by_alias("spec-abc") is None


class TestHandleReuseSavesComputes:
    def test_cached_handle_serves_artifacts_without_recompute(self):
        """The point of the cache: repeat queries reuse memoized artifacts."""
        cache = AnalysisCache(capacity=2)
        network = _network(8)
        _, handle, _ = cache.get_or_create(network)
        with compute_events() as events:
            first = handle.closeness()
        assert events.counts.get("centrality", 0) >= 1

        _, same_handle, hit = cache.get_or_create(_network(8))
        assert hit
        with compute_events() as events:
            second = same_handle.closeness()
        assert events.counts.get("centrality", 0) == 0  # pure cache hit
        np.testing.assert_array_equal(first, second)


class TestEvictionUnderLoad:
    def test_concurrent_mixed_workload_stays_bounded_and_correct(self):
        """Threads hammer a tiny cache with 8 distinct graphs; the bound and
        the key → handle mapping both survive constant eviction churn."""
        cache = AnalysisCache(capacity=3)
        sizes = list(range(4, 12))
        errors: list[str] = []
        barrier = threading.Barrier(6)

        def worker(offset: int) -> None:
            barrier.wait()
            for round_index in range(30):
                n = sizes[(offset + round_index) % len(sizes)]
                graph = star_graph(n)
                network = TemporalGraph(
                    graph, {i: [1 + i % 3] for i in range(graph.m)}, lifetime=4
                )
                _, handle, _ = cache.get_or_create(network)
                if handle.n != n:
                    errors.append(f"key collision: wanted n={n} got n={handle.n}")
                if len(cache) > cache.capacity:
                    errors.append(f"capacity exceeded: {len(cache)}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(cache) <= cache.capacity
        assert cache.evictions > 0
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 6 * 30
        assert 0.0 < stats["hit_rate"] < 1.0
