"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labeling import assign_deterministic_labels, normalized_urtn
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, path_graph, star_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by randomised tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_path() -> "TemporalGraph":
    """Path 0-1-2-3 with labels that allow 0→3 but not 3→0."""
    graph = path_graph(4)
    return assign_deterministic_labels(
        graph, {(0, 1): [1], (1, 2): [3], (2, 3): [5]}, lifetime=6
    )


@pytest.fixture
def two_label_star() -> "TemporalGraph":
    """Star on 5 vertices with labels {1, 2} per edge (the OPT assignment)."""
    graph = star_graph(5)
    labels = {(0, leaf): [1, 2] for leaf in range(1, 5)}
    return assign_deterministic_labels(graph, labels, lifetime=5)


@pytest.fixture
def random_clique_instance() -> "TemporalGraph":
    """A fixed normalized U-RT clique instance (directed, n = 24)."""
    graph = complete_graph(24, directed=True)
    return normalized_urtn(graph, seed=777)
