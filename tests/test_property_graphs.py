"""Property-based tests for the static graph substrate and G(n, p) helpers."""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.erdosrenyi.gnp import UnionFind, is_gnp_connected
from repro.graphs.conversion import to_networkx
from repro.graphs.properties import (
    all_pairs_shortest_paths,
    bfs_distances,
    connected_components,
    is_connected,
)
from repro.graphs.static_graph import StaticGraph


@st.composite
def static_graphs(draw, max_n: int = 8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    flags = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    edges = [edge for edge, keep in zip(possible, flags) if keep]
    return StaticGraph(n, edges)


@settings(max_examples=80, deadline=None)
@given(static_graphs())
def test_bfs_matches_networkx(graph):
    nx_graph = to_networkx(graph)
    for source in range(graph.n):
        expected = nx.single_source_shortest_path_length(nx_graph, source)
        ours = bfs_distances(graph, source)
        for v in range(graph.n):
            assert ours[v] == expected.get(v, -1)


@settings(max_examples=80, deadline=None)
@given(static_graphs())
def test_connected_components_partition_vertices(graph):
    components = connected_components(graph)
    flattened = sorted(v for component in components for v in component)
    assert flattened == list(range(graph.n))
    assert is_connected(graph) == (len(components) <= 1)


@settings(max_examples=50, deadline=None)
@given(static_graphs())
def test_shortest_path_matrix_is_symmetric_with_zero_diagonal(graph):
    matrix = all_pairs_shortest_paths(graph)
    assert np.array_equal(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)


@settings(max_examples=50, deadline=None)
@given(static_graphs())
def test_triangle_inequality_where_defined(graph):
    matrix = all_pairs_shortest_paths(graph)
    n = graph.n
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if matrix[i, k] >= 0 and matrix[k, j] >= 0 and matrix[i, j] >= 0:
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j]


@settings(max_examples=80, deadline=None)
@given(static_graphs())
def test_union_find_agrees_with_bfs_connectivity(graph):
    forest = UnionFind(max(graph.n, 1))
    for u, v in graph.edges():
        forest.union(u, v)
    components = connected_components(graph)
    assert forest.num_components == max(len(components), 1)
    edges = graph.edge_pairs
    tails = edges[:, 0] if edges.size else np.empty(0, dtype=np.int64)
    heads = edges[:, 1] if edges.size else np.empty(0, dtype=np.int64)
    assert is_gnp_connected(graph.n, tails, heads) == is_connected(graph)


@settings(max_examples=60, deadline=None)
@given(static_graphs(), st.data())
def test_subgraph_preserves_adjacency(graph, data):
    if graph.n == 0:
        return
    subset = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.n - 1),
            min_size=1,
            max_size=graph.n,
            unique=True,
        )
    )
    subset = sorted(subset)
    sub = graph.subgraph(subset)
    index = {vertex: i for i, vertex in enumerate(subset)}
    for u in subset:
        for v in subset:
            if u < v:
                assert graph.has_edge(u, v) == sub.has_edge(index[u], index[v])
