"""Tests for repro.core.labeling: random and deterministic assignments."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.labeling import (
    assign_deterministic_labels,
    box_assignment,
    normalized_urtn,
    tree_broadcast_assignment,
    uniform_random_labels,
)
from repro.core.reachability import preserves_reachability
from repro.exceptions import GraphError, LabelingError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import diameter
from repro.graphs.static_graph import StaticGraph
from repro.randomness.distributions import GeometricLabelDistribution


class TestUniformRandomLabels:
    def test_every_edge_gets_labels(self):
        graph = complete_graph(10)
        network = uniform_random_labels(graph, seed=0)
        assert all(len(labels) == 1 for _, labels in network.edge_label_items())

    def test_labels_within_lifetime(self):
        graph = complete_graph(12)
        network = uniform_random_labels(graph, lifetime=5, seed=1)
        assert network.lifetime == 5
        assert all(
            1 <= label <= 5
            for _, labels in network.edge_label_items()
            for label in labels
        )

    def test_multiple_labels_per_edge(self):
        graph = star_graph(8)
        network = uniform_random_labels(graph, labels_per_edge=6, lifetime=50, seed=2)
        counts = network.label_count_per_edge()
        assert counts.max() <= 6
        assert counts.min() >= 1

    def test_reproducibility(self):
        graph = complete_graph(8)
        a = uniform_random_labels(graph, seed=9)
        b = uniform_random_labels(graph, seed=9)
        assert a == b

    def test_distribution_must_match_lifetime(self):
        graph = path_graph(4)
        with pytest.raises(LabelingError):
            uniform_random_labels(
                graph, lifetime=10, distribution=GeometricLabelDistribution(5)
            )

    def test_custom_distribution_used(self):
        graph = complete_graph(20)
        dist = GeometricLabelDistribution(20, q=0.5)
        network = uniform_random_labels(graph, distribution=dist, seed=3)
        labels = [l for _, ls in network.edge_label_items() for l in ls]
        # A strongly front-loaded distribution should give a small mean label.
        assert np.mean(labels) < 5

    def test_empty_graph(self):
        graph = StaticGraph(3)
        network = uniform_random_labels(graph, lifetime=3, seed=0)
        assert network.total_labels == 0

    def test_uniform_labels_cover_range(self):
        graph = complete_graph(40)
        network = normalized_urtn(graph, seed=4)
        labels = np.asarray([l for _, ls in network.edge_label_items() for l in ls])
        # A uniform draw over {1..40} across 780 edges should span most of the range.
        assert labels.min() <= 3
        assert labels.max() >= 38


class TestNormalizedUrtn:
    def test_lifetime_equals_n(self):
        graph = complete_graph(17)
        network = normalized_urtn(graph, seed=0)
        assert network.lifetime == 17
        assert network.is_normalized

    def test_single_label_per_edge(self):
        graph = complete_graph(9, directed=True)
        network = normalized_urtn(graph, seed=0)
        assert network.total_labels == graph.m


class TestBoxAssignment:
    @pytest.mark.parametrize(
        "maker", [lambda: path_graph(7), lambda: cycle_graph(8), lambda: grid_graph(3, 3), lambda: star_graph(9)]
    )
    @pytest.mark.parametrize("mode", ["first", "middle", "random"])
    def test_preserves_reachability(self, maker, mode):
        graph = maker()
        network = box_assignment(graph, mode=mode, seed=5)
        assert preserves_reachability(network)

    def test_one_label_per_box(self):
        graph = path_graph(6)
        d = diameter(graph)
        network = box_assignment(graph, lifetime=30)
        assert all(len(labels) <= d for _, labels in network.edge_label_items())
        assert all(len(labels) >= 1 for _, labels in network.edge_label_items())

    def test_lifetime_smaller_than_diameter_rejected(self):
        graph = path_graph(10)
        with pytest.raises(LabelingError):
            box_assignment(graph, lifetime=3)

    def test_disconnected_rejected(self):
        graph = StaticGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            box_assignment(graph)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            box_assignment(path_graph(4), mode="banana")

    def test_labels_stay_within_boxes(self):
        graph = path_graph(5)
        q = 40
        d = diameter(graph)
        network = box_assignment(graph, lifetime=q, mode="random", seed=1)
        width = q / d
        for _, labels in network.edge_label_items():
            boxes = {math.ceil(label / width) for label in labels}
            assert len(boxes) == len(labels)


class TestTreeBroadcastAssignment:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star_graph(10),
            lambda: path_graph(9),
            lambda: grid_graph(4, 3),
            lambda: cycle_graph(7),
            lambda: complete_graph(6),
        ],
    )
    def test_preserves_reachability(self, maker):
        graph = maker()
        network = tree_broadcast_assignment(graph)
        assert preserves_reachability(network)

    def test_total_labels_at_most_2_n_minus_1(self):
        graph = grid_graph(4, 4)
        network = tree_broadcast_assignment(graph)
        assert network.total_labels <= 2 * (graph.n - 1)

    def test_star_realises_the_paper_opt(self):
        graph = star_graph(12)
        network = tree_broadcast_assignment(graph)
        # OPT = 2m for the star (Theorem 6): two labels on each of the m edges.
        assert network.total_labels == 2 * graph.m

    def test_custom_root(self):
        graph = path_graph(6)
        network = tree_broadcast_assignment(graph, root=3)
        assert preserves_reachability(network)

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            tree_broadcast_assignment(StaticGraph(4, [(0, 1), (2, 3)]))

    def test_too_small_lifetime_rejected(self):
        graph = path_graph(10)
        with pytest.raises(LabelingError):
            tree_broadcast_assignment(graph, lifetime=2)


class TestDeterministicAssignment:
    def test_mapping_applied(self):
        graph = star_graph(4)
        network = assign_deterministic_labels(graph, {(0, 1): [1, 2], (0, 2): [3]}, lifetime=5)
        assert network.labels_of(0, 1) == (1, 2)
        assert network.labels_of(0, 2) == (3,)
        assert network.labels_of(0, 3) == ()

    def test_unknown_edge_rejected(self):
        graph = star_graph(4)
        with pytest.raises(KeyError):
            assign_deterministic_labels(graph, {(1, 2): [1]})
