"""Brute-force journey-enumeration oracles for small temporal networks.

The production kernels (`repro.core.journeys`, `repro.core.reverse_journeys`,
the centrality family) all derive from the same label-grouped sweep machinery,
so an implementation bug could in principle hide on *both* sides of a
forward/reverse comparison.  These oracles share nothing with the kernels:
they enumerate journeys directly from the definition — simple paths (distinct
vertices) whose arc labels strictly increase — by depth-first search over the
raw time-arc list, and recompute every pinned quantity from those
enumerations.  They are exponential in ``n`` and meant for ``n <= 8``.

Conventions match the production kernels exactly:

* earliest arrival: ``start_time`` on the source itself, arcs usable only at
  labels ``> current arrival``, ``UNREACHABLE`` when no journey exists;
* latest departure: ``deadline + 1`` on the target itself, arcs usable only
  at labels ``<= deadline`` and strictly increasing along the journey,
  ``NEVER`` when no journey exists.

Restricting the enumeration to *simple* paths loses nothing: labels strictly
increase along a journey, so the first/last visit of a repeated vertex
dominates any non-simple journey for both objectives.
"""

from __future__ import annotations

import numpy as np

from repro import NEVER, UNREACHABLE
from repro.core.temporal_graph import TemporalGraph


def _out_arcs(network: TemporalGraph) -> dict[int, list[tuple[int, int]]]:
    """Adjacency ``tail -> [(label, head), ...]`` from the raw time arcs."""
    arcs: dict[int, list[tuple[int, int]]] = {}
    for tail, head, label in zip(
        network.time_arc_tails.tolist(),
        network.time_arc_heads.tolist(),
        network.time_arc_labels.tolist(),
    ):
        arcs.setdefault(tail, []).append((label, head))
    return arcs


def oracle_earliest_arrival_times(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> np.ndarray:
    """Earliest arrivals from ``source`` by exhaustive journey enumeration."""
    arrival = np.full(network.n, UNREACHABLE, dtype=np.int64)
    arrival[source] = start_time
    adjacency = _out_arcs(network)

    def extend(vertex: int, time: int, visited: frozenset[int]) -> None:
        for label, head in adjacency.get(vertex, ()):
            if label <= time or head in visited:
                continue
            if label < arrival[head]:
                arrival[head] = label
            extend(head, label, visited | {head})

    extend(source, start_time, frozenset([source]))
    return arrival


def oracle_latest_departure_times(
    network: TemporalGraph, target: int, *, deadline: int | None = None
) -> np.ndarray:
    """Latest departures towards ``target`` by exhaustive journey enumeration.

    Walks journeys *backwards* from the target: a journey suffix currently
    departing at ``time`` can be extended by any in-arc labelled strictly
    below ``time``.
    """
    if deadline is None:
        deadline = network.lifetime
    depart = np.full(network.n, NEVER, dtype=np.int64)
    depart[target] = deadline + 1
    in_arcs: dict[int, list[tuple[int, int]]] = {}
    for tail, head, label in zip(
        network.time_arc_tails.tolist(),
        network.time_arc_heads.tolist(),
        network.time_arc_labels.tolist(),
    ):
        if label <= deadline:
            in_arcs.setdefault(head, []).append((label, tail))

    def extend(vertex: int, time: int, visited: frozenset[int]) -> None:
        for label, tail in in_arcs.get(vertex, ()):
            if label >= time or tail in visited:
                continue
            if label > depart[tail]:
                depart[tail] = label
            extend(tail, label, visited | {tail})

    extend(target, deadline + 1, frozenset([target]))
    return depart


def oracle_arrival_matrix(network: TemporalGraph) -> np.ndarray:
    """All-pairs earliest arrivals, one enumeration per source."""
    return np.stack(
        [oracle_earliest_arrival_times(network, s) for s in range(network.n)]
    )


def oracle_departure_matrix(network: TemporalGraph) -> np.ndarray:
    """All-pairs latest departures, one enumeration per target."""
    return np.stack(
        [oracle_latest_departure_times(network, t) for t in range(network.n)]
    )


def oracle_distance_summary(network: TemporalGraph) -> dict[str, object]:
    """The all-pairs distance summary recomputed from the oracle arrivals.

    Pure-Python reduction sharing nothing with the production paths — neither
    the dense ``numpy`` reductions of :class:`repro.analysis_api
    .NetworkAnalysis` nor the blocked accumulators of
    :mod:`repro.core.blocked_sweeps` — so it pins both.  The mean is the
    correctly-rounded float of the exact integer ratio, which both production
    paths reproduce bit for bit at oracle scales.

    Returns plain fields (not a ``DistanceSummary``) plus the per-column
    ``reach_counts`` vector the blocked engine also streams.
    """
    n = network.n
    if n <= 1:
        return {
            "diameter": 0,
            "radius": 0,
            "average_distance": 0.0,
            "reachable_fraction": 1.0,
            "reach_counts": np.zeros(n, dtype=np.int64),
        }
    matrix = oracle_arrival_matrix(network)
    eccentricities = [max(int(matrix[s, v]) for v in range(n)) for s in range(n)]
    distances = [
        int(matrix[s, t])
        for s in range(n)
        for t in range(n)
        if s != t and matrix[s, t] < UNREACHABLE
    ]
    reach_counts = np.array(
        [
            sum(1 for s in range(n) if s != v and matrix[s, v] < UNREACHABLE)
            for v in range(n)
        ],
        dtype=np.int64,
    )
    return {
        "diameter": max(eccentricities),
        "radius": min(eccentricities),
        "average_distance": (
            sum(distances) / len(distances) if distances else float("nan")
        ),
        "reachable_fraction": len(distances) / (n * (n - 1)),
        "reach_counts": reach_counts,
    }


def oracle_reverse_distance_summary(network: TemporalGraph) -> dict[str, object]:
    """The reverse-direction distance summary from the oracle departures.

    Uses the production convention for reverse distances: a latest departure
    ``d`` towards the target means a temporal distance of
    ``(lifetime + 1) - d``; ``NEVER`` means unreachable.  The per-row
    statistics are per *target* (one oracle enumeration each), matching the
    blocked engine's ``direction="reverse"`` tiling.
    """
    n = network.n
    if n <= 1:
        return {
            "diameter": 0,
            "radius": 0,
            "average_distance": 0.0,
            "reachable_fraction": 1.0,
            "reach_counts": np.zeros(n, dtype=np.int64),
        }
    horizon = network.lifetime + 1
    departures = oracle_departure_matrix(network)
    distances_to = [
        [
            UNREACHABLE if departures[t, s] == NEVER else horizon - int(departures[t, s])
            for s in range(n)
        ]
        for t in range(n)
    ]
    eccentricities = [max(row) for row in distances_to]
    reachable = [
        distances_to[t][s]
        for t in range(n)
        for s in range(n)
        if s != t and distances_to[t][s] < UNREACHABLE
    ]
    reach_counts = np.array(
        [
            sum(1 for t in range(n) if t != s and distances_to[t][s] < UNREACHABLE)
            for s in range(n)
        ],
        dtype=np.int64,
    )
    return {
        "diameter": max(eccentricities),
        "radius": min(eccentricities),
        "average_distance": (
            sum(reachable) / len(reachable) if reachable else float("nan")
        ),
        "reachable_fraction": len(reachable) / (n * (n - 1)),
        "reach_counts": reach_counts,
    }


def oracle_centrality(network: TemporalGraph) -> dict[str, np.ndarray]:
    """The temporal-centrality family recomputed from the oracle arrivals."""
    n = network.n
    matrix = oracle_arrival_matrix(network)
    closeness = np.zeros(n, dtype=np.float64)
    harmonic = np.zeros(n, dtype=np.float64)
    influence = np.zeros(n, dtype=np.int64)
    reach = np.zeros(n, dtype=np.int64)
    for u in range(n):
        distances = [
            int(matrix[u, t])
            for t in range(n)
            if t != u and matrix[u, t] < UNREACHABLE
        ]
        influence[u] = len(distances)
        if distances:
            closeness[u] = len(distances) / sum(distances)
        if n > 1:
            harmonic[u] = sum(1.0 / d for d in distances) / (n - 1)
    for v in range(n):
        reach[v] = sum(
            1 for s in range(n) if s != v and matrix[s, v] < UNREACHABLE
        )
    return {
        "closeness": closeness,
        "harmonic": harmonic,
        "influence": influence,
        "reach": reach,
    }
