"""Tests for repro.utils.timing and repro.utils.logging."""

from __future__ import annotations

import logging

import pytest

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.timing import Timer, format_duration


class TestFormatDuration:
    def test_nanoseconds(self):
        assert format_duration(5e-9).endswith("ns")

    def test_microseconds(self):
        assert format_duration(5e-6).endswith("µs")

    def test_milliseconds(self):
        assert format_duration(5e-3).endswith("ms")

    def test_seconds(self):
        assert format_duration(5.0) == "5.00 s"

    def test_minutes(self):
        assert format_duration(300.0).endswith("min")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestTimer:
    def test_context_manager_records_elapsed(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0
        assert not timer.running

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_running_flag(self):
        timer = Timer()
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_str_includes_label(self):
        timer = Timer(label="fit")
        timer.start()
        timer.stop()
        assert str(timer).startswith("fit: ")


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("montecarlo")
        assert logger.name == "repro.montecarlo"

    def test_get_logger_root(self):
        assert get_logger().name == "repro"

    def test_already_qualified_name_not_doubled(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_enable_console_logging_is_idempotent(self):
        logger = enable_console_logging(logging.WARNING)
        handlers_before = len(logger.handlers)
        enable_console_logging(logging.WARNING)
        assert len(logger.handlers) == handlers_before
