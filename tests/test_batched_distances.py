"""Cross-validation of the batched multi-source engine against the references.

The batched engine (:func:`repro.core.journeys.earliest_arrival_matrix` over
the cached CSR time-arc layout) must agree *exactly* with the scalar
pure-Python reference on every kind of instance: directed and undirected
underlying graphs, graphs with unreachable pairs, multi-label edges, nonzero
start times and source subsets.  A hypothesis property test additionally pins
the batched temporal diameter to the diameter computed by looping the
single-source kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distances import (
    temporal_diameter,
    temporal_distance_matrix,
    temporal_distance_matrix_reference,
    temporal_distance_summary,
)
from repro.core.journeys import (
    earliest_arrival_matrix,
    earliest_arrival_times,
    earliest_arrival_times_reference,
)
from repro.core.labeling import normalized_urtn, uniform_random_labels
from repro.core.temporal_graph import TemporalGraph
from repro.core.timearc_csr import TimeArcCSR, build_timearc_csr
from repro.graphs.generators import complete_graph, erdos_renyi_graph, path_graph
from repro.graphs.static_graph import StaticGraph
from repro.types import UNREACHABLE


def reference_matrix(network: TemporalGraph, *, start_time: int = 0) -> np.ndarray:
    """All-pairs matrix built row by row from the scalar reference kernel."""
    rows = [
        earliest_arrival_times_reference(network, s, start_time=start_time)
        for s in range(network.n)
    ]
    return np.stack(rows, axis=0)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_scalar_reference_on_random_graphs(self, seed, directed):
        # Sparse ER graphs routinely contain unreachable pairs.
        graph = erdos_renyi_graph(17, 0.22, seed=seed, directed=directed)
        network = uniform_random_labels(
            graph, labels_per_edge=2, lifetime=11, seed=seed
        )
        assert np.array_equal(earliest_arrival_matrix(network), reference_matrix(network))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_reference_on_directed_clique(self, seed):
        network = normalized_urtn(complete_graph(24, directed=True), seed=seed)
        assert np.array_equal(earliest_arrival_matrix(network), reference_matrix(network))

    @pytest.mark.parametrize("start_time", [0, 1, 4, 9])
    def test_start_time_agrees_with_reference(self, start_time):
        network = normalized_urtn(complete_graph(16, directed=True), seed=3)
        batched = earliest_arrival_matrix(network, start_time=start_time)
        assert np.array_equal(batched, reference_matrix(network, start_time=start_time))

    def test_unreachable_pairs_are_marked(self, small_path):
        # The small_path fixture cannot route 3 -> 0.
        matrix = earliest_arrival_matrix(small_path)
        assert matrix[3, 0] == UNREACHABLE
        assert matrix[0, 3] < UNREACHABLE

    def test_matches_looped_vectorised_path(self, random_clique_instance):
        batched = earliest_arrival_matrix(random_clique_instance)
        looped = temporal_distance_matrix_reference(random_clique_instance)
        assert np.array_equal(batched, looped)


class TestSourceHandling:
    def test_source_subset_rows(self, random_clique_instance):
        matrix = earliest_arrival_matrix(random_clique_instance, [5, 0, 11])
        assert matrix.shape == (3, random_clique_instance.n)
        for row, source in zip(matrix, (5, 0, 11)):
            assert np.array_equal(row, earliest_arrival_times(random_clique_instance, source))

    def test_repeated_sources_allowed(self, random_clique_instance):
        matrix = earliest_arrival_matrix(random_clique_instance, [4, 4])
        assert np.array_equal(matrix[0], matrix[1])

    def test_empty_sources(self, random_clique_instance):
        matrix = earliest_arrival_matrix(random_clique_instance, [])
        assert matrix.shape == (0, random_clique_instance.n)

    def test_invalid_source_raises(self, random_clique_instance):
        with pytest.raises(ValueError):
            earliest_arrival_matrix(random_clique_instance, [random_clique_instance.n])

    def test_no_labels_network(self):
        network = TemporalGraph(path_graph(3), [[], []])
        matrix = earliest_arrival_matrix(network)
        off_diag = matrix[~np.eye(3, dtype=bool)]
        assert np.all(off_diag == UNREACHABLE)

    def test_result_is_c_contiguous(self, random_clique_instance):
        assert earliest_arrival_matrix(random_clique_instance).flags.c_contiguous


class TestCSRStructure:
    def test_cached_and_reused(self, random_clique_instance):
        csr = random_clique_instance.timearc_csr
        assert isinstance(csr, TimeArcCSR)
        assert random_clique_instance.timearc_csr is csr

    def test_layout_invariants(self, random_clique_instance):
        csr = build_timearc_csr(random_clique_instance)
        assert csr.num_arcs == random_clique_instance.num_time_arcs
        # Labels strictly increasing, offsets monotone and covering.
        assert np.all(np.diff(csr.labels) > 0)
        assert csr.arc_offsets[0] == 0 and csr.arc_offsets[-1] == csr.num_arcs
        assert np.all(np.diff(csr.arc_offsets) > 0)
        for group, (label, arc_slice) in enumerate(csr.iter_groups()):
            assert label == csr.labels[group]
            heads = csr.heads[arc_slice]
            # Heads sorted inside each group; head_values are the distinct
            # heads and head_starts point at the start of each head's run.
            assert np.all(np.diff(heads) >= 0)
            hlo, hhi = csr.head_offsets[group], csr.head_offsets[group + 1]
            assert np.array_equal(csr.head_values[hlo:hhi], np.unique(heads))
            starts = csr.head_starts[hlo:hhi]
            assert np.array_equal(heads[starts], csr.head_values[hlo:hhi])

    def test_arc_order_is_permutation_back_to_network(self, random_clique_instance):
        network = random_clique_instance
        csr = network.timearc_csr
        assert np.array_equal(np.sort(csr.arc_order), np.arange(csr.num_arcs))
        assert np.array_equal(network.time_arc_tails[csr.arc_order], csr.tails)
        assert np.array_equal(network.time_arc_heads[csr.arc_order], csr.heads)
        assert np.array_equal(
            network.time_arc_edge_index[csr.arc_order], csr.edge_index
        )

    def test_arrays_are_read_only(self, random_clique_instance):
        csr = random_clique_instance.timearc_csr
        with pytest.raises(ValueError):
            csr.tails[0] = 0

    def test_empty_network_layout(self):
        network = TemporalGraph(StaticGraph(3), [])
        csr = network.timearc_csr
        assert csr.num_arcs == 0 and csr.num_groups == 0
        assert csr.arc_offsets.tolist() == [0]


@st.composite
def random_temporal_networks(draw):
    """Small random temporal networks, directed or undirected, possibly sparse."""
    n = draw(st.integers(min_value=2, max_value=7))
    directed = draw(st.booleans())
    if directed:
        possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    else:
        possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    flags = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    edges = [edge for edge, keep in zip(possible, flags) if keep]
    graph = StaticGraph(n, edges, directed=directed)
    lifetime = draw(st.integers(min_value=1, max_value=9))
    labels = [
        draw(
            st.lists(
                st.integers(min_value=1, max_value=lifetime),
                min_size=0,
                max_size=3,
            )
        )
        for _ in range(graph.m)
    ]
    return TemporalGraph(graph, labels, lifetime=lifetime)


@given(network=random_temporal_networks())
@settings(max_examples=60, deadline=None)
def test_batched_diameter_equals_looped_diameter(network):
    """Property: the batched diameter matches the loop over per-source sweeps."""
    batched = temporal_diameter(network)
    looped_matrix = temporal_distance_matrix_reference(network)
    masked = looped_matrix.copy()
    np.fill_diagonal(masked, 0)
    looped = int(masked.max()) if network.n > 1 else 0
    assert batched == looped


@given(network=random_temporal_networks())
@settings(max_examples=40, deadline=None)
def test_batched_matrix_equals_scalar_reference(network):
    """Property: the full batched matrix matches the scalar reference kernel."""
    assert np.array_equal(earliest_arrival_matrix(network), reference_matrix(network))


def test_summary_consistent_with_matrix(random_clique_instance):
    summary = temporal_distance_summary(random_clique_instance)
    matrix = temporal_distance_matrix(random_clique_instance)
    assert summary.diameter == temporal_diameter(random_clique_instance)
    off = ~np.eye(random_clique_instance.n, dtype=bool)
    reachable = off & (matrix < UNREACHABLE)
    assert summary.reachable_fraction == pytest.approx(
        reachable.sum() / off.sum()
    )
    assert summary.average_distance == pytest.approx(float(matrix[reachable].mean()))
