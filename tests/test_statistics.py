"""Tests for repro.montecarlo.statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.montecarlo.statistics import (
    bootstrap_confidence_interval,
    normal_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample(self):
        stats = summarize([7.0])
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 7.0
        assert stats.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_contains_mean(self):
        stats = summarize(np.random.default_rng(0).normal(size=100))
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_relative_half_width(self):
        stats = summarize([10.0, 10.0, 10.0])
        assert stats.relative_half_width == 0.0
        zero_mean = summarize([-1.0, 1.0])
        assert math.isinf(zero_mean.relative_half_width)

    def test_relative_half_width_degenerate_zero_is_nan(self):
        # zero mean with a zero-width interval: the ratio is undefined, not inf
        assert math.isnan(summarize([0.0]).relative_half_width)
        assert math.isnan(summarize([0.0, 0.0, 0.0]).relative_half_width)

    def test_as_dict_keys(self):
        record = summarize([1.0, 2.0]).as_dict()
        assert set(record) == {
            "count",
            "mean",
            "std",
            "min",
            "max",
            "median",
            "ci_low",
            "ci_high",
        }


class TestNormalCI:
    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        small = normal_confidence_interval(rng.normal(size=20))
        large = normal_confidence_interval(rng.normal(size=2000))
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_is_wider(self):
        data = np.random.default_rng(2).normal(size=50)
        narrow = normal_confidence_interval(data, confidence=0.8)
        wide = normal_confidence_interval(data, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_coverage_is_approximately_nominal(self):
        rng = np.random.default_rng(3)
        covered = 0
        repetitions = 300
        for _ in range(repetitions):
            sample = rng.normal(loc=5.0, size=30)
            low, high = normal_confidence_interval(sample, confidence=0.9)
            covered += int(low <= 5.0 <= high)
        assert covered / repetitions == pytest.approx(0.9, abs=0.07)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normal_confidence_interval([])


class TestBootstrapCI:
    def test_interval_contains_sample_mean(self):
        data = np.random.default_rng(4).exponential(size=80)
        low, high = bootstrap_confidence_interval(data, seed=0)
        assert low <= float(np.mean(data)) <= high

    def test_single_value_degenerates(self):
        assert bootstrap_confidence_interval([3.0], seed=0) == (3.0, 3.0)

    def test_reproducible_with_seed(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_confidence_interval(data, seed=7) == bootstrap_confidence_interval(
            data, seed=7
        )

    def test_roughly_agrees_with_normal_ci(self):
        data = np.random.default_rng(5).normal(loc=10, size=200)
        normal_low, normal_high = normal_confidence_interval(data)
        boot_low, boot_high = bootstrap_confidence_interval(data, seed=1)
        assert abs(normal_low - boot_low) < 0.25
        assert abs(normal_high - boot_high) < 0.25

    def test_explicit_rng_path(self):
        # spawned generators give shards independent, reproducible bootstraps
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        from repro.utils.seeding import spawn_rngs

        first = bootstrap_confidence_interval(data, rng=spawn_rngs(7, 2)[0])
        again = bootstrap_confidence_interval(data, rng=spawn_rngs(7, 2)[0])
        other = bootstrap_confidence_interval(data, rng=spawn_rngs(7, 2)[1])
        assert first == again
        assert first != other

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(
                [1.0, 2.0], seed=1, rng=np.random.default_rng(2)
            )

    def test_rng_must_be_generator(self):
        with pytest.raises(TypeError):
            bootstrap_confidence_interval([1.0, 2.0], rng=123)
