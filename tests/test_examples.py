"""Integration tests: every example script runs end-to-end at reduced scale."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 4, "the deliverable requires at least three domain examples plus quickstart"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_QUICK", "1")
    if script.name == "quickstart.py":
        # quickstart reads the size from argv; keep it small for the test run
        monkeypatch.setattr(sys, "argv", [str(script), "48"])
    else:
        monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_quickstart_reports_logarithmic_diameter(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "64"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "temporal_diameter" in output
    assert "Foremost journey" in output
