"""Tests for repro.core.expansion: Algorithm 1 (the Expansion Process)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.expansion import ExpansionParameters, expansion_process
from repro.core.journeys import temporal_distance
from repro.core.labeling import normalized_urtn
from repro.exceptions import ExperimentError, GraphError
from repro.graphs.generators import complete_graph, path_graph


class TestExpansionParameters:
    def test_suggest_returns_valid_parameters(self):
        params = ExpansionParameters.suggest(256)
        assert params.c1 > 0 and params.c2 > 0 and params.d >= 1

    def test_suggest_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ExpansionParameters.suggest(3)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ValueError):
            ExpansionParameters(c1=-1.0, c2=8.0, d=1)
        with pytest.raises(ValueError):
            ExpansionParameters(c1=1.0, c2=8.0, d=0)

    def test_time_bound_formula(self):
        params = ExpansionParameters(c1=2.0, c2=4.0, d=3)
        n = 100
        assert params.time_bound(n) == pytest.approx(3 * 2.0 * math.log(n) + 2 * 3 * 4.0)

    def test_forward_intervals_are_contiguous(self):
        params = ExpansionParameters(c1=2.0, c2=4.0, d=3)
        n = 64
        previous_high = 0.0
        for i in range(1, params.d + 2):
            low, high = params.forward_interval(n, i)
            assert low == pytest.approx(previous_high)
            assert high > low
            previous_high = high
        # the matching interval starts where the forward layers end
        assert params.matching_interval(n)[0] == pytest.approx(previous_high)

    def test_backward_intervals_increase_as_i_decreases(self):
        params = ExpansionParameters(c1=2.0, c2=4.0, d=3)
        n = 64
        highs = [params.backward_interval(n, i)[1] for i in range(params.d + 1, 0, -1)]
        assert all(b > a for a, b in zip(highs, highs[1:]))

    def test_backward_chain_starts_after_matching_interval(self):
        params = ExpansionParameters(c1=2.0, c2=4.0, d=2)
        n = 64
        assert params.backward_interval(n, params.d + 1)[0] == pytest.approx(
            params.matching_interval(n)[1]
        )

    def test_interval_index_bounds(self):
        params = ExpansionParameters(c1=2.0, c2=4.0, d=2)
        with pytest.raises(ValueError):
            params.forward_interval(10, 0)
        with pytest.raises(ValueError):
            params.backward_interval(10, 4)


class TestExpansionProcess:
    @pytest.fixture(scope="class")
    def clique_instance(self):
        graph = complete_graph(96, directed=True)
        return normalized_urtn(graph, seed=42)

    def test_requires_clique(self):
        from repro.core.labeling import uniform_random_labels

        network = uniform_random_labels(path_graph(8), seed=0)
        with pytest.raises(GraphError):
            expansion_process(network, 0, 1)

    def test_requires_distinct_vertices(self, clique_instance):
        with pytest.raises(ExperimentError):
            expansion_process(clique_instance, 3, 3)

    def test_success_produces_valid_journey(self, clique_instance):
        result = expansion_process(clique_instance, 0, 1)
        assert result.success
        journey = result.journey
        assert journey is not None
        assert journey.source == 0 and journey.target == 1
        # every hop must exist in the instance with the stated label
        for edge in journey:
            assert clique_instance.has_time_edge(edge.u, edge.v, edge.label)

    def test_arrival_within_time_bound(self, clique_instance):
        result = expansion_process(clique_instance, 0, 1)
        assert result.success
        assert result.arrival_time <= result.time_bound

    def test_arrival_at_least_exact_distance(self, clique_instance):
        result = expansion_process(clique_instance, 2, 9)
        if result.success:
            exact = temporal_distance(clique_instance, 2, 9)
            assert result.arrival_time >= exact

    def test_layer_sizes_match_layers(self, clique_instance):
        result = expansion_process(clique_instance, 4, 11)
        assert [len(layer) for layer in result.forward_layers] == result.forward_layer_sizes
        assert [len(layer) for layer in result.backward_layers] == result.backward_layer_sizes

    def test_layers_exclude_endpoints(self, clique_instance):
        result = expansion_process(clique_instance, 4, 11)
        for layer in result.forward_layers:
            assert 4 not in layer and 11 not in layer
        for layer in result.backward_layers:
            assert 4 not in layer and 11 not in layer

    def test_layer_count_is_d_plus_one(self, clique_instance):
        params = ExpansionParameters.suggest(clique_instance.n)
        result = expansion_process(clique_instance, 0, 5, params)
        assert len(result.forward_layer_sizes) == params.d + 1
        assert len(result.backward_layer_sizes) == params.d + 1

    def test_success_rate_is_high_on_moderate_cliques(self):
        graph = complete_graph(64, directed=True)
        successes = 0
        trials = 10
        rng = np.random.default_rng(7)
        for trial in range(trials):
            network = normalized_urtn(graph, seed=rng)
            s, t = rng.choice(64, size=2, replace=False)
            result = expansion_process(network, int(s), int(t))
            successes += int(result.success)
        assert successes >= 7

    def test_undirected_clique_accepted(self):
        graph = complete_graph(48, directed=False)
        network = normalized_urtn(graph, seed=5)
        result = expansion_process(network, 0, 1)
        # Remark 1: the undirected analysis carries over; the run must at least
        # complete and produce consistent layer bookkeeping.
        assert len(result.forward_layer_sizes) >= 1
        if result.success:
            assert result.journey is not None
            assert result.arrival_time <= result.time_bound
