"""Tests for repro.core.price_of_randomness."""

from __future__ import annotations

import math

import pytest

from repro.core.price_of_randomness import (
    opt_labels_exhaustive,
    opt_labels_lower_bound,
    opt_labels_star,
    opt_labels_upper_bound,
    por_upper_bound_theorem8,
    price_of_randomness,
    r_sufficient_theorem7,
)
from repro.exceptions import ConfigurationError, GraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import diameter
from repro.graphs.static_graph import StaticGraph


class TestOptBounds:
    def test_star_opt_value(self):
        assert opt_labels_star(10) == 18  # 2·(n−1)
        assert opt_labels_star(3) == 4

    def test_star_opt_degenerate(self):
        assert opt_labels_star(1) == 0
        assert opt_labels_star(2) == 1

    def test_lower_bound_is_n_minus_one(self):
        assert opt_labels_lower_bound(path_graph(7)) == 6
        assert opt_labels_lower_bound(complete_graph(5)) == 4

    def test_lower_bound_requires_connected(self):
        with pytest.raises(GraphError):
            opt_labels_lower_bound(StaticGraph(4, [(0, 1)]))

    def test_upper_bound_general(self):
        assert opt_labels_upper_bound(path_graph(7)) == 12
        assert opt_labels_upper_bound(grid_graph(3, 3)) == 16

    def test_upper_bound_clique_uses_m(self):
        graph = complete_graph(4)
        assert opt_labels_upper_bound(graph) == min(2 * 3, graph.m)

    def test_bounds_are_ordered(self):
        for graph in (path_graph(6), cycle_graph(7), star_graph(9), grid_graph(3, 4)):
            assert opt_labels_lower_bound(graph) <= opt_labels_upper_bound(graph)

    def test_star_upper_bound_matches_exact_opt(self):
        graph = star_graph(9)
        assert opt_labels_upper_bound(graph) == opt_labels_star(9)


class TestExhaustiveOpt:
    def test_single_edge(self):
        graph = path_graph(2)
        assert opt_labels_exhaustive(graph, lifetime=2) == 1

    def test_path_of_three_needs_three_labels(self):
        # Edges {0,1} and {1,2}: two labels on one of them plus one on the other
        # give journeys in both directions (e.g. {1,3} and {2}).
        graph = path_graph(3)
        assert opt_labels_exhaustive(graph, lifetime=3) == 3

    def test_triangle_needs_three_labels(self):
        graph = complete_graph(3)
        # One label per edge suffices on the clique, so OPT = m = 3.
        assert opt_labels_exhaustive(graph, lifetime=3) == 3

    def test_small_star_matches_formula(self):
        graph = star_graph(3)  # same as path of 3 through the centre
        assert opt_labels_exhaustive(graph, lifetime=3) <= opt_labels_star(3)

    def test_search_space_guard(self):
        with pytest.raises(ConfigurationError):
            opt_labels_exhaustive(grid_graph(3, 3))

    def test_exhaustive_within_analytic_bounds(self):
        graph = path_graph(3)
        value = opt_labels_exhaustive(graph, lifetime=4)
        assert opt_labels_lower_bound(graph) <= value <= opt_labels_upper_bound(graph)


class TestPriceOfRandomness:
    def test_definition(self):
        graph = star_graph(11)
        r = 7
        por = price_of_randomness(graph, r, opt=opt_labels_star(11))
        assert por == pytest.approx(graph.m * r / (2 * graph.m))
        assert por == pytest.approx(r / 2)

    def test_default_opt_is_upper_bound(self):
        graph = grid_graph(3, 3)
        por_default = price_of_randomness(graph, 5)
        por_explicit = price_of_randomness(graph, 5, opt=opt_labels_upper_bound(graph))
        assert por_default == por_explicit

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            price_of_randomness(star_graph(5), 0)


class TestTheoremBounds:
    def test_r_sufficient_formula(self):
        assert r_sufficient_theorem7(100, 3) == pytest.approx(6 * math.log(100))

    def test_por_bound_formula(self):
        n, m, d = 50, 120, 4
        expected = (2 * d * math.log(n)) * m / (n - 1)
        assert por_upper_bound_theorem8(n, m, d) == pytest.approx(expected)

    def test_por_bound_with_epsilon(self):
        base = por_upper_bound_theorem8(50, 120, 4)
        assert por_upper_bound_theorem8(50, 120, 4, epsilon=1.0) > base

    def test_por_bound_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            por_upper_bound_theorem8(50, 120, 4, epsilon=-1.0)

    def test_star_por_theorem6_consistency(self):
        # For the star (d = 2, m = n−1), Theorem 8 gives ≈ 4·log n, consistent
        # with the Θ(log n) statement of Theorem 6.
        n = 200
        bound = por_upper_bound_theorem8(n, n - 1, 2)
        assert bound == pytest.approx(4 * math.log(n))

    def test_measured_por_below_theorem8_bound(self):
        graph = star_graph(64)
        d = diameter(graph)
        r_hat = 8  # a plausible empirical threshold around log n
        measured = price_of_randomness(graph, r_hat, opt=opt_labels_star(64))
        assert measured <= por_upper_bound_theorem8(64, graph.m, d)
