"""Tiled-vs-dense parity harness for the out-of-core blocked sweep engine.

The contract under test (``src/repro/core/blocked_sweeps.py``): for every tile
size, every registered kernel backend, both sweep directions and every jobs
count, the blocked path's summaries are **bit-identical** to the dense
full-matrix path — tiling changes the memory profile, never a single bit of a
result.  The dense ``n ≤ 512``-class paths are the cross-validation oracle.

Degenerate coverage: the empty graph (no arcs at all — the fully-unreachable
NaN/sentinel regression pin), ``n ∈ {0, 1}``, a single source, and
``tile_size > n``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro import (
    NetworkAnalysis,
    complete_graph,
    erdos_renyi_graph,
    hypercube_graph,
    normalized_urtn,
    path_graph,
    star_graph,
    uniform_random_labels,
)
from repro.core import kernels
from repro.core.blocked_sweeps import (
    DEFAULT_TILE_SIZE,
    BlockedSummaryAccumulator,
    ExactDistanceMoments,
    blocked_sweep_summary,
    default_tile_size,
    resolve_tile_size,
    set_default_tile_size,
    streamed_distance_summary,
    streamed_reachable_fraction,
    summary_of_distance_matrix,
    tile_size_scope,
)
from repro.core.temporal_graph import TemporalGraph
from repro.exceptions import ConfigurationError
from repro.graphs.static_graph import StaticGraph
from repro.scenarios import get_scenario, run_scenario
from repro.types import UNREACHABLE


def _pool():
    """Structurally diverse instances, including partially-reachable ones."""
    return {
        "clique-directed": normalized_urtn(complete_graph(24, directed=True), seed=3),
        "clique-undirected": normalized_urtn(complete_graph(17), seed=0),
        "er-sparse": uniform_random_labels(
            erdos_renyi_graph(40, 0.08, directed=True, seed=7),
            lifetime=30,
            labels_per_edge=1,
            seed=11,
        ),
        "star": normalized_urtn(star_graph(21), seed=5),
        "path-r2": uniform_random_labels(
            path_graph(19), lifetime=25, labels_per_edge=2, seed=2
        ),
        "hypercube": normalized_urtn(hypercube_graph(5), seed=9),
    }


_POOL = _pool()

#: The fully-unreachable instance: vertices but not a single time arc.
_EMPTY = TemporalGraph(StaticGraph(6, []), [], lifetime=8)


@pytest.fixture(params=sorted(_POOL), ids=sorted(_POOL))
def network(request):
    return _POOL[request.param]


def backend_params():
    params = []
    for name in kernels.backend_names():
        reason = kernels.backend_unavailable_reason(name)
        marks = (
            [pytest.mark.skip(reason=f"backend {name!r}: {reason}")]
            if reason is not None
            else []
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


def assert_summary_identical(actual, expected):
    """Bit-identical DistanceSummary comparison with ``nan == nan``."""
    assert actual.diameter == expected.diameter
    assert actual.radius == expected.radius
    if math.isnan(expected.average_distance):
        assert math.isnan(actual.average_distance)
    else:
        assert actual.average_distance == expected.average_distance
    assert actual.reachable_fraction == expected.reachable_fraction


def _dense_forward(network):
    return NetworkAnalysis(network).summary


def _dense_reverse(network):
    """Dense reference for the reverse direction: the full distances-to
    matrix pushed through the exact dense reduction."""
    return summary_of_distance_matrix(NetworkAnalysis(network).distances_to())


# --------------------------------------------------------------------- #
# the tentpole contract: tiled == dense, bit for bit
# --------------------------------------------------------------------- #
class TestTiledVsDenseParity:
    @pytest.mark.parametrize("tile_size", [1, 7, 64, None], ids=["t1", "t7", "t64", "tN"])
    @pytest.mark.parametrize("direction", ["forward", "reverse"])
    def test_bit_identical_summaries(self, network, tile_size, direction):
        width = network.n if tile_size is None else tile_size
        dense = (
            _dense_forward(network) if direction == "forward" else _dense_reverse(network)
        )
        result = blocked_sweep_summary(network, tile_size=width, direction=direction)
        assert_summary_identical(result.summary, dense)

    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("direction", ["forward", "reverse"])
    def test_every_backend(self, network, backend, direction):
        dense = (
            _dense_forward(network) if direction == "forward" else _dense_reverse(network)
        )
        result = blocked_sweep_summary(
            network, tile_size=5, direction=direction, backend=backend
        )
        assert_summary_identical(result.summary, dense)

    def test_eccentricities_and_reach_counts(self, network):
        handle = NetworkAnalysis(network)
        result = blocked_sweep_summary(network, tile_size=7)
        np.testing.assert_array_equal(result.eccentricities, handle.eccentricities())
        reach = handle.reachability().copy()
        np.fill_diagonal(reach, False)
        np.testing.assert_array_equal(result.reach_counts, reach.sum(axis=0))

    def test_moments_match_dense_population(self, network):
        matrix = NetworkAnalysis(network).arrival_matrix()
        mask = matrix < UNREACHABLE
        np.fill_diagonal(mask, False)
        values = matrix[mask]
        result = blocked_sweep_summary(network, tile_size=4)
        assert result.moments.count == int(values.size)
        assert result.moments.total == int(values.sum(dtype=object))
        assert result.moments.minimum == int(values.min())
        assert result.moments.maximum == int(values.max())

    def test_free_function_delegates(self, network):
        dense = _dense_forward(network)
        assert_summary_identical(
            streamed_distance_summary(network, tile_size=6), dense
        )
        assert streamed_reachable_fraction(network, tile_size=6) == (
            dense.reachable_fraction
        )

    def test_result_metadata(self, network):
        n = network.n
        result = blocked_sweep_summary(network, tile_size=7)
        assert result.direction == "forward"
        assert result.tile_size == 7
        assert result.num_tiles == -(-n // 7)
        assert result.spill is None


# --------------------------------------------------------------------- #
# degenerate tiles
# --------------------------------------------------------------------- #
class TestDegenerateInstances:
    def test_fully_unreachable_nan_sentinel_regression(self):
        """The satellite-4 pin: a graph with no arcs must stream to exactly
        the dense conventions — UNREACHABLE diameter/radius, nan average
        (never a 0/0 error), 0.0 reachable fraction — at every tile size."""
        dense = NetworkAnalysis(_EMPTY).summary
        assert dense.diameter == UNREACHABLE
        assert math.isnan(dense.average_distance)
        for tile_size in (1, 2, 4, _EMPTY.n, _EMPTY.n + 5):
            streamed = blocked_sweep_summary(_EMPTY, tile_size=tile_size).summary
            assert_summary_identical(streamed, dense)
            assert streamed.reachable_fraction == 0.0

    def test_fully_unreachable_reverse(self):
        dense = _dense_reverse(_EMPTY)
        streamed = blocked_sweep_summary(
            _EMPTY, tile_size=2, direction="reverse"
        ).summary
        assert_summary_identical(streamed, dense)

    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_instances(self, n):
        network = TemporalGraph(StaticGraph(n, []), [], lifetime=3)
        for direction in ("forward", "reverse"):
            result = blocked_sweep_summary(network, tile_size=4, direction=direction)
            assert result.summary == NetworkAnalysis(network).summary
            assert result.summary.reachable_fraction == 1.0
            assert result.eccentricities.shape == (n,)

    def test_single_source_tile(self):
        """tile_size=1 streams one source row at a time (2n sweeps total)."""
        network = _POOL["star"]
        result = blocked_sweep_summary(network, tile_size=1)
        assert result.num_tiles == network.n
        assert_summary_identical(result.summary, _dense_forward(network))

    def test_tile_size_larger_than_n_is_one_tile(self, network):
        result = blocked_sweep_summary(network, tile_size=10 * network.n)
        assert result.num_tiles == 1
        assert result.tile_size == network.n
        assert_summary_identical(result.summary, _dense_forward(network))

    def test_invalid_arguments(self):
        network = _POOL["star"]
        with pytest.raises(ConfigurationError):
            blocked_sweep_summary(network, tile_size=0)
        with pytest.raises(ConfigurationError):
            blocked_sweep_summary(network, tile_size=-3)
        with pytest.raises(ConfigurationError):
            blocked_sweep_summary(network, direction="sideways")


# --------------------------------------------------------------------- #
# tile-size configuration
# --------------------------------------------------------------------- #
class TestTileSizeConfiguration:
    def test_resolution_order(self):
        assert default_tile_size() is None
        assert resolve_tile_size(None, 10_000) == DEFAULT_TILE_SIZE
        assert resolve_tile_size(17, 10_000) == 17
        with tile_size_scope(33):
            assert default_tile_size() == 33
            assert resolve_tile_size(None, 10_000) == 33
            # explicit argument still wins over the ambient default
            assert resolve_tile_size(5, 10_000) == 5
        assert default_tile_size() is None

    def test_clamped_to_instance(self):
        assert resolve_tile_size(1000, 12) == 12
        assert resolve_tile_size(None, 0) == 1
        assert resolve_tile_size(None, 1) == 1

    def test_scope_restores_on_error(self):
        set_default_tile_size(None)
        with pytest.raises(RuntimeError):
            with tile_size_scope(9):
                raise RuntimeError("boom")
        assert default_tile_size() is None

    def test_none_scope_is_noop(self):
        with tile_size_scope(7):
            with tile_size_scope(None):
                assert default_tile_size() == 7
            assert default_tile_size() == 7


# --------------------------------------------------------------------- #
# memmap spill
# --------------------------------------------------------------------- #
class TestSpill:
    def test_spill_holds_the_full_distance_matrix(self, tmp_path, network):
        path = tmp_path / "rows.npy"
        result = blocked_sweep_summary(network, tile_size=5, spill_path=path)
        assert result.spill is not None
        dense = NetworkAnalysis(network).arrival_matrix()
        np.testing.assert_array_equal(np.asarray(result.spill), dense)
        # the .npy file round-trips through ordinary numpy loading
        reloaded = np.load(path, mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(reloaded), dense)

    def test_reverse_spill_is_distances_to(self, tmp_path):
        network = _POOL["path-r2"]
        path = tmp_path / "rev.npy"
        result = blocked_sweep_summary(
            network, tile_size=4, direction="reverse", spill_path=path
        )
        np.testing.assert_array_equal(
            np.asarray(result.spill), NetworkAnalysis(network).distances_to()
        )


# --------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------- #
class TestTelemetry:
    def test_per_tile_counters(self, tmp_path):
        from repro import telemetry

        network = _POOL["clique-directed"]
        recorder = telemetry.TelemetryRecorder()
        with telemetry.attach(recorder):
            blocked_sweep_summary(
                network, tile_size=7, spill_path=tmp_path / "spill.npy"
            )
        expected_tiles = -(-network.n // 7)
        assert recorder.counters["blocked.tiles"] == expected_tiles
        assert recorder.counters["blocked.rows"] == network.n
        assert recorder.counters["blocked.spill_bytes"] == network.n * network.n * 8
        assert recorder.timings["blocked.tile_ms"].count == expected_tiles

    def test_no_recorder_no_counters(self):
        from repro import telemetry

        blocked_sweep_summary(_POOL["star"], tile_size=4)
        assert not telemetry.active()


# --------------------------------------------------------------------- #
# the analysis handle surface
# --------------------------------------------------------------------- #
class TestHandleSurface:
    def test_streamed_equals_dense_property(self, network):
        handle = NetworkAnalysis(network)
        assert_summary_identical(
            handle.streamed_distance_summary(tile_size=6), handle.summary
        )
        assert handle.streamed_reachable_fraction(tile_size=6) == (
            handle.summary.reachable_fraction
        )

    def test_streamed_does_not_materialize_dense_artifacts(self):
        network = _POOL["er-sparse"]
        handle = NetworkAnalysis(network)
        with repro.compute_events() as events:
            handle.streamed_distance_summary(tile_size=8)
        assert events.counts.get("streamed_summary") == 1
        assert "arrival_matrix" not in events.counts
        assert "summary" not in events.counts

    def test_streamed_is_memoized_per_key(self):
        network = _POOL["star"]
        handle = NetworkAnalysis(network)
        with repro.compute_events() as events:
            first = handle.streamed_distance_summary(tile_size=4)
            second = handle.streamed_distance_summary(tile_size=4)
            third = handle.streamed_distance_summary(tile_size=5)
        assert first is second
        assert_summary_identical(third, first)
        assert events.counts["streamed_summary"] == 2
        assert events.hits["streamed_summary"] == 1

    def test_invalidate_drops_streamed_cache(self):
        network = _POOL["star"]
        handle = NetworkAnalysis(network)
        handle.streamed_distance_summary(tile_size=4)
        handle.invalidate()
        with repro.compute_events() as events:
            handle.streamed_distance_summary(tile_size=4)
        assert events.counts["streamed_summary"] == 1

    def test_reverse_direction_on_handle(self, network):
        handle = NetworkAnalysis(network)
        assert_summary_identical(
            handle.streamed_distance_summary(tile_size=5, direction="reverse"),
            _dense_reverse(network),
        )

    def test_ambient_tile_size_applies(self):
        network = _POOL["path-r2"]
        with tile_size_scope(3):
            result = blocked_sweep_summary(network)
        assert result.tile_size == 3

    def test_top_level_exports(self):
        assert repro.blocked_sweep_summary is blocked_sweep_summary
        assert repro.streamed_distance_summary is streamed_distance_summary
        assert repro.streamed_reachable_fraction is streamed_reachable_fraction


# --------------------------------------------------------------------- #
# the engine: mode="blocked" metrics, --jobs composition
# --------------------------------------------------------------------- #
class TestEngineComposition:
    def _records(self, *, jobs=None, tile_size=None):
        scenario = get_scenario("hypercube-urtn-diameter")
        with tile_size_scope(tile_size):
            return run_scenario(
                scenario, scale="quick", seed=11, jobs=jobs
            ).to_records()

    def test_blocked_mode_bit_identical_through_pipeline(self):
        assert self._records() == self._records(tile_size=3)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_blocked_composes_with_jobs(self, jobs):
        assert self._records() == self._records(tile_size=3, jobs=jobs)

    def test_metric_mode_knob(self):
        from repro.scenarios.metrics import METRICS, TrialContext

        network = _POOL["hypercube"]
        def ctx():
            return TrialContext(
                graph=None, network=network, params={}, rng=np.random.default_rng(0)
            )

        fields = ["temporal_diameter", "mean_temporal_distance", "reachable_fraction"]
        dense = METRICS["distance_summary"](ctx(), {"fields": fields, "mode": "dense"})
        blocked = METRICS["distance_summary"](
            ctx(), {"fields": fields, "mode": "blocked", "tile_size": 5}
        )
        assert dense == blocked
        with pytest.raises(ConfigurationError):
            METRICS["distance_summary"](ctx(), {"mode": "chunky"})
