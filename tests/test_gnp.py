"""Tests for repro.erdosrenyi.gnp and thresholds."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.erdosrenyi.gnp import (
    UnionFind,
    connectivity_probability,
    giant_component_fraction,
    is_gnp_connected,
    sample_gnp_edges,
)
from repro.erdosrenyi.thresholds import connectivity_threshold_curve, critical_probability


class TestUnionFind:
    def test_initially_all_separate(self):
        forest = UnionFind(5)
        assert forest.num_components == 5
        assert not forest.connected(0, 1)

    def test_union_reduces_components(self):
        forest = UnionFind(4)
        assert forest.union(0, 1)
        assert forest.num_components == 3
        assert forest.connected(0, 1)

    def test_union_of_same_component_is_noop(self):
        forest = UnionFind(4)
        forest.union(0, 1)
        assert not forest.union(1, 0)
        assert forest.num_components == 3

    def test_transitive_connectivity(self):
        forest = UnionFind(5)
        forest.union(0, 1)
        forest.union(1, 2)
        forest.union(3, 4)
        assert forest.connected(0, 2)
        assert not forest.connected(0, 3)

    def test_component_sizes(self):
        forest = UnionFind(6)
        forest.union(0, 1)
        forest.union(1, 2)
        forest.union(3, 4)
        assert sorted(forest.component_sizes().tolist()) == [1, 2, 3]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)


class TestSampling:
    def test_p_zero_has_no_edges(self):
        u, v = sample_gnp_edges(20, 0.0, seed=0)
        assert u.size == 0 and v.size == 0

    def test_p_one_is_complete(self):
        u, v = sample_gnp_edges(10, 1.0, seed=0)
        assert u.size == 45

    def test_edges_are_valid_pairs(self):
        u, v = sample_gnp_edges(30, 0.3, seed=1)
        assert np.all(u < v)
        assert u.max() < 30

    def test_reproducible(self):
        a = sample_gnp_edges(25, 0.2, seed=9)
        b = sample_gnp_edges(25, 0.2, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_edge_count_concentrates(self):
        n, p = 100, 0.1
        u, _ = sample_gnp_edges(n, p, seed=2)
        expected = p * n * (n - 1) / 2
        assert abs(u.size - expected) < 5 * math.sqrt(expected)

    def test_single_vertex(self):
        u, v = sample_gnp_edges(1, 0.5, seed=0)
        assert u.size == 0


class TestConnectivity:
    def test_complete_graph_connected(self):
        u, v = sample_gnp_edges(12, 1.0, seed=0)
        assert is_gnp_connected(12, u, v)

    def test_empty_graph_disconnected(self):
        u, v = sample_gnp_edges(12, 0.0, seed=0)
        assert not is_gnp_connected(12, u, v)

    def test_single_vertex_connected(self):
        assert is_gnp_connected(1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    def test_too_few_edges_short_circuit(self):
        u = np.asarray([0], dtype=np.int64)
        v = np.asarray([1], dtype=np.int64)
        assert not is_gnp_connected(5, u, v)

    def test_giant_component_fraction_bounds(self):
        u, v = sample_gnp_edges(50, 0.05, seed=3)
        fraction = giant_component_fraction(50, u, v)
        assert 1 / 50 <= fraction <= 1.0

    def test_giant_fraction_of_complete_graph_is_one(self):
        u, v = sample_gnp_edges(20, 1.0, seed=0)
        assert giant_component_fraction(20, u, v) == 1.0


class TestThreshold:
    def test_critical_probability_formula(self):
        assert critical_probability(100) == pytest.approx(math.log(100) / 100)
        assert critical_probability(1) == 0.0

    def test_connectivity_probability_monotone_in_p(self):
        n = 80
        low = connectivity_probability(n, 0.3 * critical_probability(n), trials=30, seed=0)
        high = connectivity_probability(n, 3.0 * critical_probability(n), trials=30, seed=1)
        assert high > low

    def test_subcritical_mostly_disconnected(self):
        n = 128
        probability = connectivity_probability(
            n, 0.3 * critical_probability(n), trials=30, seed=2
        )
        assert probability <= 0.2

    def test_supercritical_mostly_connected(self):
        n = 128
        probability = connectivity_probability(
            n, 3.0 * critical_probability(n), trials=30, seed=3
        )
        assert probability >= 0.8

    def test_threshold_curve_structure(self):
        curve = connectivity_threshold_curve(
            64, multipliers=(0.5, 1.0, 2.0), trials=10, seed=4
        )
        assert [row["multiplier"] for row in curve] == [0.5, 1.0, 2.0]
        assert all(0.0 <= row["probability"] <= 1.0 for row in curve)
        assert all(row["p"] <= 1.0 for row in curve)
