"""The SQLite artifact store: schema migration, idempotency, WAL concurrency."""

from __future__ import annotations

import json
import multiprocessing
import sqlite3
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import get_scenario
from repro.service.store import (
    _MIGRATIONS,
    SCHEMA_VERSION,
    ArtifactStore,
    run_fingerprint,
)
from repro.telemetry import TelemetryRecorder, attach


def _begin(store: ArtifactStore, fingerprint: str):
    return store.begin_run(
        fingerprint,
        scenario_name="s",
        scale="quick",
        seed=1,
        scenario_json="{}",
    )


class TestSchema:
    def test_fresh_store_is_current_version(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        assert store.schema_version() == SCHEMA_VERSION == len(_MIGRATIONS)

    def test_wal_mode_enabled(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        with store._connect() as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_v1_database_migrates_in_place_keeping_rows(self, tmp_path):
        """A database from the schema-v1 era upgrades on open, data intact."""
        path = tmp_path / "store.sqlite3"
        conn = sqlite3.connect(path)
        conn.executescript(_MIGRATIONS[0])
        conn.execute("PRAGMA user_version = 1")
        conn.execute(
            """
            INSERT INTO runs (fingerprint, scenario_name, scale, seed, status,
                              scenario_json, created_at, updated_at)
            VALUES ('old-fp', 'legacy', 'quick', 7, 'done', '{}', 1.0, 2.0)
            """
        )
        conn.commit()
        conn.close()

        store = ArtifactStore(path)
        assert store.schema_version() == SCHEMA_VERSION
        record = store.get_run("old-fp")
        assert record is not None and record.scenario_name == "legacy"
        # The v2 table exists and accepts rows for the migrated run.
        store.add_artifact("old-fp", "matrix", "/tmp/matrix.npy")
        assert store.get_run("old-fp").artifacts == {"matrix": "/tmp/matrix.npy"}

    def test_newer_schema_is_refused_not_corrupted(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="newer"):
            ArtifactStore(path)


class TestRunLifecycle:
    def test_begin_complete_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        record, created = _begin(store, "fp-1")
        assert created and record.status == "running" and not record.done
        records = [{"n": 16, "mean": 0.5}]
        done = store.complete_run("fp-1", records=records, timings={"run_s": 0.25})
        assert done.done and done.records == records
        assert done.timings == {"run_s": 0.25}

    def test_same_fingerprint_lands_on_same_row(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        first, created_first = _begin(store, "fp-1")
        store.complete_run("fp-1", records=[{"v": 1}])
        second, created_second = _begin(store, "fp-1")
        assert created_first and not created_second
        assert second.done and second.records == [{"v": 1}]
        assert second.created_at == first.created_at
        assert store.counts()["runs"] == 1

    def test_fail_then_reset_resubmits(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        _begin(store, "fp-1")
        failed = store.fail_run("fp-1", "boom")
        assert failed.status == "failed" and failed.error == "boom"
        store.reset_run("fp-1")
        record = store.get_run("fp-1")
        assert record.status == "running" and record.error is None

    def test_reset_never_demotes_a_done_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        _begin(store, "fp-1")
        store.complete_run("fp-1", records=[])
        store.reset_run("fp-1")
        assert store.get_run("fp-1").done

    def test_finish_unknown_fingerprint_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        with pytest.raises(ConfigurationError, match="unknown run"):
            store.complete_run("ghost", records=[])

    def test_artifact_requires_known_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        with pytest.raises(ConfigurationError, match="unknown run"):
            store.add_artifact("ghost", "m", "/tmp/m.npy")

    def test_counts_breakdown(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        _begin(store, "a")
        _begin(store, "b")
        store.complete_run("b", records=[])
        _begin(store, "c")
        store.fail_run("c", "err")
        assert store.counts() == {
            "runs": 3,
            "artifacts": 0,
            "runs_running": 1,
            "runs_done": 1,
            "runs_failed": 1,
        }

    def test_iter_runs_newest_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        _begin(store, "a")
        _begin(store, "b")
        names = [record.fingerprint for record in store.iter_runs()]
        assert set(names) == {"a", "b"}

    def test_store_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        recorder = TelemetryRecorder()
        with attach(recorder):
            _begin(store, "fp-1")      # insert
            _begin(store, "fp-1")      # hit
            store.get_run("fp-1")      # hit
            store.get_run("ghost")     # miss
        assert recorder.counters["service.store.insert"] == 1
        assert recorder.counters["service.store.hit"] == 2
        assert recorder.counters["service.store.miss"] == 1


class TestRunFingerprint:
    def test_distinguishes_scale_and_seed(self):
        scenario = get_scenario("clique-temporal-centrality")
        base = run_fingerprint(scenario, "quick", 1)
        assert base == run_fingerprint(scenario, "quick", 1)
        assert base != run_fingerprint(scenario, "default", 1)
        assert base != run_fingerprint(scenario, "quick", 2)


# --------------------------------------------------------------------------- #
# cross-process WAL behaviour
# --------------------------------------------------------------------------- #
def _writer_process(path: str, prefix: str, count: int) -> None:
    store = ArtifactStore(path, busy_timeout_ms=10_000)
    for index in range(count):
        fingerprint = f"{prefix}-{index:03d}"
        store.begin_run(
            fingerprint,
            scenario_name=prefix,
            scale="quick",
            seed=index,
            scenario_json="{}",
        )
        store.complete_run(fingerprint, records=[{"i": index}])


def _claimer_process(path: str, queue) -> None:
    store = ArtifactStore(path, busy_timeout_ms=10_000)
    _, created = store.begin_run(
        "shared", scenario_name="s", scale="quick", seed=0, scenario_json="{}"
    )
    queue.put(created)


class TestMultiProcess:
    def test_two_writers_lose_no_rows(self, tmp_path):
        """Two processes interleave writes through WAL; every row survives."""
        path = str(tmp_path / "store.sqlite3")
        ArtifactStore(path)  # create + migrate before forking
        count = 25
        workers = [
            multiprocessing.Process(target=_writer_process, args=(path, prefix, count))
            for prefix in ("alpha", "beta")
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = ArtifactStore(path)
        rows = list(store.iter_runs())
        assert len(rows) == 2 * count
        assert all(record.done for record in rows)
        assert store.counts()["runs_done"] == 2 * count

    def test_concurrent_claim_creates_exactly_once(self, tmp_path):
        """Two processes race begin_run on one fingerprint; one row, one creator."""
        path = str(tmp_path / "store.sqlite3")
        ArtifactStore(path)
        queue: multiprocessing.Queue = multiprocessing.Queue()
        claimers = [
            multiprocessing.Process(target=_claimer_process, args=(path, queue))
            for _ in range(2)
        ]
        for claimer in claimers:
            claimer.start()
        for claimer in claimers:
            claimer.join(timeout=60)
            assert claimer.exitcode == 0
        created_flags = sorted(queue.get(timeout=10) for _ in range(2))
        assert created_flags == [False, True]
        assert ArtifactStore(path).counts()["runs"] == 1


class TestBusyTimeout:
    def test_short_timeout_errors_on_held_write_lock(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = ArtifactStore(path, busy_timeout_ms=100)
        blocker = sqlite3.connect(path)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            with pytest.raises(sqlite3.OperationalError):
                _begin(store, "fp-blocked")
        finally:
            blocker.rollback()
            blocker.close()

    def test_long_timeout_waits_out_the_lock(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = ArtifactStore(path, busy_timeout_ms=10_000)
        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.3, blocker.rollback)
        release.start()
        try:
            record, created = _begin(store, "fp-waited")
            assert created and record.status == "running"
        finally:
            release.join()
            blocker.close()


class TestRecordsRoundTrip:
    def test_records_and_timings_are_json_faithful(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.sqlite3")
        _begin(store, "fp-1")
        records = [
            {"n": 16, "metric_mean": 0.123456789, "label": "point-a"},
            {"n": 32, "metric_mean": 0.987654321, "label": "point-b"},
        ]
        store.complete_run("fp-1", records=records, timings={"run_s": 1.5})
        loaded = store.get_run("fp-1")
        assert loaded.records == records
        assert json.dumps(loaded.records, sort_keys=True) == json.dumps(
            records, sort_keys=True
        )
        payload = loaded.to_payload()
        json.dumps(payload)  # the HTTP layer serialises this directly
        assert payload["status"] == "done"
