"""Tests for the telemetry subsystem (repro.telemetry) and its integrations.

Covers the recorder primitives (counters, Welford timing statistics, span
trees), the activation stack (disabled no-op path, scoped attach, isolated),
the sinks (JSONL round-trip, stderr summary), the layered report, the
analysis-handle cache pins, the engine's cross-process counter transport, and
the CLI surface (``--telemetry``, ``repro-experiments profile``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import complete_graph, normalized_urtn, telemetry
from repro.analysis_api import NetworkAnalysis, compute_events
from repro.core.journeys import earliest_arrival_matrix
from repro.engine.driver import run_sharded
from repro.engine.executors import ShardResult
from repro.experiments.registry import main
from repro.montecarlo.experiment import Experiment
from repro.scenarios.metrics import METRICS, TrialContext
from repro.scenarios.specs import MetricSpec
from repro.telemetry import (
    JsonlSink,
    StderrSummarySink,
    TelemetryRecorder,
    TimingStats,
    format_layer_report,
    read_jsonl,
)
from repro.telemetry.sinks import recorder_to_records


def _coin_trial(params, rng):
    """Module-level trial so the multiprocess executor can pickle it."""
    analysis = NetworkAnalysis(
        normalized_urtn(
            complete_graph(int(params.get("n", 8)), directed=True),
            seed=int(rng.integers(2**31)),
        )
    )
    return {"diameter": float(analysis.diameter)}


class TestDisabledPath:
    """Telemetry off — the default — must be a strict no-op."""

    def test_no_recorders_active_by_default(self):
        assert telemetry.active() == ()

    def test_module_helpers_are_noops_when_disabled(self):
        # None of these may raise or create hidden state.
        telemetry.counter("kernel.forward.sweeps")
        telemetry.observe_ms("kernel.forward.sweep_ms", 1.0)
        with telemetry.span("scenario.run", scenario="none"):
            pass
        assert telemetry.active() == ()

    def test_instrumented_kernel_records_nothing_when_disabled(self):
        network = normalized_urtn(complete_graph(8, directed=True), seed=0)
        with telemetry.session() as probe:
            pass  # close immediately: probe stays empty
        earliest_arrival_matrix(network)  # outside any session
        assert probe.counters == {}
        assert probe.timings == {}


class TestRecorder:
    def test_counters_accumulate(self):
        rec = TelemetryRecorder()
        rec.counter("a.b")
        rec.counter("a.b", 4)
        rec.counter("c")
        assert rec.counters == {"a.b": 5, "c": 1}

    def test_timing_stats_match_numpy(self):
        data = np.random.default_rng(7).exponential(size=193)
        stats = TimingStats()
        for x in data:
            stats.add(float(x))
        assert stats.count == 193
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data)))
        assert stats.minimum == pytest.approx(float(np.min(data)))
        assert stats.maximum == pytest.approx(float(np.max(data)))
        assert stats.total == pytest.approx(float(np.sum(data)))

    def test_nested_spans_build_a_tree_and_feed_timings(self):
        rec = TelemetryRecorder()
        with rec.span("outer", label="x"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert [node.name for node in rec.spans] == ["outer"]
        outer = rec.spans[0]
        assert outer.attrs == {"label": "x"}
        assert [child.name for child in outer.children] == ["inner", "inner"]
        # Every closed span also feeds the timing statistic of its name.
        assert rec.timings["outer"].count == 1
        assert rec.timings["inner"].count == 2
        assert rec.timings["outer"].total >= rec.timings["inner"].total

    def test_module_span_nests_across_all_active_recorders(self):
        with telemetry.session() as outer_rec:
            with telemetry.span("outer"):
                inner_rec = TelemetryRecorder()
                with telemetry.attach(inner_rec):
                    with telemetry.span("inner"):
                        telemetry.counter("hits")
        # The outer recorder saw the whole tree; the scoped probe saw only
        # what happened inside its attach window.
        assert [n.name for n in outer_rec.spans] == ["outer"]
        assert [n.name for n in outer_rec.spans[0].children] == ["inner"]
        assert outer_rec.counters == {"hits": 1}
        assert [n.name for n in inner_rec.spans] == ["inner"]
        assert inner_rec.counters == {"hits": 1}

    def test_isolated_hides_outer_recorders(self):
        with telemetry.session() as outer_rec:
            shard_rec = TelemetryRecorder()
            with telemetry.isolated(shard_rec):
                telemetry.counter("engine.shards")
            telemetry.counter("visible")
        assert outer_rec.counters == {"visible": 1}
        assert shard_rec.counters == {"engine.shards": 1}

    def test_session_flushes_sinks_even_on_failure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError):
            with telemetry.session(JsonlSink(path)):
                telemetry.counter("partial")
                raise RuntimeError("boom")
        records = read_jsonl(path)
        assert {"kind": "counter", "name": "partial", "value": 1} in records


class TestMerge:
    """Worker-side partials must fold into run totals exactly."""

    def test_timing_merge_is_exact_across_simulated_workers(self):
        data = np.random.default_rng(11).gamma(2.0, size=240)
        reference = TimingStats()
        for x in data:
            reference.add(float(x))
        # Split the same stream over 5 "workers" with uneven shard sizes and
        # fold them in order — like the driver folds shard states.
        merged = TimingStats()
        bounds = [0, 7, 48, 100, 101, 240]
        for lo, hi in zip(bounds, bounds[1:]):
            worker = TimingStats()
            for x in data[lo:hi]:
                worker.add(float(x))
            merged.merge(worker)
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean, rel=1e-12)
        assert merged.variance == pytest.approx(reference.variance, rel=1e-12)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum

    def test_timing_merge_handles_empty_partials(self):
        stats = TimingStats()
        stats.merge(TimingStats())
        assert stats.count == 0
        stats.add(3.0)
        stats.merge(TimingStats())
        assert stats.count == 1 and stats.mean == 3.0

    def test_timing_state_round_trip(self):
        stats = TimingStats()
        for x in (1.0, 4.0, 2.5):
            stats.add(x)
        clone = TimingStats.from_state(stats.to_state())
        assert clone.count == stats.count
        assert clone.mean == stats.mean
        assert clone.m2 == stats.m2
        assert clone.minimum == stats.minimum
        assert clone.maximum == stats.maximum
        empty = TimingStats.from_state(TimingStats().to_state())
        assert empty.count == 0 and math.isinf(empty.minimum)

    def test_recorder_merge_state_adds_counters_and_timings(self):
        worker = TelemetryRecorder()
        worker.counter("engine.trials", 4)
        worker.observe_ms("engine.shard_ms", 10.0)
        parent = TelemetryRecorder()
        parent.counter("engine.trials", 2)
        parent.merge_state(worker.to_state())
        parent.merge_state(worker.to_state())
        assert parent.counters["engine.trials"] == 10
        assert parent.timings["engine.shard_ms"].count == 2

    def test_span_trees_do_not_cross_process_state(self):
        rec = TelemetryRecorder()
        with rec.span("worker.region"):
            pass
        state = rec.to_state()
        assert "spans" not in state
        # ...but the span's duration travels as its timing statistic.
        assert state["timings"]["worker.region"]["count"] == 1


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.session(JsonlSink(path)) as rec:
            with telemetry.span("scenario.run", scenario="t"):
                with telemetry.span("scenario.trial"):
                    telemetry.counter("scenario.trials")
            telemetry.observe_ms("scenario.graph_build_ms", 2.0)
        records = read_jsonl(path)
        assert records == recorder_to_records(rec)
        kinds = {record["kind"] for record in records}
        assert kinds == {"span", "counter", "timing"}
        trial_span = next(r for r in records if r["path"] == "scenario.run/scenario.trial")
        assert trial_span["depth"] == 1
        timing = next(
            r for r in records
            if r["kind"] == "timing" and r["name"] == "scenario.graph_build_ms"
        )
        assert timing["count"] == 1 and timing["mean"] == 2.0

    def test_jsonl_appends_across_sessions(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            with telemetry.session(JsonlSink(path)):
                telemetry.counter("runs")
        records = read_jsonl(path)
        assert [r["value"] for r in records if r["kind"] == "counter"] == [1, 1]

    def test_stderr_summary_sink_writes_to_stream(self):
        import io

        stream = io.StringIO()
        with telemetry.session(StderrSummarySink(stream)):
            telemetry.counter("kernel.forward.sweeps", 3)
            telemetry.observe_ms("kernel.forward.sweep_ms", 5.0)
        out = stream.getvalue()
        assert "kernel.forward.sweeps = 3" in out
        assert "kernel.forward.sweep_ms" in out


class TestAnalysisCachePins:
    """The artifact-cache counters pin the handle's compute-once contract."""

    def test_four_metric_suite_one_compute_three_hits(self):
        network = normalized_urtn(complete_graph(32, directed=True), seed=3)
        suite = [
            MetricSpec("distance_summary"),
            MetricSpec("temporal_diameter"),
            MetricSpec("strong_reachability"),
            MetricSpec("temporal_centrality"),
        ]
        with compute_events() as events:
            ctx = TrialContext(
                graph=None, network=network, params={"n": 32},
                rng=np.random.default_rng(0),
            )
            for spec in suite:
                ctx.metrics.update(METRICS[spec.metric](ctx, spec.options))
            # The acceptance pin: one arrival-matrix sweep serves the whole
            # suite; every later consumer is a cache hit.
            assert events.counts["arrival_matrix"] == 1
            assert events.hits["arrival_matrix"] == 3

    def test_kernel_counters_under_the_handle(self):
        network = normalized_urtn(complete_graph(16, directed=True), seed=1)
        with telemetry.session() as rec:
            NetworkAnalysis(network).summary
        assert rec.counters["kernel.forward.sweeps"] == 1
        assert rec.counters["kernel.forward.sources"] == 16
        assert rec.timings["analysis.compute_ms.arrival_matrix"].count == 1


class TestEngineTransport:
    """Worker-side recorders ship home and merge identically across executors."""

    def _run(self, jobs):
        experiment = Experiment(name="telemetry-parity", trial=_coin_trial)
        with telemetry.session() as rec:
            result = run_sharded(
                experiment, budget=8, seed=42, jobs=jobs, shard_size=2
            )
        return result, rec

    def test_jobs2_counters_identical_to_serial(self):
        serial_result, serial_rec = self._run(jobs=None)
        parallel_result, parallel_rec = self._run(jobs=2)
        assert serial_result.values == parallel_result.values
        assert serial_rec.counters == parallel_rec.counters
        # Timing *counts* are deterministic too (the observed values are not).
        assert {name: stats.count for name, stats in serial_rec.timings.items()} == {
            name: stats.count for name, stats in parallel_rec.timings.items()
        }
        assert serial_rec.counters["engine.shards"] == 4
        assert serial_rec.counters["engine.trials"] == 8
        assert serial_rec.counters["engine.shards_completed"] == 4
        assert serial_rec.counters["analysis.compute.arrival_matrix"] == 8
        assert serial_rec.counters["kernel.forward.sweeps"] == 8

    def test_no_telemetry_state_when_disabled(self):
        experiment = Experiment(name="telemetry-off", trial=_coin_trial)
        assert telemetry.active() == ()
        result = run_sharded(experiment, budget=2, seed=1, shard_size=2)
        assert result.repetitions == 2

    def test_shard_result_payload_round_trip(self):
        rec = TelemetryRecorder()
        rec.counter("engine.trials", 3)
        rec.observe_ms("engine.shard_ms", 1.5)
        result = ShardResult(
            index=0, start=0, stop=3, repetitions=3, values=None,
            accumulator_state={}, telemetry_state=rec.to_state(),
        )
        clone = ShardResult.from_payload(result.to_payload())
        assert clone.telemetry_state == result.telemetry_state

    def test_pre_telemetry_checkpoints_still_load(self):
        result = ShardResult(
            index=0, start=0, stop=1, repetitions=1, values=None,
            accumulator_state={},
        )
        payload = result.to_payload()
        del payload["telemetry"]  # a checkpoint written before telemetry existed
        clone = ShardResult.from_payload(payload)
        assert clone.telemetry_state is None


class TestReport:
    def test_layer_report_groups_namespaces(self):
        rec = TelemetryRecorder()
        rec.counter("kernel.forward.sweeps", 2)
        rec.counter("analysis.compute.arrival_matrix", 1)
        rec.counter("analysis.cache_hit.arrival_matrix", 3)
        rec.counter("engine.trials", 8)
        rec.counter("scenario.trials", 8)
        rec.counter("misc.other")
        report = format_layer_report(rec, title="profile: test")
        assert "profile: test" in report
        assert "Scenario pipeline" in report
        assert "Parallel engine" in report
        assert "CSR sweep kernels" in report
        assert "arrival_matrix" in report
        assert "misc.other" in report

    def test_empty_recorder_reports_placeholder(self):
        assert "(no telemetry recorded)" in format_layer_report(TelemetryRecorder())


class TestCli:
    def test_scenario_run_with_jsonl_telemetry(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "scenario", "run", "clique-temporal-centrality",
                "--scale", "quick", "--seed", "7",
                "--telemetry", f"jsonl:{trace}",
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        records = read_jsonl(trace)
        counters = {r["name"]: r["value"] for r in records if r["kind"] == "counter"}
        assert counters["scenario.trials"] == counters["engine.trials"]
        assert counters["analysis.compute.arrival_matrix"] >= 1

    def test_invalid_telemetry_spec_rejected(self, capsys):
        exit_code = main(
            [
                "scenario", "run", "clique-temporal-centrality",
                "--scale", "quick", "--telemetry", "nonsense",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "telemetry" in (captured.out + captured.err)

    def test_profile_command_prints_layer_report(self, capsys):
        exit_code = main(
            ["profile", "clique-temporal-centrality", "--scale", "quick", "--seed", "7"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Analysis handle (artifact cache)" in captured.out
        assert "arrival_matrix" in captured.out

    def test_profile_unknown_scenario_fails(self, capsys):
        exit_code = main(["profile", "no-such-scenario"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no-such-scenario" in (captured.out + captured.err)
