"""Property-based tests (hypothesis) for the blocked-sweep accumulators.

The blocked engine's correctness rests on one algebraic property: folding
distance rows into :class:`repro.core.blocked_sweeps.BlockedSummaryAccumulator`
is **exactly** associative and commutative — any partition of the rows into
tiles, absorbed and merged in any order, must yield the same accumulator
state bit for bit (integer moments, reachability counts, diameter/radius) and
therefore the same Welford moments after the
:meth:`~repro.core.blocked_sweeps.ExactDistanceMoments.to_streaming` export.
These tests drive that property over random distance matrices, random
partitions and random merge orders.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.blocked_sweeps import (
    BlockedSummaryAccumulator,
    ExactDistanceMoments,
    summary_of_distance_matrix,
)
from repro.types import UNREACHABLE


@st.composite
def distance_matrices(draw, max_n: int = 10, max_label: int = 40):
    """A random square int64 distance matrix with production conventions:
    zero diagonal, labels in ``[1, max_label]``, UNREACHABLE holes."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    rows = draw(
        st.lists(
            st.lists(
                st.one_of(
                    st.integers(min_value=1, max_value=max_label),
                    st.just(int(UNREACHABLE)),
                ),
                min_size=n,
                max_size=n,
            ),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.array(rows, dtype=np.int64)
    np.fill_diagonal(matrix, 0)
    return matrix


@st.composite
def partitions(draw, n: int):
    """A random ordered partition of ``range(n)`` rows into contiguous tiles,
    then a random permutation of those tiles."""
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=max(n - 1, 1)), max_size=4).map(
            lambda xs: sorted(set(x for x in xs if x < n))
        )
    )
    bounds = [0, *cuts, n]
    tiles = [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(len(bounds) - 1)
    ]
    order = draw(st.permutations(range(len(tiles))))
    return [tiles[i] for i in order]


def _absorb(matrix: np.ndarray, tiles) -> BlockedSummaryAccumulator:
    accumulator = BlockedSummaryAccumulator(matrix.shape[0])
    for rows in tiles:
        accumulator.add_tile(rows, matrix[rows])
    return accumulator


@st.composite
def matrix_and_two_partitions(draw):
    matrix = draw(distance_matrices())
    n = matrix.shape[0]
    return matrix, draw(partitions(n)), draw(partitions(n))


@given(matrix_and_two_partitions())
@settings(max_examples=120, deadline=None)
def test_any_partition_any_order_same_state(case):
    """Two arbitrary partitions/orders of the same rows agree exactly."""
    matrix, tiles_a, tiles_b = case
    a = _absorb(matrix, tiles_a)
    b = _absorb(matrix, tiles_b)
    assert a == b
    assert a.to_state() == b.to_state()
    np.testing.assert_array_equal(a.reach_counts, b.reach_counts)


@given(matrix_and_two_partitions())
@settings(max_examples=100, deadline=None)
def test_merge_of_partials_equals_single_accumulator(case):
    """Per-tile accumulators merged in any order equal one-shot absorption,
    and export identical Welford moments."""
    matrix, tiles, merge_order = case
    whole = _absorb(matrix, [np.arange(matrix.shape[0], dtype=np.int64)])
    partials = [_absorb(matrix, [rows]) for rows in tiles]
    merged = BlockedSummaryAccumulator(matrix.shape[0])
    for partial in partials:
        merged.merge(partial)
    assert merged == whole
    streamed_a = merged.moments.to_streaming()
    streamed_b = whole.moments.to_streaming()
    assert streamed_a.to_state() == streamed_b.to_state()


@given(matrix_and_two_partitions())
@settings(max_examples=100, deadline=None)
def test_summary_matches_dense_reduction(case):
    """Whatever the partition, the streamed summary equals the dense one."""
    matrix, tiles, _ = case
    streamed = _absorb(matrix, tiles).summary()
    dense = summary_of_distance_matrix(matrix)
    assert streamed.diameter == dense.diameter
    assert streamed.radius == dense.radius
    assert streamed.reachable_fraction == dense.reachable_fraction
    if np.isnan(dense.average_distance):
        assert np.isnan(streamed.average_distance)
    else:
        assert streamed.average_distance == dense.average_distance


@given(
    st.lists(st.integers(min_value=0, max_value=10**6), max_size=40),
    st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_exact_moments_order_invariant(values, rng):
    """ExactDistanceMoments is insensitive to observation order and chunking,
    and its state JSON round-trips."""
    ordered = ExactDistanceMoments()
    ordered.add_values(np.array(values, dtype=np.int64))
    shuffled_values = list(values)
    rng.shuffle(shuffled_values)
    shuffled = ExactDistanceMoments()
    index = 0
    while index < len(shuffled_values):
        step = rng.randint(1, 7)
        chunk = shuffled_values[index : index + step]
        shuffled.add_values(np.array(chunk, dtype=np.int64))
        index += step
    assert ordered == shuffled
    assert ExactDistanceMoments.from_state(ordered.to_state()) == shuffled
    if values:
        assert ordered.mean == sum(values) / len(values)
        assert ordered.minimum == min(values)
        assert ordered.maximum == max(values)
