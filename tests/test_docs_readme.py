"""Docs check: every fenced ``python`` block in README.md must execute.

Each block is executed in its own namespace, so blocks must be
self-contained — exactly what a reader copy-pasting one expects.  ``bash``
blocks are only checked for referring to real paths/commands lightly (they are
not run).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks() -> list[str]:
    return [block.strip() for block in _FENCE.findall(README.read_text())]


def test_readme_exists_and_has_python_blocks():
    assert README.is_file(), "the repository must ship a root README.md"
    assert len(_python_blocks()) >= 2, "README should contain runnable quickstart blocks"


@pytest.mark.parametrize(
    "block", _python_blocks(), ids=[f"block{i}" for i in range(len(_python_blocks()))]
)
def test_readme_python_block_executes(block):
    namespace: dict[str, object] = {"__name__": "__readme__"}
    exec(compile(block, str(README), "exec"), namespace)  # noqa: S102


def test_readme_mentions_docs():
    text = README.read_text()
    for path in (
        "docs/performance.md",
        "docs/paper_mapping.md",
        "docs/parallel_engine.md",
        "examples",
    ):
        assert path in text, f"README should link {path}"
        assert (README.parent / path).exists(), f"README links missing {path}"
