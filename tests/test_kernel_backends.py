"""The pluggable sweep-kernel backend subsystem (:mod:`repro.core.kernels`).

Four concerns are pinned here:

* **registry semantics** — names, registration, strict vs ambient
  resolution, the environment variable, process defaults, scopes, and the
  graceful-fallback warning;
* **cross-backend parity** — every available backend bit-identical to the
  ``numpy`` reference on structured families at real sizes (the exhaustive
  small-``n`` oracle pinning lives in ``tests/test_oracle_crosscheck.py``);
* **engine thread-through** — multiprocess shards run on the backend the
  driver selected, results stay jobs-invariant under a non-default backend,
  and the merged telemetry proves which backend the workers used;
* **telemetry tagging** — every sweep record carries a
  ``kernel.<dir>.backend.<name>`` counter.

Backends that cannot run in this environment (numba not installed, the
cython extension not built) are exercised wherever possible and skipped with
the registry's own reason string otherwise.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.core import kernels
from repro.core.journeys import earliest_arrival_matrix, earliest_arrival_times
from repro.core.reverse_journeys import latest_departure_matrix, latest_departure_times
from repro.engine.executors import ShardTask, ShardWork, execute_shard
from repro.engine.sharding import SeedPlan, plan_shards
from repro.exceptions import ConfigurationError
from repro.analysis_api import NetworkAnalysis
from repro import (
    complete_graph,
    erdos_renyi_graph,
    hypercube_graph,
    normalized_urtn,
    star_graph,
    uniform_random_labels,
)
from repro.experiments.exp_temporal_diameter import trial_temporal_diameter
from repro.montecarlo.experiment import Experiment
from repro.montecarlo.runner import run_trials


@pytest.fixture(autouse=True)
def _clean_selection_state(monkeypatch):
    """Isolate each test from ambient backend selection state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    previous = kernels.set_default_backend(None)
    try:
        yield
    finally:
        kernels.set_default_backend(previous)


def _available(name: str) -> bool:
    return kernels.backend_unavailable_reason(name) is None


# --------------------------------------------------------------------- #
# registry semantics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered_in_priority_order(self):
        names = kernels.backend_names()
        assert names == ("numba", "cython", "numpy", "python")

    def test_numpy_and_python_always_available(self):
        assert _available("numpy")
        assert _available("python")

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            kernels.get_backend("fortran")

    def test_builtin_backends_satisfy_protocol(self):
        for name in kernels.backend_names():
            assert isinstance(kernels.get_backend(name), kernels.SweepKernelBackend)

    def test_duplicate_registration_needs_replace(self):
        backend = kernels.get_backend("python")
        with pytest.raises(ConfigurationError, match="already registered"):
            kernels.register_backend(backend)
        kernels.register_backend(backend, replace=True)  # restores itself

    def test_auto_name_is_reserved(self):
        class Impostor:
            name = "auto"
            priority = 99

        with pytest.raises(ConfigurationError, match="invalid kernel backend name"):
            kernels.register_backend(Impostor())

    def test_auto_selection_never_picks_negative_priority(self):
        # python (priority < 0) is always available yet must never win auto.
        assert kernels.resolve_backend(None).name != "python"
        assert kernels.default_backend() != "python"

    def test_explicit_request_for_unusable_backend_raises(self):
        for name in ("numba", "cython"):
            reason = kernels.backend_unavailable_reason(name)
            if reason is None:
                continue
            with pytest.raises(ConfigurationError, match="not usable here"):
                kernels.resolve_backend(name)

    def test_available_backends_subset_of_names(self):
        available = kernels.available_backends()
        assert set(available) <= set(kernels.backend_names())
        assert "numpy" in available


class TestSelection:
    def test_per_call_keyword_is_strict(self, clique64):
        with pytest.raises(ConfigurationError):
            earliest_arrival_matrix(clique64, backend="no-such-backend")

    def test_set_default_backend_round_trip(self):
        assert kernels.set_default_backend("python") is None
        try:
            assert kernels.default_backend() == "python"
        finally:
            assert kernels.set_default_backend(None) == "python"

    def test_set_default_backend_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            kernels.set_default_backend("no-such-backend")
        assert kernels.default_backend() != "no-such-backend"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.resolve_backend(None).name == "python"

    def test_env_var_fallback_warns_once(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "bogus-env-backend")
        with pytest.warns(RuntimeWarning, match="falling back to automatic"):
            first = kernels.resolve_backend(None)
        assert first.name in kernels.available_backends()
        # Second resolution: same fallback, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels.resolve_backend(None).name == first.name

    def test_backend_scope_restores_previous_default(self):
        kernels.set_default_backend("numpy")
        with kernels.backend_scope("python"):
            assert kernels.default_backend() == "python"
        assert kernels.default_backend() == "numpy"

    def test_backend_scope_strict_raises(self):
        with pytest.raises(ConfigurationError):
            with kernels.backend_scope("no-such-backend"):
                pass  # pragma: no cover

    def test_backend_scope_nonstrict_degrades_to_auto(self):
        with pytest.warns(RuntimeWarning, match="falling back to automatic"):
            with kernels.backend_scope("bogus-worker-backend", strict=False):
                assert kernels.default_backend() in kernels.available_backends()


# --------------------------------------------------------------------- #
# cross-backend parity at real sizes
# --------------------------------------------------------------------- #
def _parity_instances(n: int):
    """Structured families × seeds at size ``n`` (hypercube needs 2^k)."""
    dimension = int(np.log2(n))
    assert 2**dimension == n
    instances = {}
    for seed in (0, 1):
        instances[f"complete-{n}-{seed}"] = normalized_urtn(
            complete_graph(n, directed=True), seed=seed
        )
        instances[f"er-{n}-{seed}"] = uniform_random_labels(
            erdos_renyi_graph(n, min(1.0, 8.0 / n), directed=True, seed=seed),
            lifetime=2 * n,
            labels_per_edge=2,
            seed=seed + 10,
        )
        instances[f"star-{n}-{seed}"] = normalized_urtn(star_graph(n - 1), seed=seed)
        instances[f"hypercube-{n}-{seed}"] = uniform_random_labels(
            hypercube_graph(dimension), lifetime=3 * dimension, seed=seed + 20
        )
    return instances


def _assert_backend_matches_reference(network, backend: str) -> None:
    np.testing.assert_array_equal(
        earliest_arrival_matrix(network, backend=backend),
        earliest_arrival_matrix(network, backend="numpy"),
    )
    np.testing.assert_array_equal(
        latest_departure_matrix(network, backend=backend),
        latest_departure_matrix(network, backend="numpy"),
    )
    probes = range(0, network.n, max(1, network.n // 4))
    deadline = max(1, network.lifetime // 2)
    for vertex in probes:
        np.testing.assert_array_equal(
            earliest_arrival_times(network, vertex, backend=backend),
            earliest_arrival_times(network, vertex, backend="numpy"),
        )
        np.testing.assert_array_equal(
            latest_departure_times(
                network, vertex, deadline=deadline, backend=backend
            ),
            latest_departure_times(
                network, vertex, deadline=deadline, backend="numpy"
            ),
        )


def _compiled_backend_params():
    params = []
    for name in ("numba", "cython"):
        reason = kernels.backend_unavailable_reason(name)
        marks = (
            [pytest.mark.skip(reason=f"backend {name!r}: {reason}")]
            if reason is not None
            else []
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


class TestBackendParity:
    """Every backend bit-identical to the numpy reference at n ∈ {64, 256}.

    The interpreted ``python`` backend runs the n=64 matrix (exact same loop
    bodies as the compiled backends, so n=256 adds only wall-clock, not
    coverage); compiled backends run both sizes.
    """

    @pytest.mark.parametrize(
        "instance_id", sorted(_parity_instances(64)), ids=str
    )
    def test_python_backend_n64(self, instance_id):
        network = _parity_instances(64)[instance_id]
        _assert_backend_matches_reference(network, "python")

    @pytest.mark.parametrize("backend", _compiled_backend_params())
    @pytest.mark.parametrize("n", [64, 256], ids=["n64", "n256"])
    def test_compiled_backends(self, backend, n):
        for network in _parity_instances(n).values():
            _assert_backend_matches_reference(network, backend)


@pytest.fixture
def clique64():
    return normalized_urtn(complete_graph(64, directed=True), seed=0)


# --------------------------------------------------------------------- #
# telemetry tagging
# --------------------------------------------------------------------- #
class TestTelemetryBackendTag:
    def test_forward_and_reverse_records_carry_backend(self, clique64):
        with telemetry.session() as recorder:
            earliest_arrival_matrix(clique64, backend="numpy")
            earliest_arrival_times(clique64, 0, backend="python")
            latest_departure_matrix(clique64, backend="numpy")
            latest_departure_times(clique64, 0, backend="python")
        assert recorder.counters["kernel.forward.backend.numpy"] == 1
        assert recorder.counters["kernel.forward.backend.python"] == 1
        assert recorder.counters["kernel.reverse.backend.numpy"] == 1
        assert recorder.counters["kernel.reverse.backend.python"] == 1

    def test_ambient_selection_is_tagged_too(self, clique64):
        kernels.set_default_backend("python")
        with telemetry.session() as recorder:
            earliest_arrival_times(clique64, 0)
        assert recorder.counters["kernel.forward.backend.python"] == 1


# --------------------------------------------------------------------- #
# analysis handle pinning
# --------------------------------------------------------------------- #
class TestAnalysisHandleBackend:
    def test_unknown_backend_rejected_at_construction(self, clique64):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            NetworkAnalysis(clique64, kernel_backend="no-such-backend")

    def test_pinned_backend_matches_default(self, clique64):
        pinned = NetworkAnalysis(clique64, kernel_backend="python")
        reference = NetworkAnalysis(clique64)
        np.testing.assert_array_equal(
            pinned.arrival_matrix(), reference.arrival_matrix()
        )
        np.testing.assert_array_equal(
            pinned.departure_matrix(), reference.departure_matrix()
        )
        assert pinned.summary == reference.summary

    def test_pinned_backend_is_used_and_inherited(self, clique64):
        pinned = NetworkAnalysis(clique64, kernel_backend="python")
        with telemetry.session() as recorder:
            pinned.distance(0, 1)
        assert recorder.counters["kernel.forward.backend.python"] == 1
        child = pinned.restricted_to_max_label(clique64.lifetime // 2)
        with telemetry.session() as recorder:
            child.latest_departure(0, 1)
        assert recorder.counters["kernel.reverse.backend.python"] == 1


# --------------------------------------------------------------------- #
# engine thread-through
# --------------------------------------------------------------------- #
#: A real paper workload whose trials run forward sweeps (E1 temporal
#: diameter), so worker-side ``kernel.*`` telemetry proves which backend ran.
SWEEP_EXPERIMENT = Experiment(
    name="E1-temporal-diameter",
    trial=trial_temporal_diameter,
    parameters={"n": 16, "directed": True},
)


class TestEngineThreadThrough:
    def test_shard_task_ships_the_selected_backend(self):
        """execute_shard installs the task's backend; telemetry proves it ran."""
        shard = plan_shards(4)[0]
        seeds = SeedPlan(2014, 4, 1)
        work = ShardWork(
            task=ShardTask(
                experiment=SWEEP_EXPERIMENT,
                telemetry=True,
                kernel_backend="python",
            ),
            shard=shard,
            master_entropy=seeds.entropy,
            master_spawn_key=seeds.spawn_key,
            budget=4,
        )
        result = execute_shard(work)
        assert result.telemetry_state is not None
        counters = result.telemetry_state["counters"]
        assert counters["kernel.forward.backend.python"] > 0
        assert not any(
            name.startswith("kernel.forward.backend.")
            and not name.endswith(".python")
            for name in counters
        )

    def test_unusable_backend_in_worker_falls_back_not_dies(self):
        shard = plan_shards(2)[0]
        seeds = SeedPlan(7, 2, 1)
        work = ShardWork(
            task=ShardTask(
                experiment=SWEEP_EXPERIMENT, kernel_backend="bogus-shipped-backend"
            ),
            shard=shard,
            master_entropy=seeds.entropy,
            master_spawn_key=seeds.spawn_key,
            budget=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = execute_shard(work)
        assert result.repetitions == shard.stop - shard.start

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_jobs_invariant_and_workers_use_backend(self, jobs):
        """jobs ∈ {1, 2} bit-identical under a pinned non-default backend,
        and the merged telemetry shows the workers swept on it."""
        with kernels.backend_scope("python"):
            with telemetry.session() as recorder:
                result = run_trials(
                    SWEEP_EXPERIMENT, repetitions=8, seed=2014, jobs=jobs
                )
            assert recorder.counters["kernel.forward.backend.python"] > 0
        reference = run_trials(SWEEP_EXPERIMENT, repetitions=8, seed=2014, jobs=1)
        assert result.metrics == reference.metrics

    @pytest.mark.parametrize("backend", _compiled_backend_params())
    def test_jobs_parity_on_compiled_backend(self, backend):
        """ISSUE pin: jobs ∈ {1, 2} bit-identical under the numba backend."""
        with kernels.backend_scope(backend):
            serial = run_trials(SWEEP_EXPERIMENT, repetitions=8, seed=2014, jobs=1)
            fanned = run_trials(SWEEP_EXPERIMENT, repetitions=8, seed=2014, jobs=2)
        assert serial.metrics == fanned.metrics
        reference = run_trials(SWEEP_EXPERIMENT, repetitions=8, seed=2014, jobs=1)
        assert serial.metrics == reference.metrics
