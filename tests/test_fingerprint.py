"""The shared fingerprint module: canonical JSON, digests, checkpoint parity.

The checkpoint fingerprint formats predate ``repro.utils.fingerprint`` — they
used to live inline in ``engine/driver.py`` and ``engine/sharding.py``.  The
parity tests here replicate that pre-refactor logic literally and assert the
factored-out helpers produce byte-identical output, so every checkpoint
directory written before the refactor still resumes after it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.temporal_graph import TemporalGraph
from repro.engine.driver import run_sharded
from repro.engine.sharding import SeedPlan
from repro.exceptions import ConfigurationError
from repro.graphs.generators import complete_graph, star_graph
from repro.montecarlo.experiment import Experiment
from repro.scenarios import Scenario, get_scenario, normalize_param_expr
from repro.utils.fingerprint import (
    canonical_json,
    checkpoint_fingerprint,
    fingerprint,
    graph_fingerprint,
    parameters_digest,
    seed_fingerprint,
)


class TestCanonicalJson:
    def test_key_order_invariance(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": None}) == '{"a":null,"b":[1,2]}'

    def test_tuples_serialise_as_lists(self):
        assert canonical_json((1, 2)) == "[1,2]"

    def test_numpy_scalars_coerce(self):
        assert canonical_json({"n": np.int64(4), "x": np.float64(0.5)}) == (
            '{"n":4,"x":0.5}'
        )

    def test_non_jsonable_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"rng": np.random.default_rng(0)})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestFingerprintDigest:
    def test_stable_hex_digest(self):
        digest = fingerprint({"a": 1})
        assert digest == fingerprint({"a": 1})
        assert len(digest) == 32
        int(digest, 16)  # hex

    def test_structural_equality_is_identity(self):
        assert fingerprint({"b": (1, 2), "a": "x"}) == fingerprint(
            {"a": "x", "b": [1, 2]}
        )

    def test_different_payloads_differ(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})


class TestCheckpointParity:
    """The factored helpers must reproduce the pre-refactor formats exactly."""

    def test_parameters_digest_matches_legacy_format(self):
        parameters = {"n": 64, "p": 0.5, "label": "box"}
        # Pre-refactor: engine/driver.py::_parameters_digest, verbatim.
        legacy = repr(
            sorted((str(key), repr(value)) for key, value in parameters.items())
        )
        assert parameters_digest(parameters) == legacy

    def test_seed_fingerprint_matches_legacy_format(self):
        plan = SeedPlan(1234, budget=8, num_shards=2)
        # Pre-refactor: engine/sharding.py::SeedPlan.fingerprint, verbatim.
        legacy = f"entropy={plan.sequence.entropy!r};spawn_key={plan.spawn_key!r}"
        assert plan.fingerprint() == legacy
        assert seed_fingerprint(plan.sequence.entropy, plan.spawn_key) == legacy

    def test_checkpoint_meta_on_disk_is_byte_identical_to_legacy(self, tmp_path):
        """A full engine run writes the same ``meta.json`` bytes as before."""

        def trial(params, rng):
            return {"value": float(rng.random())}

        experiment = Experiment(
            name="parity", trial=trial, parameters={"n": 8, "mode": "quick"}
        )
        run_sharded(
            experiment,
            budget=6,
            seed=99,
            shard_size=3,
            checkpoint_dir=tmp_path,
        )
        written = (tmp_path / "meta.json").read_bytes()

        # The exact dict driver.run_sharded built before the refactor, with
        # the same key insertion order, serialised the same way
        # CheckpointStore always has.
        seeds = SeedPlan(99, 6, 2)
        legacy_meta = {
            "experiment": "parity",
            "parameters": repr(
                sorted(
                    (str(k), repr(v))
                    for k, v in {"n": 8, "mode": "quick"}.items()
                )
            ),
            "budget": 6,
            "shard_size": 3,
            "num_shards": 2,
            "collect_values": True,
            "reservoir_capacity": 1024,
            "seed": f"entropy={seeds.sequence.entropy!r};spawn_key={seeds.spawn_key!r}",
            "format_version": 1,
        }
        assert written == json.dumps(legacy_meta).encode("utf-8")

    def test_checkpoint_fingerprint_key_order(self):
        payload = checkpoint_fingerprint(
            experiment="e",
            parameters={},
            budget=1,
            shard_size=1,
            num_shards=1,
            collect_values=True,
            reservoir_capacity=256,
            seed="entropy=1;spawn_key=()",
        )
        assert list(payload) == [
            "experiment",
            "parameters",
            "budget",
            "shard_size",
            "num_shards",
            "collect_values",
            "reservoir_capacity",
            "seed",
        ]


class TestGraphFingerprint:
    def test_constructor_independence(self):
        """Mapping and label-matrix constructors fingerprint identically."""
        graph = complete_graph(6, directed=True)
        rng = np.random.default_rng(3)
        matrix = rng.integers(1, 7, size=(graph.m, 2))
        via_matrix = TemporalGraph.from_label_matrix(graph, matrix, lifetime=6)
        via_mapping = TemporalGraph(
            graph,
            {i: matrix[i].tolist() for i in range(graph.m)},
            lifetime=6,
        )
        assert graph_fingerprint(via_matrix) == graph_fingerprint(via_mapping)

    def test_label_change_changes_fingerprint(self):
        graph = star_graph(5)
        base = TemporalGraph(graph, {i: [1] for i in range(graph.m)}, lifetime=5)
        tweaked_labels = {i: [1] for i in range(graph.m)}
        tweaked_labels[0] = [2]
        tweaked = TemporalGraph(graph, tweaked_labels, lifetime=5)
        assert graph_fingerprint(base) != graph_fingerprint(tweaked)

    def test_lifetime_change_changes_fingerprint(self):
        graph = star_graph(5)
        labels = {i: [1] for i in range(graph.m)}
        assert graph_fingerprint(
            TemporalGraph(graph, labels, lifetime=5)
        ) != graph_fingerprint(TemporalGraph(graph, labels, lifetime=6))

    def test_deterministic_across_calls(self):
        graph = complete_graph(5, directed=True)
        network = TemporalGraph(graph, {i: [1, 3] for i in range(graph.m)})
        assert graph_fingerprint(network) == graph_fingerprint(network)


class TestNormalizeParamExpr:
    def test_whitespace_variants_collapse(self):
        assert (
            normalize_param_expr("multiplier*n")
            == normalize_param_expr("multiplier * n")
            == normalize_param_expr("  multiplier  *  n ")
            == "multiplier * n"
        )

    def test_numeric_literals_canonicalise(self):
        assert normalize_param_expr("04 * n") == "4 * n"
        assert normalize_param_expr("0.50 * n") == "0.5 * n"

    def test_non_strings_pass_through(self):
        assert normalize_param_expr(7) == 7
        assert normalize_param_expr(None) is None

    def test_malformed_raises(self):
        with pytest.raises(ConfigurationError):
            normalize_param_expr("a * * b")


class TestScenarioFingerprint:
    def test_round_trip_stable(self):
        for name in ("E1", "E5", "clique-temporal-centrality"):
            scenario = get_scenario(name)
            assert Scenario.from_json(scenario.to_json()).fingerprint() == (
                scenario.fingerprint()
            )

    def test_dict_key_order_invariance(self):
        scenario = get_scenario("hypercube-urtn-diameter")
        data = scenario.to_dict()
        reordered = {key: data[key] for key in reversed(list(data))}
        assert Scenario.from_dict(reordered).fingerprint() == scenario.fingerprint()

    def test_param_expression_formatting_invariance(self):
        base = get_scenario("E1")
        data = base.to_dict()
        lifetime = data["labels"]["lifetime"]
        assert isinstance(lifetime, str) and "*" not in lifetime
        # A spelled-out product with odd spacing evaluating to the same thing.
        data["labels"]["lifetime"] = f"1 *   {lifetime}"
        variant_same = Scenario.from_dict(data)
        base_payload = base.fingerprint_payload()
        variant_payload = variant_same.fingerprint_payload()
        assert variant_payload["labels"]["lifetime"] == f"1 * {lifetime}"
        # Whitespace alone never changes the digest:
        data["labels"]["lifetime"] = f"1*{lifetime}"
        assert Scenario.from_dict(data).fingerprint() == variant_same.fingerprint()
        del base_payload

    def test_cosmetic_fields_excluded(self):
        scenario = get_scenario("E7")
        data = scenario.to_dict()
        data["title"] = "a different title"
        data["description"] = "a different description"
        assert Scenario.from_dict(data).fingerprint() == scenario.fingerprint()

    def test_material_fields_included(self):
        scenario = get_scenario("E7")
        data = scenario.to_dict()
        data["default_seed"] = (data.get("default_seed") or 0) + 1
        assert Scenario.from_dict(data).fingerprint() != scenario.fingerprint()

    def test_distinct_scenarios_distinct_fingerprints(self):
        from repro.scenarios import iter_scenarios

        digests = [scenario.fingerprint() for scenario in iter_scenarios()]
        assert len(digests) == len(set(digests))
