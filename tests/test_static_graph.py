"""Tests for repro.graphs.static_graph.StaticGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, InvalidEdgeError, InvalidVertexError
from repro.graphs.static_graph import StaticGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = StaticGraph(3)
        assert graph.n == 3
        assert graph.m == 0
        assert graph.num_arcs == 0

    def test_undirected_edges_stored_both_ways(self):
        graph = StaticGraph(3, [(0, 1), (1, 2)])
        assert graph.m == 2
        assert graph.num_arcs == 4
        assert set(graph.arcs()) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_directed_edges_stored_once(self):
        graph = StaticGraph(3, [(0, 1), (1, 2)], directed=True)
        assert graph.m == 2
        assert graph.num_arcs == 2
        assert set(graph.arcs()) == {(0, 1), (1, 2)}

    def test_duplicate_edges_collapsed(self):
        graph = StaticGraph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            StaticGraph(3, [(1, 1)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(InvalidVertexError):
            StaticGraph(3, [(0, 3)])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError):
            StaticGraph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            StaticGraph(-1)

    def test_name_is_kept(self):
        assert StaticGraph(2, [(0, 1)], name="toy").name == "toy"


class TestQueries:
    @pytest.fixture
    def triangle(self) -> StaticGraph:
        return StaticGraph(3, [(0, 1), (1, 2), (0, 2)])

    def test_vertices_range(self, triangle):
        assert list(triangle.vertices()) == [0, 1, 2]

    def test_edges_iteration_is_canonical(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_has_edge_symmetric_for_undirected(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_has_edge_missing(self):
        graph = StaticGraph(3, [(0, 1)])
        assert not graph.has_edge(1, 2)

    def test_has_edge_directed_respects_orientation(self):
        graph = StaticGraph(3, [(0, 1)], directed=True)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_out_neighbors(self, triangle):
        assert sorted(triangle.out_neighbors(0).tolist()) == [1, 2]

    def test_out_neighbors_invalid_vertex(self, triangle):
        with pytest.raises(InvalidVertexError):
            triangle.out_neighbors(5)

    def test_degrees(self, triangle):
        assert triangle.degrees().tolist() == [2, 2, 2]

    def test_degree_single_vertex(self, triangle):
        assert triangle.degree(1) == 2

    def test_edge_index_roundtrip(self, triangle):
        pairs = triangle.edge_pairs
        for index, (u, v) in enumerate(pairs.tolist()):
            assert triangle.edge_index(u, v) == index
            assert triangle.edge_index(v, u) == index

    def test_edge_index_missing_edge(self):
        graph = StaticGraph(3, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            graph.edge_index(1, 2)

    def test_arc_views_are_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.arc_tails[0] = 99

    def test_out_arcs_point_to_arc_arrays(self, triangle):
        arcs = triangle.out_arcs(0)
        tails = triangle.arc_tails
        assert np.all(tails[arcs] == 0)


class TestDerivedGraphs:
    def test_to_directed_doubles_arcs(self):
        graph = StaticGraph(3, [(0, 1), (1, 2)])
        directed = graph.to_directed()
        assert directed.directed
        assert directed.m == 4

    def test_to_directed_is_identity_for_digraph(self):
        graph = StaticGraph(2, [(0, 1)], directed=True)
        assert graph.to_directed() is graph

    def test_reverse_directed(self):
        graph = StaticGraph(3, [(0, 1), (1, 2)], directed=True)
        reversed_graph = graph.reverse()
        assert set(reversed_graph.arcs()) == {(1, 0), (2, 1)}

    def test_reverse_undirected_is_identity(self):
        graph = StaticGraph(3, [(0, 1)])
        assert graph.reverse() is graph

    def test_subgraph_reindexes(self):
        graph = StaticGraph(4, [(0, 1), (1, 2), (2, 3)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_invalid_vertex(self):
        graph = StaticGraph(3, [(0, 1)])
        with pytest.raises(InvalidVertexError):
            graph.subgraph([0, 9])


class TestEquality:
    def test_equal_graphs(self):
        a = StaticGraph(3, [(0, 1), (1, 2)])
        b = StaticGraph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_direction_flag(self):
        a = StaticGraph(2, [(0, 1)])
        b = StaticGraph(2, [(0, 1)], directed=True)
        assert a != b

    def test_repr_mentions_size(self):
        graph = StaticGraph(3, [(0, 1)], name="toy")
        assert "n=3" in repr(graph)
        assert "toy" in repr(graph)
