"""Unit tests for the parallel execution engine (repro.engine)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.engine.accumulators import (
    AccumulatorSet,
    MetricAccumulator,
    ReservoirSample,
    StreamingMoments,
)
from repro.engine.checkpoint import CheckpointStore
from repro.engine.driver import run_sharded
from repro.engine.executors import (
    MultiprocessExecutor,
    SerialExecutor,
    ShardResult,
    ShardTask,
    ShardWork,
    execute_shard,
    resolve_executor,
)
from repro.engine.sharding import DEFAULT_MAX_SHARDS, SeedPlan, Shard, plan_shards
from repro.exceptions import CheckpointError, ConfigurationError
from repro.montecarlo.experiment import Experiment
from repro.montecarlo.statistics import summarize
from repro.utils.seeding import spawn_rngs


def _noise_trial(params, rng):
    """Module-level trial so the multiprocess executor can pickle it."""
    return {
        "noise": float(rng.normal(loc=params.get("mu", 0.0))),
        "uniform": float(rng.random()),
    }


def _failing_trial(params, rng):
    """Module-level trial that fails deterministically per trial stream.

    Whether a trial fails depends only on its first uniform draw, so the test
    can predict exactly which shards die from the seed alone — no shared
    counters, which would not survive process boundaries.
    """
    value = float(rng.random())
    if value < float(params["threshold"]):
        raise ValueError("unlucky trial")
    return {"x": value}


class TestStreamingMoments:
    def test_matches_numpy(self):
        data = np.random.default_rng(0).exponential(size=257)
        moments = StreamingMoments()
        for x in data:
            moments.add(x)
        assert moments.count == data.size
        assert moments.mean == pytest.approx(float(np.mean(data)), rel=1e-12)
        assert moments.std == pytest.approx(float(np.std(data, ddof=1)), rel=1e-12)
        assert moments.minimum == float(np.min(data))
        assert moments.maximum == float(np.max(data))

    def test_merge_equals_single_pass(self):
        data = np.random.default_rng(1).normal(size=100)
        whole = StreamingMoments()
        for x in data:
            whole.add(x)
        left, right = StreamingMoments(), StreamingMoments()
        for x in data[:37]:
            left.add(x)
        for x in data[37:]:
            right.add(x)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.variance == pytest.approx(whole.variance, rel=1e-10)
        assert left.minimum == whole.minimum and left.maximum == whole.maximum

    def test_merge_with_empty_is_identity(self):
        moments = StreamingMoments()
        moments.add(3.0)
        moments.merge(StreamingMoments())
        assert moments.count == 1 and moments.mean == 3.0
        empty = StreamingMoments()
        empty.merge(moments)
        assert empty.count == 1 and empty.mean == 3.0

    def test_degenerate_variance(self):
        moments = StreamingMoments()
        moments.add(5.0)
        assert moments.variance == 0.0 and moments.std == 0.0

    def test_state_round_trip(self):
        moments = StreamingMoments()
        for x in (1.0, 2.0, 4.0):
            moments.add(x)
        restored = StreamingMoments.from_state(moments.to_state())
        assert restored.to_state() == moments.to_state()


class TestReservoirSample:
    def test_exact_below_capacity(self):
        reservoir = ReservoirSample(capacity=10)
        rng = np.random.default_rng(0)
        for x in (3.0, 1.0, 2.0):
            reservoir.add(x, rng)
        assert reservoir.is_exact
        assert reservoir.items == [3.0, 1.0, 2.0]
        assert reservoir.median() == 2.0

    def test_bounded_beyond_capacity(self):
        reservoir = ReservoirSample(capacity=8)
        rng = np.random.default_rng(1)
        for x in range(100):
            reservoir.add(float(x), rng)
        assert len(reservoir) == 8
        assert reservoir.seen == 100
        assert not reservoir.is_exact
        assert all(0.0 <= x < 100.0 for x in reservoir.items)

    def test_merge_preserves_uniform_sample_size(self):
        rng = np.random.default_rng(2)
        a, b = ReservoirSample(capacity=16), ReservoirSample(capacity=16)
        for x in range(10):
            a.add(float(x), rng)
        for x in range(10, 14):
            b.add(float(x), rng)
        a.merge(b, rng)
        assert a.seen == 14
        assert sorted(a.items) == [float(x) for x in range(14)]  # still exact

    def test_merge_capacity_mismatch_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            ReservoirSample(capacity=4).merge(ReservoirSample(capacity=8), rng)

    def test_empty_median_rejected(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=4).median()

    def test_state_round_trip(self):
        reservoir = ReservoirSample(capacity=4)
        rng = np.random.default_rng(4)
        for x in range(9):
            reservoir.add(float(x), rng)
        restored = ReservoirSample.from_state(reservoir.to_state())
        assert restored.to_state() == reservoir.to_state()


class TestMetricAccumulator:
    def test_summary_matches_summarize_for_in_budget_stream(self):
        data = list(np.random.default_rng(5).normal(loc=2.0, size=60))
        accumulator = MetricAccumulator(capacity=1024)
        rng = np.random.default_rng(6)
        for x in data:
            accumulator.add(x, rng)
        streamed = accumulator.summary()
        exact = summarize(data)
        assert streamed.count == exact.count
        assert streamed.mean == pytest.approx(exact.mean, rel=1e-12)
        assert streamed.std == pytest.approx(exact.std, rel=1e-12)
        assert streamed.minimum == exact.minimum
        assert streamed.maximum == exact.maximum
        assert streamed.median == pytest.approx(exact.median)
        assert streamed.ci_low == pytest.approx(exact.ci_low, rel=1e-9)
        assert streamed.ci_high == pytest.approx(exact.ci_high, rel=1e-9)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            MetricAccumulator().summary()


class TestAccumulatorSet:
    def test_union_of_metric_names_on_merge(self):
        rng = np.random.default_rng(7)
        a, b = AccumulatorSet(capacity=8), AccumulatorSet(capacity=8)
        a.add_trial({"x": 1.0}, rng)
        b.add_trial({"y": 2.0}, rng)
        a.merge(b, rng)
        assert a.metric_names() == ["x", "y"]
        assert a["y"].moments.count == 1

    def test_samples_and_state_round_trip(self):
        rng = np.random.default_rng(8)
        accumulators = AccumulatorSet(capacity=8)
        for i in range(5):
            accumulators.add_trial({"x": float(i)}, rng)
        assert accumulators.samples() == {"x": (0.0, 1.0, 2.0, 3.0, 4.0)}
        restored = AccumulatorSet.from_state(accumulators.to_state())
        assert restored.to_state() == accumulators.to_state()


class TestShardPlanning:
    def test_plan_covers_budget_contiguously(self):
        shards = plan_shards(53, shard_size=7)
        assert shards[0].start == 0 and shards[-1].stop == 53
        for before, after in zip(shards, shards[1:]):
            assert after.start == before.stop
        assert sum(shard.size for shard in shards) == 53

    def test_default_plan_bounded(self):
        assert len(plan_shards(1000)) <= DEFAULT_MAX_SHARDS
        assert len(plan_shards(3)) == 3  # tiny budgets get one trial per shard

    def test_plan_is_independent_of_nothing_else(self):
        assert plan_shards(30) == plan_shards(30)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(0)
        with pytest.raises(ValueError):
            plan_shards(10, shard_size=0)
        with pytest.raises(ValueError):
            Shard(index=0, start=5, stop=5)

    def test_seed_plan_matches_sequential_spawn(self):
        plan = plan_shards(12, shard_size=5)
        seeds = SeedPlan(99, 12, len(plan))
        sequential = spawn_rngs(99, 12)
        streams = []
        for shard in plan:
            streams.extend(
                np.random.default_rng(child).random() for child in seeds.trial_seeds(shard)
            )
        assert streams == [rng.random() for rng in sequential]

    def test_fingerprint_mentions_entropy(self):
        plan = SeedPlan(1234, 4, 2)
        assert "1234" in plan.fingerprint()

    def test_child_reconstruction_matches_spawn(self):
        # the O(1) lazy derivation must equal SeedSequence.spawn exactly
        master = np.random.SeedSequence(77)
        plan = SeedPlan(master, 6, 2)
        spawned = master.spawn(6)
        for i in range(6):
            assert (
                np.random.default_rng(plan.child(i)).random()
                == np.random.default_rng(spawned[i]).random()
            )


class TestExecutors:
    def _works(self, budget=10, shard_size=3, seed=0, mu=1.0):
        experiment = Experiment(name="noise", trial=_noise_trial, parameters={"mu": mu})
        shards = plan_shards(budget, shard_size=shard_size)
        seeds = SeedPlan(seed, budget, len(shards))
        task = ShardTask(experiment=experiment)
        return [
            ShardWork(
                task=task,
                shard=shard,
                master_entropy=seeds.entropy,
                master_spawn_key=seeds.spawn_key,
                budget=budget,
            )
            for shard in shards
        ]

    def test_resolve_executor_defaults(self):
        assert isinstance(resolve_executor(None, None), SerialExecutor)
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        multiprocess = resolve_executor(None, 4)
        assert isinstance(multiprocess, MultiprocessExecutor)
        assert multiprocess.jobs == 4

    def test_resolve_executor_conflicts_and_validation(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(SerialExecutor(), 4)
        with pytest.raises(ConfigurationError):
            resolve_executor(None, 0)
        with pytest.raises(ConfigurationError):
            resolve_executor(None, -2)
        with pytest.raises(ConfigurationError):
            resolve_executor(None, True)  # bools are not worker counts
        with pytest.raises(ConfigurationError):
            resolve_executor(None, 2.5)
        # jobs matching the explicit executor is allowed
        executor = MultiprocessExecutor(2)
        assert resolve_executor(executor, 2) is executor

    def test_multiprocess_yields_completed_shards_before_failure(self):
        # exactly one trial (the smallest first draw) fails; every other
        # shard's finished work must still surface before the error propagates
        draws = [rng.random() for rng in spawn_rngs(0, 8)]
        threshold = min(draws) + 1e-12
        experiment = Experiment(
            name="maybe", trial=_failing_trial, parameters={"threshold": threshold}
        )
        shards = plan_shards(8, shard_size=2)
        bad = {
            shard.index
            for shard in shards
            if any(draws[i] < threshold for i in range(shard.start, shard.stop))
        }
        assert len(bad) == 1
        seeds = SeedPlan(0, 8, len(shards))
        task = ShardTask(experiment=experiment)
        works = [
            ShardWork(
                task=task,
                shard=shard,
                master_entropy=seeds.entropy,
                master_spawn_key=seeds.spawn_key,
                budget=8,
            )
            for shard in shards
        ]
        survivors: list[ShardResult] = []
        # one worker per shard: nothing is queued, so no shard gets cancelled
        with pytest.raises(ValueError, match="unlucky trial"):
            for result in MultiprocessExecutor(len(shards)).map_shards(works):
                survivors.append(result)
        assert {result.index for result in survivors} == {
            shard.index for shard in shards
        } - bad

    def test_serial_and_multiprocess_agree(self):
        works = self._works()
        serial = sorted(SerialExecutor().map_shards(works), key=lambda r: r.index)
        parallel = sorted(
            MultiprocessExecutor(3).map_shards(works), key=lambda r: r.index
        )
        assert [r.to_payload() for r in serial] == [r.to_payload() for r in parallel]

    def test_shard_result_payload_round_trip(self):
        works = self._works(budget=4, shard_size=4)
        result = execute_shard(works[0])
        clone = ShardResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert clone == result


class TestCheckpointStore:
    def _fingerprint(self, **overrides):
        fingerprint = {
            "experiment": "noise",
            "budget": 10,
            "shard_size": 3,
            "num_shards": 4,
            "collect_values": True,
            "reservoir_capacity": 1024,
            "seed": "entropy=0;spawn_key=()",
        }
        fingerprint.update(overrides)
        return fingerprint

    def test_save_and_reload(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.initialize(self._fingerprint()) == {}
        works = TestExecutors()._works(budget=10, shard_size=3)
        result = execute_shard(works[1])
        store.save(result)
        reloaded = CheckpointStore(tmp_path / "ckpt").initialize(self._fingerprint())
        assert set(reloaded) == {1}
        assert reloaded[1] == result

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.initialize(self._fingerprint())
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path).initialize(self._fingerprint(budget=20))

    def test_corrupt_shard_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.initialize(self._fingerprint())
        (tmp_path / "shard-0000.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path).initialize(self._fingerprint())


class TestRunSharded:
    def test_progress_hook_sees_every_shard(self):
        experiment = Experiment(name="noise", trial=_noise_trial)
        calls: list[tuple[int, int, int]] = []
        result = run_sharded(
            experiment,
            budget=10,
            seed=0,
            shard_size=3,
            progress=lambda done, total, reps: calls.append((done, total, reps)),
        )
        assert result.repetitions == 10
        assert calls[-1] == (4, 4, 10)
        assert [done for done, _, _ in calls] == [1, 2, 3, 4]

    def test_streaming_mode_drops_raw_values(self):
        experiment = Experiment(name="noise", trial=_noise_trial)
        result = run_sharded(experiment, budget=10, seed=0, collect_values=False)
        assert result.values is None
        summary = result.accumulators["noise"].summary()
        assert summary.count == 10
        assert math.isfinite(summary.mean)

    def test_values_are_in_trial_order(self):
        experiment = Experiment(name="noise", trial=_noise_trial)
        result = run_sharded(experiment, budget=9, seed=7, shard_size=2)
        sequential = [
            _noise_trial({}, rng)["noise"] for rng in spawn_rngs(7, 9)
        ]
        assert list(result.values["noise"]) == sequential

    def test_checkpoint_requires_explicit_seed(self, tmp_path):
        experiment = Experiment(name="noise", trial=_noise_trial)
        with pytest.raises(ConfigurationError, match="explicit master seed"):
            run_sharded(experiment, budget=4, seed=None, checkpoint_dir=tmp_path)
