"""Tests for the ``repro-experiments`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.registry import main


class TestCli:
    def test_quick_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        exit_code = main(
            ["--ids", "E7", "--scale", "quick", "--seed", "5", "--output", str(output), "--quiet"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert "wrote" in captured.out
        assert "## E7" in output.read_text(encoding="utf-8")

    def test_jobs_flag_gives_identical_report(self, tmp_path, capsys):
        serial_output = tmp_path / "serial.md"
        parallel_output = tmp_path / "parallel.md"
        assert (
            main(
                ["--ids", "E7", "--scale", "quick", "--seed", "5",
                 "--output", str(serial_output), "--quiet"]
            )
            == 0
        )
        assert (
            main(
                ["--ids", "E7", "--scale", "quick", "--seed", "5", "--jobs", "2",
                 "--output", str(parallel_output), "--quiet"]
            )
            == 0
        )
        capsys.readouterr()
        assert parallel_output.read_text(encoding="utf-8") == serial_output.read_text(
            encoding="utf-8"
        )

    def test_invalid_jobs_rejected(self, capsys):
        exit_code = main(["--ids", "E7", "--scale", "quick", "--jobs", "0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err

    def test_console_output_not_quiet(self, capsys):
        exit_code = main(["--ids", "E7", "--scale", "quick", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E7" in captured.out

    def test_unknown_experiment_id_fails(self, capsys):
        exit_code = main(["--ids", "E42", "--scale", "quick"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err

    def test_invalid_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["--scale", "enormous"])

    def test_scenario_show_prints_round_trippable_json(self, tmp_path, capsys):
        from repro.io.serialization import read_scenario_json
        from repro.scenarios import get_scenario

        exit_code = main(["scenario", "show", "E5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        path = tmp_path / "e5.json"
        path.write_text(captured.out, encoding="utf-8")
        assert read_scenario_json(path) == get_scenario("E5")

    def test_scenario_show_unknown_name_fails(self, capsys):
        exit_code = main(["scenario", "show", "no-such-scenario"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err

    def test_help_mentions_experiments(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "E1" in capsys.readouterr().out
