"""Tests for repro.graphs.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import degree_sequence, diameter, is_connected


class TestCompleteGraph:
    def test_undirected_edge_count(self):
        graph = gen.complete_graph(6)
        assert graph.m == 15
        assert not graph.directed

    def test_directed_edge_count(self):
        graph = gen.complete_graph(6, directed=True)
        assert graph.m == 30
        assert graph.directed

    def test_diameter_is_one(self):
        assert diameter(gen.complete_graph(5)) == 1

    def test_single_vertex(self):
        assert gen.complete_graph(1).m == 0


class TestStarGraph:
    def test_structure(self):
        graph = gen.star_graph(6)
        assert graph.m == 5
        assert graph.degree(0) == 5
        assert all(graph.degree(v) == 1 for v in range(1, 6))

    def test_diameter_two(self):
        assert diameter(gen.star_graph(6)) == 2

    def test_degenerate_sizes(self):
        assert gen.star_graph(1).m == 0
        assert gen.star_graph(2).m == 1


class TestPathAndCycle:
    def test_path_edges(self):
        graph = gen.path_graph(5)
        assert graph.m == 4
        assert diameter(graph) == 4

    def test_cycle_edges(self):
        graph = gen.cycle_graph(6)
        assert graph.m == 6
        assert diameter(graph) == 3

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)


class TestGridAndHypercube:
    def test_grid_counts(self):
        graph = gen.grid_graph(3, 4)
        assert graph.n == 12
        assert graph.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert diameter(graph) == (3 - 1) + (4 - 1)

    def test_hypercube_counts(self):
        graph = gen.hypercube_graph(4)
        assert graph.n == 16
        assert graph.m == 4 * 16 // 2
        assert diameter(graph) == 4

    def test_hypercube_dimension_zero(self):
        graph = gen.hypercube_graph(0)
        assert graph.n == 1
        assert graph.m == 0


class TestBipartiteAndTrees:
    def test_complete_bipartite(self):
        graph = gen.complete_bipartite_graph(3, 4)
        assert graph.n == 7
        assert graph.m == 12
        assert diameter(graph) == 2

    def test_binary_tree(self):
        graph = gen.binary_tree(3)
        assert graph.n == 15
        assert graph.m == 14
        assert is_connected(graph)

    def test_random_tree_is_spanning_tree(self):
        graph = gen.random_tree(20, seed=3)
        assert graph.m == 19
        assert is_connected(graph)

    def test_random_tree_reproducible(self):
        a = gen.random_tree(15, seed=11)
        b = gen.random_tree(15, seed=11)
        assert a == b

    def test_random_tree_tiny(self):
        assert gen.random_tree(1).m == 0
        assert gen.random_tree(2).m == 1


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self):
        assert gen.erdos_renyi_graph(10, 0.0, seed=0).m == 0

    def test_p_one_is_complete(self):
        graph = gen.erdos_renyi_graph(10, 1.0, seed=0)
        assert graph.m == 45

    def test_reproducible(self):
        a = gen.erdos_renyi_graph(30, 0.2, seed=5)
        b = gen.erdos_renyi_graph(30, 0.2, seed=5)
        assert a == b

    def test_directed_variant(self):
        graph = gen.erdos_renyi_graph(10, 1.0, directed=True, seed=0)
        assert graph.m == 90

    def test_edge_count_near_expectation(self):
        n, p = 60, 0.3
        graph = gen.erdos_renyi_graph(n, p, seed=42)
        expected = p * n * (n - 1) / 2
        assert abs(graph.m - expected) < 4 * np.sqrt(expected)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi_graph(10, 1.5)


class TestWheelBarbellLollipop:
    def test_wheel(self):
        graph = gen.wheel_graph(7)
        assert graph.m == 12
        assert graph.degree(0) == 6
        assert diameter(graph) == 2

    def test_wheel_too_small(self):
        with pytest.raises(ValueError):
            gen.wheel_graph(3)

    def test_barbell(self):
        graph = gen.barbell_graph(4, 2)
        assert graph.n == 10
        assert is_connected(graph)
        assert graph.m == 2 * 6 + 3

    def test_lollipop(self):
        graph = gen.lollipop_graph(5, 3)
        assert graph.n == 8
        assert is_connected(graph)
        assert graph.m == 10 + 3

    def test_degree_sequence_sorted(self):
        graph = gen.star_graph(5)
        assert degree_sequence(graph).tolist() == [4, 1, 1, 1, 1]
