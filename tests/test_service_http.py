"""End-to-end HTTP tests: stdlib urllib against a live ephemeral-port server.

This is the full serving loop the CI smoke job also exercises: submit a
scenario over the wire, poll the job, fetch the stored result, resubmit and
observe the store hit, query a cached handle — plus the error surface and
the ``repro-experiments serve`` CLI subcommand.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ServiceApp, serve
from repro.service.fastapi_adapter import create_fastapi_app, fastapi_available

QUERY = {
    "op": "centrality",
    "measure": "harmonic",
    "graph": {"family": "clique", "params": {"n": 8}},
    "labels": {"model": "uniform", "lifetime": 16},
    "seed": 5,
}


def _call(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_done(base: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, snapshot = _call(base, "GET", f"/jobs/{job_id}")
        assert status == 200
        if snapshot["state"] in ("done", "failed", "cancelled"):
            return snapshot
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture()
def server(tmp_path):
    with serve(data_dir=str(tmp_path / "data")) as running:
        yield running


class TestEndToEnd:
    def test_healthz(self, server):
        status, payload = _call(server.url, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["schema_version"] == 2

    def test_submit_poll_result_and_store_hit(self, server):
        """The CI smoke loop: run once, fetch results, resubmit = store hit."""
        base = server.url
        body = {"scenario": "clique-temporal-centrality", "scale": "quick"}

        status, job = _call(base, "POST", "/scenarios", body)
        assert status == 202
        assert job["state"] in ("queued", "running", "done")
        finished = _poll_done(base, job["id"])
        assert finished["state"] == "done" and not finished["from_store"]

        status, result = _call(base, "GET", f"/results/{job['fingerprint']}")
        assert status == 200
        assert result["status"] == "done"
        assert len(result["records"]) == 2  # quick scale: n in {16, 32}
        assert result["timings"]["run_s"] > 0

        status, again = _call(base, "POST", "/scenarios", body)
        assert status == 202
        assert again["state"] == "done"
        assert again["from_store"]
        assert again["fingerprint"] == job["fingerprint"]

        status, rerun = _call(base, "GET", f"/results/{again['fingerprint']}")
        assert json.dumps(rerun["records"], sort_keys=True) == json.dumps(
            result["records"], sort_keys=True
        )

    def test_inline_scenario_document(self, server):
        from repro.scenarios import get_scenario

        document = get_scenario("clique-temporal-centrality").to_dict()
        document["name"] = "inline-variant"
        status, job = _call(
            server.url, "POST", "/scenarios",
            {"scenario": document, "scale": "quick", "seed": 7},
        )
        assert status == 202
        assert _poll_done(server.url, job["id"])["state"] == "done"

    def test_query_and_handle_cache(self, server):
        base = server.url
        status, first = _call(base, "POST", "/query", QUERY)
        assert status == 200
        assert not first["cache_hit"]
        assert first["n"] == 8 and first["lifetime"] == 16
        assert len(first["result"]) == 8

        status, second = _call(base, "POST", "/query", QUERY)
        assert status == 200
        assert second["cache_hit"]
        assert second["graph_fingerprint"] == first["graph_fingerprint"]
        assert second["result"] == first["result"]

        status, reach = _call(
            base, "POST", "/query", dict(QUERY, op="reverse_reachable_set", target=3)
        )
        assert status == 200 and reach["cache_hit"]
        assert reach["result"] == sorted(reach["result"])

        status, row = _call(
            base, "POST", "/query", dict(QUERY, op="distances_from", source=0)
        )
        assert status == 200 and len(row["result"]) == 8 and row["result"][0] == 0

    def test_stats_reflect_traffic(self, server):
        base = server.url
        _call(base, "POST", "/query", QUERY)
        _call(base, "POST", "/query", QUERY)
        status, stats = _call(base, "GET", "/stats")
        assert status == 200
        assert stats["cache"]["hits"] >= 1 and stats["cache"]["misses"] >= 1
        assert stats["counters"]["service.requests.query"] == 2
        assert "runs" in stats["store"] and "done" in stats["jobs"]

    def test_cancel_route(self, server):
        base = server.url
        _call(
            base, "POST", "/scenarios",
            {"scenario": "clique-temporal-centrality", "scale": "quick"},
        )
        status, queued = _call(
            base, "POST", "/scenarios",
            {"scenario": "clique-temporal-centrality", "scale": "quick", "seed": 99},
        )
        status, cancelled = _call(base, "POST", f"/jobs/{queued['id']}/cancel")
        assert status == 200
        final = _poll_done(base, queued["id"])
        assert final["state"] in ("cancelled", "done")


class TestErrorSurface:
    def test_unknown_routes_are_404(self, server):
        assert _call(server.url, "GET", "/nope")[0] == 404
        assert _call(server.url, "POST", "/nope", {})[0] == 404

    def test_unknown_job_and_result_are_404(self, server):
        assert _call(server.url, "GET", "/jobs/job-9999")[0] == 404
        assert _call(server.url, "GET", "/results/deadbeef")[0] == 404

    def test_unknown_scenario_is_400(self, server):
        status, payload = _call(
            server.url, "POST", "/scenarios", {"scenario": "no-such-scenario"}
        )
        assert status == 400 and "no-such-scenario" in payload["error"]

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/scenarios",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_bad_query_op_is_400(self, server):
        status, payload = _call(
            server.url, "POST", "/query", dict(QUERY, op="no-such-op")
        )
        assert status == 400 and "no-such-op" in payload["error"]

    def test_missing_query_fields_are_400(self, server):
        body = dict(QUERY, op="latest_departure")  # source/target absent
        status, payload = _call(server.url, "POST", "/query", body)
        assert status == 400 and "source" in payload["error"]

    def test_unbuildable_query_spec_is_400_not_500(self, server):
        """Spec errors that only surface at build time (e.g. the required
        family param riding in the wrong place) map to 400."""
        body = dict(QUERY)
        body["graph"] = {"family": "clique"}  # n missing everywhere
        status, payload = _call(server.url, "POST", "/query", body)
        assert status == 400 and "invalid" in payload["error"]


class TestServeCLI:
    def test_serve_subcommand_end_to_end(self, tmp_path):
        """`repro-experiments serve` on an ephemeral port answers requests."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.registry",
                "serve", "--port", "0", "--data-dir", str(tmp_path / "data"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("serving on http://"), line
            base = line.split()[2]
            status, health = _call(base, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, job = _call(
                base, "POST", "/scenarios",
                {"scenario": "clique-temporal-centrality", "scale": "quick"},
            )
            assert status == 202
            assert _poll_done(base, job["id"])["state"] == "done"
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_serve_rejects_unknown_kernel_backend(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.registry",
                "serve", "--port", "0", "--data-dir", str(tmp_path / "data"),
                "--kernel-backend", "no-such-backend",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "no-such-backend" in result.stderr


class TestFastAPIAdapter:
    def test_gated_when_fastapi_missing(self, tmp_path):
        app = ServiceApp(data_dir=tmp_path / "data")
        try:
            if fastapi_available():  # pragma: no cover - env-dependent branch
                asgi = create_fastapi_app(app)
                routes = {route.path for route in asgi.routes}
                assert {"/scenarios", "/query", "/healthz", "/stats"} <= routes
            else:
                with pytest.raises(ConfigurationError, match="fastapi"):
                    create_fastapi_app(app)
        finally:
            app.close()

    def test_import_is_safe_without_fastapi(self):
        import repro.service.fastapi_adapter as adapter

        assert callable(adapter.create_fastapi_app)
