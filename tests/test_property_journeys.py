"""Property-based tests (hypothesis) for the journey machinery.

These check the core invariants of the paper's definitions on randomly
generated temporal networks:

* foremost-journey arrival times equal the brute-force optimum over all
  journeys (on small instances),
* every reconstructed journey is valid (strictly increasing labels, existing
  time edges) and achieves the reported arrival time,
* the vectorised kernel agrees with the scalar reference,
* adding labels never increases temporal distances (monotonicity).
"""

from __future__ import annotations

from itertools import permutations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.journeys import (
    earliest_arrival_times,
    earliest_arrival_times_reference,
    foremost_journey,
)
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.static_graph import StaticGraph
from repro.types import UNREACHABLE


@st.composite
def temporal_networks(draw, max_n: int = 6, max_labels: int = 2, max_lifetime: int = 8):
    """A random small temporal network on a random undirected graph."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edge_flags = draw(
        st.lists(st.booleans(), min_size=len(possible_edges), max_size=len(possible_edges))
    )
    edges = [edge for edge, keep in zip(possible_edges, edge_flags) if keep]
    graph = StaticGraph(n, edges)
    labels = [
        sorted(
            set(
                draw(
                    st.lists(
                        st.integers(min_value=1, max_value=max_lifetime),
                        min_size=0,
                        max_size=max_labels,
                    )
                )
            )
        )
        for _ in range(graph.m)
    ]
    return TemporalGraph(graph, labels, lifetime=max_lifetime)


def _brute_force_arrival(network: TemporalGraph, source: int, target: int) -> int:
    """Exact earliest arrival by exhaustive search over simple vertex orders.

    Small instances only: enumerate all simple paths from source to target and,
    for each, greedily pick the smallest strictly-increasing label sequence.
    """
    if source == target:
        return 0
    n = network.n
    best = UNREACHABLE
    vertices = [v for v in range(n) if v not in (source, target)]
    for length in range(0, len(vertices) + 1):
        for middle in permutations(vertices, length):
            path = (source, *middle, target)
            time = 0
            feasible = True
            for u, v in zip(path, path[1:]):
                try:
                    labels = network.labels_of(u, v)
                except KeyError:
                    feasible = False
                    break
                usable = [label for label in labels if label > time]
                if not usable:
                    feasible = False
                    break
                time = min(usable)
            if feasible:
                best = min(best, time)
    return best


@settings(max_examples=60, deadline=None)
@given(temporal_networks())
def test_vectorised_kernel_matches_reference(network):
    for source in range(network.n):
        fast = earliest_arrival_times(network, source)
        slow = earliest_arrival_times_reference(network, source)
        assert np.array_equal(fast, slow)


@settings(max_examples=40, deadline=None)
@given(temporal_networks(max_n=5))
def test_foremost_arrival_matches_brute_force(network):
    arrival = {
        source: earliest_arrival_times(network, source) for source in range(network.n)
    }
    for source in range(network.n):
        for target in range(network.n):
            assert arrival[source][target] == _brute_force_arrival(network, source, target)


@settings(max_examples=60, deadline=None)
@given(temporal_networks())
def test_reconstructed_journeys_are_valid(network):
    arrival = earliest_arrival_times(network, 0)
    for target in range(network.n):
        if target == 0 or arrival[target] >= UNREACHABLE:
            continue
        journey = foremost_journey(network, 0, target)
        # labels strictly increase (enforced by the Journey constructor) and
        # each hop uses an existing time edge of the instance
        for edge in journey:
            assert network.has_time_edge(edge.u, edge.v, edge.label)
        assert journey.arrival_time == arrival[target]


@settings(max_examples=40, deadline=None)
@given(temporal_networks(), st.integers(min_value=1, max_value=8), st.data())
def test_adding_labels_never_hurts(network, extra_label, data):
    """Temporal distances are monotone non-increasing under label additions."""
    before = earliest_arrival_times(network, 0)
    if network.m == 0:
        return
    edge_index = data.draw(st.integers(min_value=0, max_value=network.m - 1))
    labels = [list(network.labels_of_edge_index(i)) for i in range(network.m)]
    labels[edge_index] = sorted(set(labels[edge_index] + [extra_label]))
    augmented = TemporalGraph(network.graph, labels, lifetime=max(network.lifetime, extra_label))
    after = earliest_arrival_times(augmented, 0)
    assert np.all(after <= before)


@settings(max_examples=40, deadline=None)
@given(temporal_networks())
def test_arrival_times_bounded_by_lifetime_or_unreachable(network):
    arrival = earliest_arrival_times(network, 0)
    assert arrival[0] == 0
    finite = arrival[arrival < UNREACHABLE]
    assert np.all(finite <= network.lifetime)
