"""Tests for the declarative scenario subsystem (specs, registries, pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.io.serialization import read_scenario_json, write_scenario_json
from repro.scenarios import (
    DIRECT_METRICS,
    GRAPH_FAMILIES,
    LABEL_MODELS,
    METRICS,
    GraphFamilySpec,
    LabelModelSpec,
    MetricSpec,
    MetricSuite,
    Scenario,
    ScenarioScale,
    ScenarioTrial,
    SweepBlock,
    eval_param_expr,
    experiment_scenarios,
    get_scenario,
    iter_scenarios,
    run_scenario,
    scenario_names,
)
from repro.scenarios.families import build_graph, build_sized_family
from repro.scenarios.registry import register_scenario


class TestParamExpressions:
    def test_literals_pass_through(self):
        assert eval_param_expr(5, {}) == 5
        assert eval_param_expr(2.5, {}) == 2.5
        assert eval_param_expr(None, {}) is None
        assert eval_param_expr(True, {}) is True

    def test_bare_name_preserves_type(self):
        assert eval_param_expr("n", {"n": 64}) == 64
        assert eval_param_expr("directed", {"directed": True}) is True

    def test_products(self):
        assert eval_param_expr("multiplier * n", {"multiplier": 4, "n": 16}) == 64
        assert eval_param_expr("2 * n", {"n": 10}) == 20
        assert eval_param_expr("0.5 * n", {"n": 10}) == 5.0

    def test_integer_string(self):
        assert eval_param_expr("64", {}) == 64

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            eval_param_expr("bogus", {"n": 3})

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            eval_param_expr("n * ", {"n": 3})


class TestSpecsRoundTrip:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_every_registered_scenario_round_trips_through_json(self, name):
        scenario = get_scenario(name)
        clone = Scenario.from_json(scenario.to_json())
        assert clone == scenario

    def test_round_trip_through_files(self, tmp_path):
        scenario = get_scenario("E1")
        path = write_scenario_json(scenario, tmp_path / "e1.json")
        assert read_scenario_json(path) == scenario

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_json("{not json")

    def test_direct_mode_requires_single_metric(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad",
                title="",
                description="",
                graph=GraphFamilySpec("none"),
                labels=LabelModelSpec(model="none"),
                metrics=MetricSuite.of("er_connectivity", "strong_reachability"),
                scales={"quick": ScenarioScale(1, (SweepBlock(axes={"n": [4]}),))},
                mode="direct",
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad",
                title="",
                description="",
                graph=GraphFamilySpec("none"),
                labels=LabelModelSpec(model="none"),
                metrics=MetricSuite.of("er_connectivity"),
                scales={"quick": ScenarioScale(1, (SweepBlock(axes={"n": [4]}),))},
                mode="warp",
            )


class TestRegistry:
    def test_experiment_scenarios_are_registered(self):
        assert sorted(experiment_scenarios()) == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
        ]

    def test_registry_contains_registry_only_scenarios(self):
        names = scenario_names()
        assert "hypercube-urtn-diameter" in names
        assert "er-fcase-reachability" in names

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("e1") is get_scenario("E1")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("E1")
        with pytest.raises(ConfigurationError):
            register_scenario(scenario)

    def test_iter_scenarios_sorted(self):
        names = [scenario.name for scenario in iter_scenarios()]
        assert names == sorted(names)


class TestFamilies:
    def test_build_graph_resolves_expressions(self):
        spec = GraphFamilySpec("clique", {"n": "n", "directed": True})
        graph = build_graph(spec, {"n": 8})
        assert graph.n == 8 and graph.directed

    def test_build_graph_cached_per_point(self):
        spec = GraphFamilySpec("star", {"n": "n"})
        assert build_graph(spec, {"n": 9}) is build_graph(spec, {"n": 9})

    def test_none_family_builds_nothing(self):
        assert build_graph(GraphFamilySpec("none"), {}) is None

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            build_graph(GraphFamilySpec("moebius"), {})

    def test_sized_families_match_e6_grid(self):
        for family in ("path", "cycle", "grid", "hypercube", "binary_tree", "erdos_renyi"):
            graph = build_sized_family(family, 16)
            assert graph.n >= 2

    def test_registries_are_populated(self):
        assert "clique" in GRAPH_FAMILIES and "gnp_supercritical" in GRAPH_FAMILIES
        assert "uniform" in LABEL_MODELS and "box" in LABEL_MODELS
        assert "distance_summary" in METRICS and "er_connectivity" in METRICS
        assert "theorem7_por_audit" in DIRECT_METRICS


class TestScenarioTrial:
    def test_trial_is_picklable(self):
        import pickle

        trial = ScenarioTrial(get_scenario("E1"))
        clone = pickle.loads(pickle.dumps(trial))
        params = {"n": 16, "directed": True}
        a = trial(params, np.random.default_rng(3))
        b = clone(params, np.random.default_rng(3))
        assert a == b

    def test_unknown_metric_rejected(self):
        scenario = Scenario(
            name="bad-metric",
            title="",
            description="",
            graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
            labels=LabelModelSpec(model="uniform", labels_per_edge=1, lifetime="n"),
            metrics=MetricSuite.of("no-such-metric"),
            scales={"quick": ScenarioScale(1, (SweepBlock(axes={"n": [4]}),))},
        )
        with pytest.raises(ConfigurationError):
            ScenarioTrial(scenario)({"n": 4}, np.random.default_rng(0))

    def test_metric_requiring_network_rejects_none_model(self):
        scenario = Scenario(
            name="no-net",
            title="",
            description="",
            graph=GraphFamilySpec("none"),
            labels=LabelModelSpec(model="none"),
            metrics=MetricSuite.of("temporal_diameter"),
            scales={"quick": ScenarioScale(1, (SweepBlock(axes={"n": [4]}),))},
        )
        with pytest.raises(ConfigurationError):
            ScenarioTrial(scenario)({"n": 4}, np.random.default_rng(0))


class TestRunScenario:
    def test_registry_only_scenario_runs_from_definition(self):
        result = run_scenario(get_scenario("hypercube-urtn-diameter"), scale="quick", seed=3)
        records = result.to_records()
        assert len(records) == 2
        for record in records:
            assert 0.0 < record["reachable_fraction_mean"] <= 1.0
            assert record["mean_temporal_distance_mean"] > 0.0

    def test_er_fcase_scenario_shows_reachability_threshold_shape(self):
        result = run_scenario(get_scenario("er-fcase-reachability"), scale="quick", seed=3)
        records = result.to_records()
        by_point = {(r["param_n"], r["param_r"]): r["reachable_mean"] for r in records}
        # more labels per edge can only help reachability
        for n in {key[0] for key in by_point}:
            rs = sorted(r for (nn, r) in by_point if nn == n)
            values = [by_point[(n, r)] for r in rs]
            assert values == sorted(values)

    def test_default_seed_is_used_when_none_given(self):
        scenario = get_scenario("hypercube-urtn-diameter")
        a = run_scenario(scenario, scale="quick")
        b = run_scenario(scenario, scale="quick", seed=scenario.default_seed)
        assert a.to_records() == b.to_records()

    def test_jobs_bit_identical_for_registry_only_scenario(self):
        scenario = get_scenario("er-fcase-reachability")
        serial = run_scenario(scenario, scale="quick", seed=11)
        parallel = run_scenario(scenario, scale="quick", seed=11, jobs=2)
        assert serial.to_records() == parallel.to_records()

    def test_centrality_scenario_runs_from_registry_definition(self):
        result = run_scenario(
            get_scenario("clique-temporal-centrality"), scale="quick", seed=9
        )
        records = result.to_records()
        assert len(records) == 2
        for record in records:
            # one uniform label per arc of the directed clique: every vertex
            # reaches (and is reached by) everyone, so the fractions saturate
            # and the closeness statistics stay inside (0, 1].
            assert record["mean_influence_mean"] == 1.0
            assert record["mean_reach_mean"] == 1.0
            assert 0.0 < record["mean_closeness_mean"] <= 1.0
            assert (
                record["mean_closeness_mean"]
                <= record["mean_harmonic_closeness_mean"]
                <= 1.0
            )
            assert record["max_closeness_mean"] >= record["mean_closeness_mean"]

    def test_centrality_scenario_jobs_bit_identical(self):
        scenario = get_scenario("clique-temporal-centrality")
        serial = run_scenario(scenario, scale="quick", seed=13)
        parallel = run_scenario(scenario, scale="quick", seed=13, jobs=2)
        assert serial.to_records() == parallel.to_records()

    def test_centrality_metric_rejects_unknown_field(self):
        from repro.scenarios.metrics import METRICS, TrialContext
        from repro import complete_graph, normalized_urtn

        network = normalized_urtn(complete_graph(8, directed=True), seed=0)
        ctx = TrialContext(
            graph=network.graph,
            network=network,
            params={},
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ConfigurationError, match="betweenness"):
            METRICS["temporal_centrality"](ctx, {"fields": ["betweenness"]})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(get_scenario("E1"), scale="galactic")

    def test_direct_mode_rejects_montecarlo_only_options(self):
        with pytest.raises(ConfigurationError):
            run_scenario(get_scenario("E6"), scale="quick", seed=1, shard_size=2)
        with pytest.raises(ConfigurationError):
            run_scenario(
                get_scenario("E6"), scale="quick", seed=1, aggregation="streaming"
            )
        with pytest.raises(ConfigurationError):
            run_scenario(
                get_scenario("E6"), scale="quick", seed=1, reservoir_capacity=64
            )

    def test_direct_mode_honours_explicit_executor(self):
        from repro.engine.executors import MultiprocessExecutor

        serial = run_scenario(get_scenario("E6"), scale="quick", seed=2)
        pooled = run_scenario(
            get_scenario("E6"),
            scale="quick",
            seed=2,
            executor=MultiprocessExecutor(2),
        )
        assert pooled.records == serial.records

    def test_sampling_families_are_deterministic_without_explicit_seed(self):
        spec = GraphFamilySpec("erdos_renyi", {"n": 20, "p": 0.3})
        a = build_graph(spec, {})
        from repro.scenarios.families import _cached_build

        _cached_build.cache_clear()
        b = build_graph(spec, {})
        assert a == b

    def test_streaming_aggregation_supported(self):
        result = run_scenario(
            get_scenario("hypercube-urtn-diameter"),
            scale="quick",
            seed=5,
            aggregation="streaming",
        )
        point = next(result.points())
        assert point.accumulators is not None

    def test_single_sweep_accessor_guards_multi_block(self):
        result = run_scenario(get_scenario("E5"), scale="quick", seed=5)
        assert len(result.sweeps) == 2  # one block per star size
        with pytest.raises(ConfigurationError):
            _ = result.sweep


class TestWithAxes:
    def test_axis_override_replaces_and_moves_constants(self):
        scenario = get_scenario("er-fcase-reachability").with_axes(
            {"n": [24], "r": [1, 2]}, scale="quick"
        )
        block = scenario.scale("quick").blocks[0]
        assert block.axes["n"] == [24]
        assert block.axes["r"] == [1, 2]
        result = run_scenario(scenario, scale="quick", seed=1)
        assert len(result.to_records()) == 2

    def test_override_does_not_mutate_registry(self):
        before = get_scenario("er-fcase-reachability").to_json()
        get_scenario("er-fcase-reachability").with_axes({"n": [8]}, scale="quick")
        assert get_scenario("er-fcase-reachability").to_json() == before


class TestScenarioCli:
    def test_scenario_list(self, capsys):
        from repro.experiments.registry import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "hypercube-urtn-diameter" in out

    def test_scenario_run_writes_records(self, tmp_path, capsys):
        from repro.experiments.registry import main
        from repro.io.serialization import read_records_json

        records_path = tmp_path / "records.json"
        code = main(
            [
                "scenario", "run", "hypercube-urtn-diameter",
                "--scale", "quick", "--seed", "5",
                "--records", str(records_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "hypercube-urtn-diameter" in out
        records = read_records_json(records_path)
        assert len(records) == 2

    def test_scenario_run_centrality_from_cli(self, tmp_path, capsys):
        from repro.experiments.registry import main
        from repro.io.serialization import read_records_json

        records_path = tmp_path / "centrality.json"
        code = main(
            [
                "scenario", "run", "clique-temporal-centrality",
                "--scale", "quick", "--seed", "5",
                "--records", str(records_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "clique-temporal-centrality" in out
        records = read_records_json(records_path)
        assert len(records) == 2
        assert all("mean_closeness_mean" in record for record in records)

    def test_scenario_sweep_overrides_axes(self, capsys):
        from repro.experiments.registry import main

        code = main(
            [
                "scenario", "sweep", "er-fcase-reachability",
                "--scale", "quick", "--seed", "5",
                "--set", "n=24", "--set", "r=1,4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("er-fcase-reachability") >= 2

    def test_scenario_run_unknown_name_fails(self, capsys):
        from repro.experiments.registry import main

        assert main(["scenario", "run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_scenario_sweep_malformed_set_fails(self, capsys):
        from repro.experiments.registry import main

        assert main(["scenario", "sweep", "E1", "--set", "nonsense"]) == 2
        assert "error" in capsys.readouterr().err

    def test_set_values_parse_booleans_ints_floats_and_strings(self):
        from repro.experiments.registry import _parse_axis_value

        assert _parse_axis_value("false") is False
        assert _parse_axis_value("True") is True
        assert _parse_axis_value("8") == 8
        assert _parse_axis_value("0.5") == 0.5
        assert _parse_axis_value("zipf") == "zipf"


class TestTrialContextAndMetricValidation:
    """Error paths of ``require_network``/``require_analysis`` and the
    metric-options validation messages."""

    @staticmethod
    def _context(network=None, graph=None, extras=None, metrics=None):
        from repro.scenarios.metrics import TrialContext

        return TrialContext(
            graph=graph,
            network=network,
            params={"n": 8},
            rng=np.random.default_rng(0),
            metrics=dict(metrics or {}),
            extras=dict(extras or {}),
        )

    @staticmethod
    def _clique_network(n=8, seed=0):
        from repro import complete_graph, normalized_urtn

        return normalized_urtn(complete_graph(n, directed=True), seed=seed)

    def test_require_network_error_names_metric_and_cause(self):
        ctx = self._context()
        with pytest.raises(ConfigurationError) as excinfo:
            ctx.require_network("strong_reachability")
        message = str(excinfo.value)
        assert "'strong_reachability'" in message
        assert "label model" in message

    def test_require_network_returns_the_sampled_network(self):
        network = self._clique_network()
        ctx = self._context(network=network)
        assert ctx.require_network("temporal_diameter") is network

    def test_require_analysis_propagates_missing_network_error(self):
        ctx = self._context()
        with pytest.raises(ConfigurationError, match="'distance_summary'"):
            ctx.require_analysis("distance_summary")
        assert ctx.analysis is None

    def test_every_network_metric_raises_without_network(self):
        network_metrics = (
            "distance_summary", "temporal_diameter", "ratio_to_log_n",
            "direct_wait_baseline", "theorem5_scaled_bound",
            "prefix_connectivity", "expansion_process", "flood_vs_phone_call",
            "flood_time", "strong_reachability", "total_labels",
        )
        for name in network_metrics:
            with pytest.raises(ConfigurationError):
                METRICS[name](self._context(), {})

    def test_distance_summary_unknown_field_message_lists_available(self):
        ctx = self._context(network=self._clique_network())
        with pytest.raises(ConfigurationError) as excinfo:
            METRICS["distance_summary"](ctx, {"fields": ["no_such_field"]})
        message = str(excinfo.value)
        assert "'no_such_field'" in message
        assert "temporal_diameter" in message and "reachable_fraction" in message

    def test_distance_summary_selects_exactly_requested_fields(self):
        ctx = self._context(network=self._clique_network())
        out = METRICS["distance_summary"](
            ctx, {"fields": ["temporal_radius", "temporally_connected"]}
        )
        assert set(out) == {"temporal_radius", "temporally_connected"}

    def test_mean_label_requires_distribution_extra(self):
        ctx = self._context(network=self._clique_network())
        with pytest.raises(ConfigurationError, match="distribution"):
            METRICS["mean_label"](ctx, {})

    def test_theorem7_audit_validates_rng_quota(self):
        rngs = list(np.random.default_rng(0).spawn(3))
        with pytest.raises(ConfigurationError, match="4 RNG streams"):
            DIRECT_METRICS["theorem7_por_audit"](
                {"family": "star", "n": 8, "trials": 2}, rngs, {}
            )
