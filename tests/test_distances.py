"""Tests for repro.core.distances: all-pairs temporal distances and the diameter."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.distances import (
    average_temporal_distance,
    temporal_diameter,
    temporal_distance_matrix,
    temporal_distance_matrix_reference,
    temporal_eccentricities,
    temporal_radius,
)
from repro.core.journeys import earliest_arrival_times
from repro.core.labeling import normalized_urtn, uniform_random_labels
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, path_graph, star_graph
from repro.types import UNREACHABLE


class TestDistanceMatrix:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_single_source_kernel(self, seed):
        graph = erdos_renyi_graph(16, 0.3, seed=seed)
        network = uniform_random_labels(graph, labels_per_edge=2, lifetime=10, seed=seed)
        matrix = temporal_distance_matrix(network)
        for source in range(16):
            assert np.array_equal(matrix[source], earliest_arrival_times(network, source))

    def test_matches_reference_row_by_row(self, random_clique_instance):
        fast = temporal_distance_matrix(random_clique_instance)
        slow = temporal_distance_matrix_reference(random_clique_instance)
        assert np.array_equal(fast, slow)

    def test_diagonal_is_zero(self, random_clique_instance):
        matrix = temporal_distance_matrix(random_clique_instance)
        assert np.all(np.diag(matrix) == 0)

    def test_subset_of_sources(self, random_clique_instance):
        matrix = temporal_distance_matrix(random_clique_instance, sources=[3, 7])
        assert matrix.shape == (2, random_clique_instance.n)
        assert np.array_equal(matrix[0], earliest_arrival_times(random_clique_instance, 3))

    def test_empty_source_list(self, random_clique_instance):
        matrix = temporal_distance_matrix(random_clique_instance, sources=[])
        assert matrix.shape == (0, random_clique_instance.n)

    def test_no_labels(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[], []])
        matrix = temporal_distance_matrix(network)
        off_diag = matrix[~np.eye(3, dtype=bool)]
        assert np.all(off_diag == UNREACHABLE)


class TestTemporalDiameter:
    def test_single_vertex(self):
        from repro.graphs.static_graph import StaticGraph

        network = TemporalGraph(StaticGraph(1), [])
        assert temporal_diameter(network) == 0
        assert temporal_radius(network) == 0

    def test_clique_diameter_at_most_lifetime(self, random_clique_instance):
        assert temporal_diameter(random_clique_instance) <= random_clique_instance.lifetime

    def test_disconnected_gives_unreachable(self, small_path):
        # the small path cannot route 3 -> 0, so the diameter is UNREACHABLE
        assert temporal_diameter(small_path) == UNREACHABLE

    def test_two_label_star_has_diameter_two(self, two_label_star):
        assert temporal_diameter(two_label_star) == 2

    def test_diameter_ge_radius(self, random_clique_instance):
        assert temporal_diameter(random_clique_instance) >= temporal_radius(random_clique_instance)

    def test_eccentricities_max_is_diameter(self, random_clique_instance):
        ecc = temporal_eccentricities(random_clique_instance)
        assert ecc.max() == temporal_diameter(random_clique_instance)

    def test_normalized_clique_diameter_is_logarithmic(self):
        # Theorem 4 sanity check at a single moderate size: TD well below n/2.
        graph = complete_graph(128, directed=True)
        diam_values = []
        for seed in range(3):
            network = normalized_urtn(graph, seed=seed)
            diam_values.append(temporal_diameter(network))
        mean_diameter = float(np.mean(diam_values))
        assert mean_diameter < 128 / 4
        assert mean_diameter >= math.log(128)


class TestAverageDistance:
    def test_average_between_bounds(self, random_clique_instance):
        avg = average_temporal_distance(random_clique_instance)
        assert 0 < avg <= temporal_diameter(random_clique_instance)

    def test_average_nan_when_nothing_reachable(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[], []])
        assert math.isnan(average_temporal_distance(network))

    def test_single_vertex_average_zero(self):
        from repro.graphs.static_graph import StaticGraph

        network = TemporalGraph(StaticGraph(1), [])
        assert average_temporal_distance(network) == 0.0

    def test_star_average(self, two_label_star):
        avg = average_temporal_distance(two_label_star)
        # centre-to-leaf and leaf-to-centre cost 1, leaf-to-leaf costs 2
        assert 1.0 < avg < 2.0
