"""Tests for repro.core.temporal_graph.TemporalGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.temporal_graph import TemporalGraph
from repro.exceptions import InvalidEdgeError, LabelingError, LifetimeError
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.types import TimeEdge


class TestConstruction:
    def test_sequence_labels(self):
        graph = path_graph(3)  # edges (0,1), (1,2)
        network = TemporalGraph(graph, [[1, 3], [2]])
        assert network.n == 3
        assert network.m == 2
        assert network.total_labels == 3

    def test_mapping_labels(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, {0: [5], 1: [2, 4]}, lifetime=6)
        assert network.labels_of(0, 1) == (5,)
        assert network.labels_of(1, 2) == (2, 4)

    def test_default_lifetime_is_max_label(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[7], [2]])
        assert network.lifetime == 7

    def test_default_lifetime_without_labels_is_n(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[], [], []])
        assert network.lifetime == 4

    def test_label_above_lifetime_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LifetimeError):
            TemporalGraph(graph, [[5], [1]], lifetime=4)

    def test_non_positive_label_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LabelingError):
            TemporalGraph(graph, [[0], [1]])

    def test_wrong_sequence_length_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LabelingError):
            TemporalGraph(graph, [[1]])

    def test_bad_edge_index_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LabelingError):
            TemporalGraph(graph, {5: [1]})

    def test_duplicate_labels_collapsed(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[2, 2, 2], [1]])
        assert network.labels_of(0, 1) == (2,)


class TestTimeArcs:
    def test_undirected_labels_give_two_arcs(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]])
        assert network.num_time_arcs == 4
        arcs = set(edge.as_tuple() for edge in network.time_edges())
        assert (0, 1, 1) in arcs and (1, 0, 1) in arcs

    def test_directed_labels_give_one_arc(self):
        graph = complete_graph(3, directed=True)
        network = TemporalGraph(graph, [[1]] * graph.m)
        assert network.num_time_arcs == graph.m

    def test_has_time_edge(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]])
        assert network.has_time_edge(0, 1, 1)
        assert network.has_time_edge(1, 0, 1)
        assert not network.has_time_edge(0, 1, 2)

    def test_time_edges_are_time_edge_objects(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]])
        assert all(isinstance(edge, TimeEdge) for edge in network.time_edges())

    def test_arrays_read_only(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]])
        with pytest.raises(ValueError):
            network.time_arc_labels[0] = 9


class TestQueries:
    def test_labels_of_unknown_edge(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[1], [2], [3]])
        with pytest.raises(InvalidEdgeError):
            network.labels_of(0, 3)

    def test_label_count_per_edge(self):
        graph = star_graph(4)
        network = TemporalGraph(graph, [[1, 2], [3], []], lifetime=4)
        assert network.label_count_per_edge().tolist() == [2, 1, 0]

    def test_edge_label_items(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2, 3]])
        items = dict(network.edge_label_items())
        assert items[(0, 1)] == (1,)
        assert items[(1, 2)] == (2, 3)

    def test_is_normalized(self):
        graph = path_graph(4)
        assert TemporalGraph(graph, [[1], [2], [3]], lifetime=4).is_normalized
        assert not TemporalGraph(graph, [[1], [2], [3]], lifetime=9).is_normalized

    def test_labels_of_edge_index_bounds(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]])
        with pytest.raises(LabelingError):
            network.labels_of_edge_index(5)


class TestDerivedNetworks:
    def test_restricted_to_max_label(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[1, 5], [3], [6]], lifetime=6)
        restricted = network.restricted_to_max_label(3)
        assert restricted.labels_of(0, 1) == (1,)
        assert restricted.labels_of(1, 2) == (3,)
        assert restricted.labels_of(2, 3) == ()
        assert restricted.lifetime == 6

    def test_with_lifetime(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]], lifetime=4)
        extended = network.with_lifetime(10)
        assert extended.lifetime == 10
        assert extended.labels_of(0, 1) == (1,)

    def test_underlying_edges_with_labels(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[1], [], [2]], lifetime=4)
        sub = network.underlying_edges_with_labels()
        assert sub.m == 2
        assert sub.has_edge(0, 1) and sub.has_edge(2, 3)


class TestEquality:
    def test_equality_and_hash(self):
        graph = path_graph(3)
        a = TemporalGraph(graph, [[1], [2]], lifetime=4)
        b = TemporalGraph(graph, [[1], [2]], lifetime=4)
        c = TemporalGraph(graph, [[1], [3]], lifetime=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[1], [2]], lifetime=4)
        assert "lifetime=4" in repr(network)
