"""Scenario ↔ legacy parity: the shims are bit-identical to the pipeline.

Every experiment entry point ``run(scale, seed)`` must produce exactly the
same report as running its registered scenario through the generic
:func:`repro.scenarios.run_scenario` pipeline and handing the result to the
module's ``build_report`` — and both must be bit-identical under ``jobs=2``.
This pins the contract that let the nine bespoke experiment modules become
thin scenario definitions without changing a single published number.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    exp_dissemination,
    exp_er_connectivity,
    exp_expansion,
    exp_fcase,
    exp_general_por,
    exp_lifetime,
    exp_multilabel,
    exp_star_por,
    exp_temporal_diameter,
)
from repro.experiments.registry import DESCRIPTIONS, EXPERIMENTS
from repro.scenarios import experiment_scenarios, get_scenario, run_scenario

MODULES = {
    "E1": exp_temporal_diameter,
    "E2": exp_lifetime,
    "E3": exp_expansion,
    "E4": exp_dissemination,
    "E5": exp_star_por,
    "E6": exp_general_por,
    "E7": exp_er_connectivity,
    "E8": exp_fcase,
    "E9": exp_multilabel,
}

SEED = 1


def _fingerprint(report):
    """Everything numeric/textual a report publishes, as comparable data."""
    return {
        "records": [dict(record) for record in report.records],
        "comparison": [dataclasses.asdict(row) for row in report.comparison],
        "notes": report.notes,
        "claim": report.claim,
        "title": report.title,
        "scale": report.scale,
        "experiment_id": report.experiment_id,
    }


class TestRegistryDrift:
    """A new experiment cannot land without a description and a scenario."""

    def test_experiments_descriptions_and_scenarios_share_one_key_set(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS), (
            "EXPERIMENTS and DESCRIPTIONS drifted apart"
        )
        assert set(EXPERIMENTS) == set(experiment_scenarios()), (
            "the experiment registry and the scenario registry drifted apart: "
            "every E<N> needs a registered scenario and vice versa"
        )

    def test_scenario_default_seeds_match_run_defaults(self):
        import inspect

        for eid, module in MODULES.items():
            default_seed = inspect.signature(module.run).parameters["seed"].default
            assert get_scenario(eid).default_seed == default_seed, eid

    def test_every_run_entry_point_accepts_jobs(self):
        import inspect

        for eid, module in MODULES.items():
            assert "jobs" in inspect.signature(module.run).parameters, (
                f"{eid}.run must accept jobs= (parallel engine wiring)"
            )


@pytest.mark.parametrize("experiment_id", sorted(MODULES))
class TestScenarioLegacyParity:
    def test_legacy_run_matches_scenario_pipeline_bit_for_bit(self, experiment_id):
        module = MODULES[experiment_id]
        legacy = module.run("quick", seed=SEED)
        scenario_result = run_scenario(
            get_scenario(experiment_id), scale="quick", seed=SEED
        )
        rebuilt = module.build_report(scenario_result)
        assert _fingerprint(legacy) == _fingerprint(rebuilt)

    def test_jobs2_is_bit_identical_to_serial(self, experiment_id):
        module = MODULES[experiment_id]
        serial = module.run("quick", seed=SEED)
        parallel = module.run("quick", seed=SEED, jobs=2)
        assert _fingerprint(serial) == _fingerprint(parallel)
