"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

import repro
import repro.analysis_api

API_DOC = Path(__file__).resolve().parent.parent / "docs" / "api.md"


def _documented_names(heading_fragment: str) -> set[str]:
    """Backticked bullet names under the ``## <heading>`` containing the fragment."""
    text = API_DOC.read_text(encoding="utf-8")
    sections = re.split(r"^## ", text, flags=re.MULTILINE)
    for section in sections:
        if heading_fragment in section.splitlines()[0]:
            return set(re.findall(r"^- `([A-Za-z_][A-Za-z0-9_]*)`", section, re.MULTILINE))
    raise AssertionError(f"docs/api.md has no '## …{heading_fragment}…' section")


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"


class TestApiDocDrift:
    """`__all__` must exactly match the surface documented in docs/api.md."""

    def test_api_doc_exists(self):
        assert API_DOC.is_file(), "docs/api.md is the documented public surface"

    def test_top_level_all_matches_documented_surface(self):
        documented = _documented_names("Top-level exports")
        actual = set(repro.__all__)
        assert documented == actual, (
            f"docs/api.md and repro.__all__ drifted apart; "
            f"undocumented: {sorted(actual - documented)}; "
            f"stale in docs: {sorted(documented - actual)}"
        )

    def test_analysis_api_all_matches_documented_surface(self):
        documented = _documented_names("Analysis-handle exports")
        actual = set(repro.analysis_api.__all__)
        assert documented == actual, (
            f"docs/api.md and repro.analysis_api.__all__ drifted apart; "
            f"undocumented: {sorted(actual - documented)}; "
            f"stale in docs: {sorted(documented - actual)}"
        )

    def test_analysis_api_all_names_resolve(self):
        for name in repro.analysis_api.__all__:
            assert hasattr(repro.analysis_api, name)
            assert hasattr(repro, name), (
                f"analysis_api export {name} must also be re-exported at top level"
            )

    def test_kernels_all_matches_documented_surface(self):
        import repro.core.kernels

        documented = _documented_names("Kernel backends")
        actual = set(repro.core.kernels.__all__)
        assert documented == actual, (
            f"docs/api.md and repro.core.kernels.__all__ drifted apart; "
            f"undocumented: {sorted(actual - documented)}; "
            f"stale in docs: {sorted(documented - actual)}"
        )

    def test_service_all_matches_documented_surface(self):
        import repro.service

        documented = _documented_names("Service exports")
        actual = set(repro.service.__all__)
        assert documented == actual, (
            f"docs/api.md and repro.service.__all__ drifted apart; "
            f"undocumented: {sorted(actual - documented)}; "
            f"stale in docs: {sorted(documented - actual)}"
        )

    def test_service_all_names_resolve(self):
        import repro.service

        for name in repro.service.__all__:
            assert hasattr(repro.service, name), (
                f"repro.service.__all__ lists {name} but it is missing"
            )


def test_quickstart_snippet_from_docstring():
    clique = repro.complete_graph(32, directed=True)
    network = repro.normalized_urtn(clique, seed=0)
    assert repro.temporal_diameter(network) <= 32
    assert repro.is_temporally_connected(network)


def test_subpackages_importable():
    for module in (
        "repro.core",
        "repro.graphs",
        "repro.randomness",
        "repro.erdosrenyi",
        "repro.montecarlo",
        "repro.engine",
        "repro.analysis",
        "repro.io",
        "repro.experiments",
        "repro.utils",
    ):
        assert importlib.import_module(module) is not None


def test_subpackage_all_exports_resolve():
    for module_name in (
        "repro.core",
        "repro.graphs",
        "repro.randomness",
        "repro.erdosrenyi",
        "repro.montecarlo",
        "repro.engine",
        "repro.analysis",
        "repro.io",
        "repro.experiments",
    ):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_exceptions_reachable_from_top_level():
    with pytest.raises(repro.ReproError):
        raise repro.LabelingError("bad labels")


def test_star_por_helpers_consistent():
    n = 40
    star = repro.star_graph(n)
    por = repro.price_of_randomness(star, 8, opt=repro.opt_labels_star(n))
    assert por == pytest.approx(4.0)
    assert repro.por_upper_bound_theorem8(n, star.m, 2) > por


def test_never_sentinel_pinned():
    """NEVER sits below every real departure the way UNREACHABLE sits above
    every real arrival; both are part of the serialized-data contract."""
    assert repro.NEVER == 0
    assert repro.NEVER < 1 <= repro.UNREACHABLE


def test_reverse_sweep_surface_resolves():
    network = repro.normalized_urtn(repro.complete_graph(8, directed=True), seed=0)
    departures = repro.latest_departure_matrix(network)
    assert departures.shape == (8, 8)
    assert repro.latest_departure_times(network, 2)[2] == network.lifetime + 1
    assert repro.latest_departure(network, 0, 2) == departures[2, 0]
    assert set(repro.reverse_reachable_set(network, 2).tolist()) <= set(range(8))
    for fn in (
        repro.temporal_closeness,
        repro.temporal_harmonic_closeness,
        repro.temporal_influence_counts,
        repro.temporal_reach_counts,
    ):
        assert fn(network).shape == (8,)
