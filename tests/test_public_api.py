"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"


def test_quickstart_snippet_from_docstring():
    clique = repro.complete_graph(32, directed=True)
    network = repro.normalized_urtn(clique, seed=0)
    assert repro.temporal_diameter(network) <= 32
    assert repro.is_temporally_connected(network)


def test_subpackages_importable():
    for module in (
        "repro.core",
        "repro.graphs",
        "repro.randomness",
        "repro.erdosrenyi",
        "repro.montecarlo",
        "repro.engine",
        "repro.analysis",
        "repro.io",
        "repro.experiments",
        "repro.utils",
    ):
        assert importlib.import_module(module) is not None


def test_subpackage_all_exports_resolve():
    for module_name in (
        "repro.core",
        "repro.graphs",
        "repro.randomness",
        "repro.erdosrenyi",
        "repro.montecarlo",
        "repro.engine",
        "repro.analysis",
        "repro.io",
        "repro.experiments",
    ):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_exceptions_reachable_from_top_level():
    with pytest.raises(repro.ReproError):
        raise repro.LabelingError("bad labels")


def test_star_por_helpers_consistent():
    n = 40
    star = repro.star_graph(n)
    por = repro.price_of_randomness(star, 8, opt=repro.opt_labels_star(n))
    assert por == pytest.approx(4.0)
    assert repro.por_upper_bound_theorem8(n, star.m, 2) > por
