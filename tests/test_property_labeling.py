"""Property-based tests for label assignments and reachability invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.labeling import (
    box_assignment,
    tree_broadcast_assignment,
    uniform_random_labels,
)
from repro.core.reachability import preserves_reachability, reachability_matrix
from repro.graphs.generators import erdos_renyi_graph, random_tree
from repro.graphs.properties import diameter, is_connected
from repro.graphs.static_graph import StaticGraph
from repro.montecarlo.statistics import summarize


@st.composite
def connected_graphs(draw, max_n: int = 9):
    """A random connected graph: a random tree plus a few extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    tree = random_tree(n, seed=seed)
    extra = erdos_renyi_graph(n, 0.2, seed=seed + 1)
    edges = set(tree.edges()) | set(extra.edges())
    return StaticGraph(n, sorted(edges))


@settings(max_examples=60, deadline=None)
@given(connected_graphs(), st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=999))
def test_uniform_labels_respect_lifetime_and_count(graph, r, seed):
    lifetime = 2 * graph.n
    network = uniform_random_labels(graph, labels_per_edge=r, lifetime=lifetime, seed=seed)
    counts = network.label_count_per_edge()
    assert counts.min() >= 1
    assert counts.max() <= r
    assert network.lifetime == lifetime
    labels = [l for _, ls in network.edge_label_items() for l in ls]
    assert all(1 <= label <= lifetime for label in labels)


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=999))
def test_box_assignment_always_preserves_reachability(graph, seed):
    assert is_connected(graph)
    network = box_assignment(graph, mode="random", seed=seed)
    assert preserves_reachability(network)
    # Claim 1 bookkeeping: at most d(G) labels per edge.
    assert network.label_count_per_edge().max() <= max(diameter(graph), 1)


@settings(max_examples=40, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=999))
def test_tree_broadcast_assignment_invariants(graph, seed):
    del seed  # the construction is deterministic; seed only varies the graph
    network = tree_broadcast_assignment(graph)
    assert preserves_reachability(network)
    assert network.total_labels <= 2 * (graph.n - 1)


@settings(max_examples=30, deadline=None)
@given(connected_graphs(), st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=999))
def test_more_labels_never_reduce_reachability(graph, r, seed):
    """Reachable pairs under r labels are a subset of those under r + extra labels.

    Uses the same RNG seed so the first r draws coincide, making the label sets
    nested and the comparison deterministic.
    """
    lifetime = 2 * graph.n
    few = uniform_random_labels(graph, labels_per_edge=r, lifetime=lifetime, seed=seed)
    many = uniform_random_labels(graph, labels_per_edge=r + 2, lifetime=lifetime, seed=seed)
    nested = all(
        set(few.labels_of_edge_index(i)) <= set(many.labels_of_edge_index(i))
        for i in range(graph.m)
    )
    if not nested:
        # Different RNG consumption orders can break nesting; the invariant
        # below is only meaningful for nested label sets.
        return
    reach_few = reachability_matrix(few)
    reach_many = reachability_matrix(many)
    assert np.all(reach_many[reach_few])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
)
def test_summary_statistics_invariants(values):
    stats = summarize(values)
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.ci_low <= stats.ci_high
    assert stats.count == len(values)
    assert stats.std >= 0.0
