"""Tests for repro.randomness.distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randomness.distributions import (
    GeometricLabelDistribution,
    TruncatedZipfLabelDistribution,
    UniformLabelDistribution,
    distribution_from_name,
)


@pytest.mark.parametrize(
    "dist",
    [
        UniformLabelDistribution(10),
        GeometricLabelDistribution(10, q=0.3),
        TruncatedZipfLabelDistribution(10, exponent=1.5),
    ],
    ids=["uniform", "geometric", "zipf"],
)
class TestDistributionContract:
    def test_probabilities_sum_to_one(self, dist):
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_probabilities_length_matches_lifetime(self, dist):
        assert dist.probabilities().size == dist.lifetime

    def test_samples_within_support(self, dist):
        samples = dist.sample(500, seed=0)
        assert samples.min() >= 1
        assert samples.max() <= dist.lifetime

    def test_sampling_reproducible(self, dist):
        a = dist.sample(50, seed=3)
        b = dist.sample(50, seed=3)
        assert np.array_equal(a, b)

    def test_cdf_is_monotone_and_ends_at_one(self, dist):
        cdf = dist.cdf()
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_mean_matches_pmf(self, dist):
        labels = np.arange(1, dist.lifetime + 1)
        assert dist.mean() == pytest.approx(float(labels @ dist.probabilities()))

    def test_interval_probability(self, dist):
        total = dist.probability_in_interval(0, dist.lifetime)
        assert total == pytest.approx(1.0)
        half = dist.probability_in_interval(0, dist.lifetime / 2)
        assert 0.0 <= half <= 1.0


class TestUniform:
    def test_uniform_pmf_is_flat(self):
        pmf = UniformLabelDistribution(8).probabilities()
        assert np.allclose(pmf, 1 / 8)

    def test_uniform_mean(self):
        assert UniformLabelDistribution(9).mean() == pytest.approx(5.0)

    def test_sample_shape(self):
        samples = UniformLabelDistribution(5).sample((4, 6), seed=1)
        assert samples.shape == (4, 6)

    def test_empirical_frequencies_are_flat(self):
        dist = UniformLabelDistribution(4)
        samples = dist.sample(8000, seed=0)
        counts = np.bincount(samples, minlength=5)[1:]
        assert np.allclose(counts / 8000, 0.25, atol=0.03)


class TestGeometric:
    def test_front_loaded(self):
        pmf = GeometricLabelDistribution(20, q=0.5).probabilities()
        assert pmf[0] > pmf[5] > pmf[-1]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            GeometricLabelDistribution(10, q=1.5)
        with pytest.raises(ValueError):
            GeometricLabelDistribution(10, q=0.0)


class TestZipf:
    def test_heavier_exponent_front_loads_more(self):
        light = TruncatedZipfLabelDistribution(50, exponent=0.5).probabilities()
        heavy = TruncatedZipfLabelDistribution(50, exponent=2.0).probabilities()
        assert heavy[0] > light[0]

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            TruncatedZipfLabelDistribution(10, exponent=0.0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(distribution_from_name("uniform", 5), UniformLabelDistribution)
        assert isinstance(
            distribution_from_name("geometric", 5, q=0.2), GeometricLabelDistribution
        )
        assert isinstance(
            distribution_from_name("ZIPF", 5, exponent=1.2), TruncatedZipfLabelDistribution
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            distribution_from_name("poisson", 5)

    def test_repr_mentions_lifetime(self):
        assert "lifetime=7" in repr(UniformLabelDistribution(7))
