"""Tests for the analysis layer: bounds, fitting, thresholds, comparison."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    expected_direct_wait,
    phone_call_rounds_prediction,
    por_bound_general,
    r_lower_bound_star,
    r_sufficient_general,
    temporal_diameter_lower_bound,
    temporal_diameter_prediction,
)
from repro.analysis.comparison import ComparisonRow, build_comparison_table
from repro.analysis.fitting import fit_log_model, fit_power_model, fit_scaled_log_model
from repro.analysis.thresholds import estimate_probability_threshold, monotone_threshold_index


class TestBounds:
    def test_temporal_diameter_prediction(self):
        assert temporal_diameter_prediction(100) == pytest.approx(math.log(100))
        assert temporal_diameter_prediction(100, gamma=3.0) == pytest.approx(3 * math.log(100))

    def test_lower_bound_scales_with_lifetime(self):
        assert temporal_diameter_lower_bound(64, 128) == pytest.approx(2 * math.log(64))
        assert temporal_diameter_lower_bound(64) == pytest.approx(math.log(64))

    def test_direct_wait(self):
        assert expected_direct_wait(99) == pytest.approx(50.0)

    def test_star_lower_bound(self):
        assert r_lower_bound_star(50) == pytest.approx(math.log(50))

    def test_general_sufficient_r(self):
        assert r_sufficient_general(100, 5) == pytest.approx(10 * math.log(100))

    def test_por_bound_matches_core_formula(self):
        from repro.core.price_of_randomness import por_upper_bound_theorem8

        assert por_bound_general(60, 100, 3) == pytest.approx(
            por_upper_bound_theorem8(60, 100, 3)
        )

    def test_phone_call_prediction(self):
        assert phone_call_rounds_prediction(1) == 0.0
        assert phone_call_rounds_prediction(256) == pytest.approx(8 + math.log(256))


class TestFitting:
    def test_log_model_recovers_coefficients(self):
        x = [16, 32, 64, 128, 256, 512]
        y = [3.0 * math.log(v) + 2.0 for v in x]
        fit = fit_log_model(x, y)
        assert fit.coefficients[0] == pytest.approx(3.0, abs=1e-9)
        assert fit.coefficients[1] == pytest.approx(2.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(1024) == pytest.approx(3.0 * math.log(1024) + 2.0)

    def test_log_model_with_noise(self):
        rng = np.random.default_rng(0)
        x = np.asarray([2**k for k in range(4, 12)], dtype=float)
        y = 2.5 * np.log(x) + rng.normal(scale=0.1, size=x.size)
        fit = fit_log_model(x, y)
        assert fit.coefficients[0] == pytest.approx(2.5, abs=0.2)
        assert fit.r_squared > 0.98

    def test_scaled_model(self):
        x = [1.0, 2.0, 4.0, 8.0]
        y = [0.9 * v + 0.5 for v in x]
        fit = fit_scaled_log_model(x, y)
        assert fit.coefficients[0] == pytest.approx(0.9)
        assert fit.predict(16.0) == pytest.approx(0.9 * 16 + 0.5)

    def test_power_model(self):
        x = [2.0, 4.0, 8.0, 16.0]
        y = [3.0 * v**1.5 for v in x]
        fit = fit_power_model(x, y)
        assert fit.coefficients[0] == pytest.approx(3.0, rel=1e-6)
        assert fit.coefficients[1] == pytest.approx(1.5, rel=1e-6)

    def test_power_model_distinguishes_log_from_linear(self):
        x = np.asarray([2**k for k in range(4, 12)], dtype=float)
        log_fit = fit_power_model(x, np.log(x))
        linear_fit = fit_power_model(x, x / 2.0)
        assert log_fit.coefficients[1] < 0.5
        assert linear_fit.coefficients[1] == pytest.approx(1.0, abs=1e-6)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            fit_log_model([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_log_model([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_log_model([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_model([1.0, 2.0], [0.0, 1.0])

    def test_unknown_model_cannot_predict(self):
        from repro.analysis.fitting import FitResult

        bogus = FitResult(model="y = weird", coefficients=(1.0,), r_squared=1.0)
        with pytest.raises(ValueError):
            bogus.predict(2.0)


class TestThresholds:
    def test_monotone_index(self):
        assert monotone_threshold_index([0.0, 0.2, 0.6, 0.9], 0.5) == 2
        assert monotone_threshold_index([0.0, 0.1], 0.5) is None
        assert monotone_threshold_index([], 0.5) is None

    def test_non_monotone_dips_smoothed(self):
        # The dip at index 2 should not matter once the curve has crossed.
        assert monotone_threshold_index([0.1, 0.6, 0.4, 0.8], 0.5) == 1

    def test_estimate_with_interpolation(self):
        grid = [1.0, 2.0, 3.0, 4.0]
        probabilities = [0.0, 0.25, 0.75, 1.0]
        estimate = estimate_probability_threshold(grid, probabilities, target=0.5)
        assert estimate == pytest.approx(2.5)

    def test_estimate_without_interpolation(self):
        grid = [1.0, 2.0, 3.0]
        probabilities = [0.1, 0.4, 0.9]
        estimate = estimate_probability_threshold(
            grid, probabilities, target=0.5, interpolate=False
        )
        assert estimate == 3.0

    def test_estimate_never_crossing(self):
        assert estimate_probability_threshold([1.0, 2.0], [0.1, 0.2], target=0.9) is None

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            estimate_probability_threshold([1.0, 1.0], [0.1, 0.9])
        with pytest.raises(ValueError):
            estimate_probability_threshold([1.0, 2.0], [0.1])


class TestComparison:
    def test_row_markdown(self):
        row = ComparisonRow("TD", "Θ(log n)", "3.9·log n", True, note="fits")
        rendered = row.as_markdown()
        assert rendered.startswith("| TD |")
        assert "yes" in rendered

    def test_failed_row_flagged(self):
        row = ComparisonRow("TD", "Θ(log n)", "n/2", False)
        assert "NO" in row.as_markdown()

    def test_table_structure(self):
        table = build_comparison_table(
            [ComparisonRow("a", "1", "1", True), ComparisonRow("b", "2", "3", False)]
        )
        lines = table.splitlines()
        assert lines[0].startswith("| Quantity")
        assert len(lines) == 4

    def test_empty_table_is_header_only(self):
        assert build_comparison_table([]).count("\n") == 1
