"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import exceptions as exc


def test_all_exceptions_derive_from_repro_error():
    for name in exc.__all__:
        cls = getattr(exc, name)
        assert issubclass(cls, exc.ReproError)


def test_invalid_vertex_error_carries_context():
    error = exc.InvalidVertexError(7, 5)
    assert error.vertex == 7
    assert error.n == 5
    assert "7" in str(error)
    assert isinstance(error, IndexError)


def test_invalid_edge_error_is_key_error():
    error = exc.InvalidEdgeError((1, 2))
    assert error.edge == (1, 2)
    assert isinstance(error, KeyError)


def test_lifetime_error_reports_label_and_lifetime():
    error = exc.LifetimeError(9, 4)
    assert error.label == 9
    assert error.lifetime == 4
    assert isinstance(error, ValueError)


def test_unreachable_vertex_error_reports_pair():
    error = exc.UnreachableVertexError(0, 3)
    assert error.source == 0
    assert error.target == 3
    assert "0" in str(error) and "3" in str(error)


def test_convergence_error_iterations():
    error = exc.ConvergenceError("did not converge", iterations=42)
    assert error.iterations == 42


def test_configuration_error_is_value_error():
    assert issubclass(exc.ConfigurationError, ValueError)


def test_catching_base_class_catches_all():
    with pytest.raises(exc.ReproError):
        raise exc.SerializationError("boom")
