"""Tests for repro.core.reachability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labeling import assign_deterministic_labels, normalized_urtn, uniform_random_labels
from repro.core.reachability import (
    is_temporally_connected,
    preserves_reachability,
    reachability_matrix,
    reachable_fraction,
    reachable_set,
)
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.static_graph import StaticGraph


class TestReachabilityMatrix:
    def test_diagonal_true(self, random_clique_instance):
        matrix = reachability_matrix(random_clique_instance)
        assert np.all(np.diag(matrix))

    def test_clique_fully_reachable(self, random_clique_instance):
        assert reachability_matrix(random_clique_instance).all()

    def test_path_with_decreasing_labels(self, small_path):
        matrix = reachability_matrix(small_path)
        assert matrix[0, 3]
        assert not matrix[3, 0]

    def test_reachable_set(self, small_path):
        assert reachable_set(small_path, 0).tolist() == [0, 1, 2, 3]
        assert reachable_set(small_path, 3).tolist() == [2, 3]


class TestReachableFraction:
    def test_full_reachability_gives_one(self, random_clique_instance):
        assert reachable_fraction(random_clique_instance) == 1.0

    def test_partial_reachability(self, small_path):
        fraction = reachable_fraction(small_path)
        assert 0.0 < fraction < 1.0

    def test_singleton_graph(self):
        network = TemporalGraph(StaticGraph(1), [])
        assert reachable_fraction(network) == 1.0

    def test_no_labels_fraction_zero(self):
        network = TemporalGraph(path_graph(3), [[], []])
        assert reachable_fraction(network) == 0.0


class TestTreachPredicate:
    def test_clique_single_label_preserves_reachability(self):
        # The clique is the only graph for which one label per edge suffices.
        graph = complete_graph(10, directed=True)
        network = normalized_urtn(graph, seed=1)
        assert preserves_reachability(network)
        assert is_temporally_connected(network)

    def test_star_single_label_fails(self):
        graph = star_graph(6)
        network = uniform_random_labels(graph, labels_per_edge=1, seed=0)
        assert not preserves_reachability(network)

    def test_star_with_two_increasing_labels_succeeds(self, two_label_star):
        assert preserves_reachability(two_label_star)
        assert is_temporally_connected(two_label_star)

    def test_disconnected_graph_ignores_missing_static_paths(self):
        # Two components, each internally temporally reachable: Treach holds
        # even though the graph is not temporally connected as a whole.
        graph = StaticGraph(4, [(0, 1), (2, 3)])
        network = assign_deterministic_labels(
            graph, {(0, 1): [1, 2], (2, 3): [1, 2]}, lifetime=4
        )
        assert preserves_reachability(network)
        assert not is_temporally_connected(network)

    def test_disconnected_graph_with_unreachable_component_fails(self):
        graph = StaticGraph(4, [(0, 1), (2, 3)])
        network = assign_deterministic_labels(graph, {(0, 1): [1, 2]}, lifetime=4)
        assert not preserves_reachability(network)

    def test_singleton(self):
        network = TemporalGraph(StaticGraph(1), [])
        assert preserves_reachability(network)
        assert is_temporally_connected(network)
