"""Tests for repro.graphs.conversion (networkx round trips)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs.conversion import from_networkx, to_networkx
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.static_graph import StaticGraph


def test_to_networkx_preserves_structure():
    graph = star_graph(5)
    nx_graph = to_networkx(graph)
    assert nx_graph.number_of_nodes() == 5
    assert nx_graph.number_of_edges() == 4
    assert not nx_graph.is_directed()


def test_to_networkx_directed():
    graph = complete_graph(3, directed=True)
    nx_graph = to_networkx(graph)
    assert nx_graph.is_directed()
    assert nx_graph.number_of_edges() == 6


def test_roundtrip_undirected():
    graph = path_graph(6)
    assert from_networkx(to_networkx(graph)) == graph


def test_roundtrip_directed():
    graph = StaticGraph(4, [(0, 1), (1, 2), (3, 0)], directed=True)
    assert from_networkx(to_networkx(graph)) == graph


def test_from_networkx_relabels_arbitrary_nodes():
    nx_graph = nx.Graph()
    nx_graph.add_edges_from([("c", "a"), ("a", "b")])
    graph = from_networkx(nx_graph)
    assert graph.n == 3
    assert graph.m == 2


def test_from_networkx_drops_self_loops():
    nx_graph = nx.Graph()
    nx_graph.add_edges_from([(0, 0), (0, 1)])
    graph = from_networkx(nx_graph)
    assert graph.m == 1


def test_from_networkx_rejects_multigraph():
    with pytest.raises(GraphError):
        from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))


def test_name_propagates_through_roundtrip():
    graph = star_graph(4)
    assert from_networkx(to_networkx(graph)).name == graph.name
