"""Determinism contract of the parallel engine: jobs-invariance and resume.

These tests pin the PR's acceptance criterion: for a fixed master seed the
Monte-Carlo results (every raw metric value, hence mean/std/min/max/count)
are bit-identical across ``jobs`` counts, serial vs multiprocess executors,
shard sizes, and crash/resume boundaries.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import pytest

from repro.engine.driver import run_sharded
from repro.engine.executors import (
    MultiprocessExecutor,
    SerialExecutor,
    ShardResult,
    ShardWork,
    execute_shard,
)
from repro.exceptions import CheckpointError, ConfigurationError
from repro.experiments.exp_er_connectivity import trial_er_connectivity
from repro.montecarlo.convergence import FixedBudgetStopping, RelativeErrorStopping
from repro.montecarlo.experiment import Experiment
from repro.montecarlo.runner import MonteCarloRunner, run_trials
from repro.montecarlo.sweep import ParameterSweep

#: A real (module-level, hence picklable) paper workload: G(n, p)
#: connectivity trials at modest size.
ER_EXPERIMENT = Experiment(
    name="E7-er-connectivity",
    trial=trial_er_connectivity,
    parameters={"n": 48, "multiplier": 1.0},
)


class _CrashingExecutor(SerialExecutor):
    """Runs shards serially but dies after ``survive`` completions."""

    def __init__(self, survive: int) -> None:
        self._survive = survive

    def map_shards(self, works: Sequence[ShardWork]) -> Iterator[ShardResult]:
        for completed, work in enumerate(works):
            if completed >= self._survive:
                raise RuntimeError("simulated crash")
            yield execute_shard(work)


class TestJobsInvariance:
    def test_trial_results_identical_across_jobs(self):
        """ISSUE acceptance: jobs in {1, 2, 4} give bit-identical TrialResults."""
        reference = run_trials(ER_EXPERIMENT, repetitions=20, seed=2014, jobs=1)
        for jobs in (2, 4):
            result = run_trials(ER_EXPERIMENT, repetitions=20, seed=2014, jobs=jobs)
            assert result.metrics == reference.metrics, f"jobs={jobs} diverged"
            assert result.repetitions == reference.repetitions
            for metric in reference.metric_names():
                assert result.summary(metric) == reference.summary(metric)

    def test_serial_vs_multiprocess_executor_identical(self):
        serial = run_trials(ER_EXPERIMENT, repetitions=12, seed=7, executor=SerialExecutor())
        parallel = run_trials(
            ER_EXPERIMENT, repetitions=12, seed=7, executor=MultiprocessExecutor(3)
        )
        assert serial.metrics == parallel.metrics

    def test_raw_values_invariant_to_shard_size(self):
        a = run_trials(ER_EXPERIMENT, repetitions=15, seed=3, shard_size=1)
        b = run_trials(ER_EXPERIMENT, repetitions=15, seed=3, shard_size=7)
        assert a.metrics == b.metrics

    def test_matches_sequential_reference_semantics(self):
        """The engine path reproduces the historical sequential runner exactly."""
        from repro.utils.seeding import spawn_rngs

        engine = run_trials(ER_EXPERIMENT, repetitions=10, seed=11, jobs=2)
        sequential = [
            ER_EXPERIMENT.run_single(rng) for rng in spawn_rngs(11, 10)
        ]
        for metric in engine.metric_names():
            assert engine.values(metric) == [t[metric] for t in sequential]

    def test_streaming_aggregation_identical_across_jobs(self):
        one = run_trials(
            ER_EXPERIMENT, repetitions=20, seed=5, jobs=1, aggregation="streaming"
        )
        four = run_trials(
            ER_EXPERIMENT, repetitions=20, seed=5, jobs=4, aggregation="streaming"
        )
        for metric in one.metric_names():
            assert one.summary(metric) == four.summary(metric)
        assert one.metrics == four.metrics  # reservoir samples, also deterministic

    def test_sweep_identical_across_jobs(self):
        sweep = ParameterSweep({"multiplier": [0.5, 1.0, 2.0]}, constants={"n": 32})
        runner_serial = MonteCarloRunner(stopping=FixedBudgetStopping(8), seed=1)
        runner_parallel = MonteCarloRunner(stopping=FixedBudgetStopping(8), seed=1, jobs=2)
        serial = runner_serial.run_sweep(ER_EXPERIMENT, sweep)
        parallel = runner_parallel.run_sweep(ER_EXPERIMENT, sweep)
        assert [point.metrics for point in serial] == [point.metrics for point in parallel]


class TestCrashResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        """ISSUE acceptance: restart from a checkpoint equals the straight run."""
        uninterrupted = run_trials(ER_EXPERIMENT, repetitions=18, seed=42, shard_size=3)

        checkpoint = tmp_path / "ckpt"
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_trials(
                ER_EXPERIMENT,
                repetitions=18,
                seed=42,
                shard_size=3,
                executor=_CrashingExecutor(survive=2),
                checkpoint_dir=checkpoint,
            )
        # The crash left exactly the two completed shards on disk.
        assert len(list(checkpoint.glob("shard-*.json"))) == 2

        resumed = run_trials(
            ER_EXPERIMENT, repetitions=18, seed=42, shard_size=3, checkpoint_dir=checkpoint
        )
        assert resumed.metrics == uninterrupted.metrics
        assert resumed.repetitions == uninterrupted.repetitions

    def test_resume_skips_completed_shards(self, tmp_path):
        first = run_sharded(
            ER_EXPERIMENT, budget=12, seed=9, shard_size=4, checkpoint_dir=tmp_path
        )
        assert first.shards_executed == 3 and first.shards_resumed == 0
        second = run_sharded(
            ER_EXPERIMENT, budget=12, seed=9, shard_size=4, checkpoint_dir=tmp_path
        )
        assert second.shards_executed == 0 and second.shards_resumed == 3
        assert second.values == first.values

    def test_checkpoint_of_other_run_rejected(self, tmp_path):
        run_sharded(ER_EXPERIMENT, budget=12, seed=9, shard_size=4, checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError):
            run_sharded(
                ER_EXPERIMENT, budget=12, seed=10, shard_size=4, checkpoint_dir=tmp_path
            )
        with pytest.raises(CheckpointError):
            run_sharded(
                ER_EXPERIMENT, budget=16, seed=9, shard_size=4, checkpoint_dir=tmp_path
            )

    def test_checkpoint_of_other_parameters_rejected(self, tmp_path):
        """Same experiment name at a different parameter point must not resume."""
        run_sharded(ER_EXPERIMENT, budget=12, seed=9, shard_size=4, checkpoint_dir=tmp_path)
        other = ER_EXPERIMENT.with_parameters(multiplier=2.0)
        with pytest.raises(CheckpointError):
            run_sharded(other, budget=12, seed=9, shard_size=4, checkpoint_dir=tmp_path)

    def test_sweep_checkpoints_per_point(self, tmp_path):
        sweep = ParameterSweep({"multiplier": [0.5, 2.0]}, constants={"n": 32})
        runner = MonteCarloRunner(
            stopping=FixedBudgetStopping(6), seed=4, checkpoint_dir=tmp_path
        )
        plain = MonteCarloRunner(stopping=FixedBudgetStopping(6), seed=4)
        checkpointed = runner.run_sweep(ER_EXPERIMENT, sweep)
        assert (tmp_path / "point-0000" / "meta.json").exists()
        assert (tmp_path / "point-0001" / "meta.json").exists()
        # Resuming the whole sweep from disk reproduces it bit for bit.
        resumed = runner.run_sweep(ER_EXPERIMENT, sweep)
        reference = plain.run_sweep(ER_EXPERIMENT, sweep)
        assert [p.metrics for p in resumed] == [p.metrics for p in checkpointed]
        assert [p.metrics for p in resumed] == [p.metrics for p in reference]


class TestAdaptiveRulesStaySequential:
    def test_parallel_options_rejected_with_adaptive_stopping(self):
        adaptive = RelativeErrorStopping("connected", relative_tolerance=0.5)
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(stopping=adaptive, jobs=4)
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(stopping=adaptive, checkpoint_dir="/tmp/nope")
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(stopping=adaptive, aggregation="streaming")

    def test_adaptive_serial_still_works(self):
        adaptive = RelativeErrorStopping(
            "p", relative_tolerance=0.5, min_repetitions=5, max_repetitions=50
        )
        runner = MonteCarloRunner(stopping=adaptive, seed=0)
        result = runner.run(ER_EXPERIMENT)
        assert 5 <= result.repetitions <= 50

    def test_bad_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(aggregation="bogus")
