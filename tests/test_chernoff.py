"""Tests for repro.randomness.chernoff."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.randomness.chernoff import (
    binomial_chernoff_lower_tail,
    binomial_chernoff_two_sided,
    binomial_chernoff_upper_tail,
    union_bound,
)


class TestChernoffBounds:
    def test_bounds_are_probabilities(self):
        for bound in (
            binomial_chernoff_lower_tail(100, 0.3, 0.5),
            binomial_chernoff_upper_tail(100, 0.3, 0.5),
            binomial_chernoff_two_sided(100, 0.3, 0.5),
        ):
            assert 0.0 <= bound <= 1.0

    def test_lower_tail_dominates_true_probability(self):
        n, p, beta = 200, 0.4, 0.5
        bound = binomial_chernoff_lower_tail(n, p, beta)
        true = stats.binom.cdf(int((1 - beta) * n * p), n, p)
        assert bound >= true

    def test_upper_tail_dominates_true_probability(self):
        n, p, beta = 200, 0.4, 0.5
        bound = binomial_chernoff_upper_tail(n, p, beta)
        true = stats.binom.sf(int(np.ceil((1 + beta) * n * p)) - 1, n, p)
        assert bound >= true

    def test_bound_shrinks_with_more_trials(self):
        small = binomial_chernoff_lower_tail(50, 0.3, 0.5)
        large = binomial_chernoff_lower_tail(500, 0.3, 0.5)
        assert large < small

    def test_two_sided_is_sum_of_tails(self):
        n, p, beta = 80, 0.2, 0.4
        expected = binomial_chernoff_lower_tail(n, p, beta) + binomial_chernoff_upper_tail(
            n, p, beta
        )
        assert binomial_chernoff_two_sided(n, p, beta) == pytest.approx(min(1.0, expected))

    def test_paper_lemma1_constants(self):
        # Lemma 1: with c1 = 33 and beta = 1/2 the failure probability is at
        # most n^{-4}; check the Chernoff expression actually reaches that level.
        n = 1000
        c1 = 33
        p1 = c1 * np.log(n) / n
        bound = binomial_chernoff_lower_tail(n - 1, p1, 0.5)
        # exp(-(1/8)·c1·log n · (n-1)/n) ≈ n^{-c1/8}; comfortably below n^{-4}
        assert bound < n ** (-4.0) * 10

    def test_beta_out_of_range(self):
        with pytest.raises(ValueError):
            binomial_chernoff_lower_tail(10, 0.5, 1.5)
        with pytest.raises(ValueError):
            binomial_chernoff_upper_tail(10, 0.5, 0.0)


class TestUnionBound:
    def test_scalar_arguments(self):
        assert union_bound(0.1, 0.2, 0.3) == pytest.approx(0.6)

    def test_iterable_argument(self):
        assert union_bound([0.1, 0.2], 0.05) == pytest.approx(0.35)

    def test_clipped_at_one(self):
        assert union_bound(0.7, 0.8) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            union_bound(-0.1)

    def test_empty_is_zero(self):
        assert union_bound() == 0.0
