"""Integration tests: every registered experiment runs end-to-end at quick scale."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    exp_dissemination,
    exp_er_connectivity,
    exp_expansion,
    exp_fcase,
    exp_general_por,
    exp_lifetime,
    exp_multilabel,
    exp_star_por,
    exp_temporal_diameter,
)
from repro.experiments.registry import (
    DESCRIPTIONS,
    EXPERIMENTS,
    get_experiment,
    run_experiments,
)
from repro.experiments.reporting import ExperimentReport, write_experiments_markdown
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_ids_registered(self):
        assert sorted(EXPERIMENTS) == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
        ]
        assert sorted(DESCRIPTIONS) == sorted(EXPERIMENTS)

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("e3") is EXPERIMENTS["E3"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("E99")


@pytest.mark.parametrize(
    "module, experiment_id",
    [
        (exp_temporal_diameter, "E1"),
        (exp_lifetime, "E2"),
        (exp_expansion, "E3"),
        (exp_dissemination, "E4"),
        (exp_star_por, "E5"),
        (exp_general_por, "E6"),
        (exp_er_connectivity, "E7"),
        (exp_fcase, "E8"),
        (exp_multilabel, "E9"),
    ],
)
class TestExperimentRuns:
    def test_quick_run_produces_consistent_report(self, module, experiment_id):
        report = module.run("quick", seed=1)
        assert isinstance(report, ExperimentReport)
        assert report.experiment_id == experiment_id
        assert report.records, "every experiment must produce a measurement table"
        assert report.comparison, "every experiment must compare against the paper"
        assert report.consistent, (
            f"{experiment_id} reported an inconsistency with the paper: "
            + "; ".join(
                f"{row.quantity} (paper={row.paper}, measured={row.measured})"
                for row in report.comparison
                if not row.matches
            )
        )

    def test_markdown_rendering(self, module, experiment_id):
        report = module.run("quick", seed=2)
        markdown = report.to_markdown()
        assert markdown.startswith(f"## {experiment_id}")
        assert "Paper claim" in markdown
        text = report.to_text()
        assert experiment_id in text


class TestSpecificClaims:
    """Spot checks that the quick-scale measurements show the paper's shapes."""

    def test_e1_temporal_diameter_is_logarithmic(self):
        report = exp_temporal_diameter.run("quick", seed=11)
        for record in report.records:
            n = record["n"]
            assert record["mean_temporal_diameter"] >= math.log(n) - 1
            # labels live in {1, …, n}, so TD ≤ n always; the asymptotic gap to
            # the n/2 direct-wait baseline only opens up beyond small n
            assert record["mean_temporal_diameter"] <= n
            if n >= 64:
                assert record["mean_temporal_diameter"] <= n / 2

    def test_e2_diameter_increases_with_lifetime(self):
        report = exp_lifetime.run("quick", seed=12)
        diameters = [record["mean_temporal_diameter"] for record in report.records]
        assert diameters[-1] > diameters[0]

    def test_e5_single_label_fails_on_star(self):
        report = exp_star_por.run("quick", seed=13)
        for record in report.records:
            assert record["prob_r=1"] <= 0.1
            assert record["prob_r=max"] >= 0.8

    def test_e7_threshold_ordering(self):
        report = exp_er_connectivity.run("quick", seed=14)
        records = sorted(report.records, key=lambda r: r["p_over_critical"])
        assert records[0]["P[connected]"] <= records[-1]["P[connected]"]

    def test_e9_extra_labels_speed_up_dissemination(self):
        report = exp_multilabel.run("quick", seed=15)
        records = sorted(report.records, key=lambda r: r["labels_per_edge_r"])
        assert records[-1]["mean_temporal_diameter"] <= records[0]["mean_temporal_diameter"]

    def test_e8_covers_all_distributions(self):
        report = exp_fcase.run("quick", seed=16)
        assert {record["distribution"] for record in report.records} == {
            "uniform",
            "geometric",
            "zipf",
        }


class TestRunExperimentsAndReportFile:
    def test_run_subset_and_write_markdown(self, tmp_path):
        reports = run_experiments(["E1", "E7"], scale="quick", seed=3)
        assert [report.experiment_id for report in reports] == ["E1", "E7"]
        path = write_experiments_markdown(reports, tmp_path / "EXPERIMENTS.md")
        content = path.read_text(encoding="utf-8")
        assert "## E1" in content and "## E7" in content
        assert "Paper vs. measured" in content
