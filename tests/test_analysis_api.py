"""Tests for the :class:`repro.analysis_api.NetworkAnalysis` handle.

Covers: equality with the historical free functions, the compute-once
memoization contract (asserted through the counting hook, including through
the scenario ``TrialContext`` used by every Monte-Carlo trial), derived
restricted analyses, row queries, expansion/PoR memoization and cache
control.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis_api as analysis_api
from repro import (
    NetworkAnalysis,
    UNREACHABLE,
    complete_graph,
    expansion_process,
    is_temporally_connected,
    normalized_urtn,
    opt_labels_star,
    preserves_reachability,
    price_of_randomness,
    star_graph,
    temporal_diameter,
    temporal_distance,
    temporal_distance_matrix,
    temporal_distance_summary,
    uniform_random_labels,
)
from repro.core.distances import (
    average_temporal_distance,
    temporal_eccentricities,
    temporal_radius,
)
from repro.core.reachability import reachability_matrix, reachable_fraction
from repro.exceptions import ConfigurationError
from repro.scenarios.metrics import METRICS, TrialContext
from repro.scenarios.specs import MetricSpec
from repro.types import Journey


@pytest.fixture
def clique_network():
    return normalized_urtn(complete_graph(24, directed=True), seed=7)


class _LiveCounts:
    """Dict-like live view of a :class:`ComputeEvents` scope's compute counts."""

    def __init__(self, events: analysis_api.ComputeEvents) -> None:
        self._events = events

    def _counts(self) -> dict[str, int]:
        return self._events.counts

    def __eq__(self, other: object) -> bool:
        return self._counts() == other

    def __getitem__(self, key: str) -> int:
        return self._counts()[key]

    def get(self, key: str, default: int | None = None) -> int | None:
        return self._counts().get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._counts()

    def __repr__(self) -> str:
        return repr(self._counts())


@pytest.fixture
def counting_hook():
    """Scoped per-artifact compute counter (the compute_events probe)."""
    with analysis_api.compute_events() as events:
        yield _LiveCounts(events)


class TestHandleMatchesFreeFunctions:
    def test_scalar_views(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        assert analysis.diameter == temporal_diameter(clique_network)
        assert analysis.radius == temporal_radius(clique_network)
        assert analysis.average_distance == average_temporal_distance(clique_network)
        assert analysis.is_temporally_connected == is_temporally_connected(
            clique_network
        )
        assert analysis.summary == temporal_distance_summary(clique_network)

    def test_array_views(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        assert np.array_equal(
            analysis.arrival_matrix(), temporal_distance_matrix(clique_network)
        )
        assert np.array_equal(
            analysis.eccentricities(), temporal_eccentricities(clique_network)
        )
        assert np.array_equal(
            analysis.reachability(), reachability_matrix(clique_network)
        )
        assert analysis.reachable_fraction == reachable_fraction(clique_network)

    def test_preserves_reachability_matches(self):
        for seed in range(6):
            network = uniform_random_labels(
                star_graph(9), labels_per_edge=1, lifetime=9, seed=seed
            )
            assert NetworkAnalysis(network).preserves_reachability() == (
                preserves_reachability(network)
            )

    def test_partially_unreachable_instance(self):
        # A path with one label per edge in the "wrong" order: unreachable pairs.
        from repro.core.temporal_graph import TemporalGraph
        from repro import path_graph

        network = TemporalGraph(path_graph(4), [(3,), (2,), (1,)])
        analysis = NetworkAnalysis(network)
        assert analysis.diameter == UNREACHABLE
        assert not analysis.is_temporally_connected
        assert not analysis.preserves_reachability()
        assert analysis.reachable_fraction < 1.0

    def test_trivial_networks(self):
        from repro.core.temporal_graph import TemporalGraph
        from repro.graphs.static_graph import StaticGraph

        single = TemporalGraph(StaticGraph(1, []), [])
        analysis = NetworkAnalysis(single)
        assert analysis.diameter == 0
        assert analysis.radius == 0
        assert analysis.average_distance == 0.0
        assert analysis.reachable_fraction == 1.0
        assert analysis.is_temporally_connected
        assert analysis.preserves_reachability()
        assert np.array_equal(analysis.eccentricities(), np.zeros(1, dtype=np.int64))

    def test_rejects_non_network(self):
        with pytest.raises(ConfigurationError):
            NetworkAnalysis(complete_graph(4))


class TestMemoization:
    def test_each_artifact_computed_at_most_once(self, clique_network, counting_hook):
        analysis = NetworkAnalysis(clique_network)
        for _ in range(3):
            analysis.diameter
            analysis.radius
            analysis.average_distance
            analysis.reachable_fraction
            analysis.is_temporally_connected
            analysis.eccentricities()
            analysis.reachability()
            analysis.arrival_matrix()
            analysis.preserves_reachability()
        assert counting_hook == {
            "arrival_matrix": 1,
            "eccentricities": 1,
            "reachability": 1,
            "summary": 1,
            "static_reachability": 1,
        }

    def test_invalidate_forces_recompute(self, clique_network, counting_hook):
        analysis = NetworkAnalysis(clique_network)
        before = analysis.diameter
        analysis.invalidate()
        assert analysis.diameter == before
        assert counting_hook["arrival_matrix"] == 2

    def test_set_compute_hook_shim_is_gone(self):
        assert not hasattr(analysis_api, "set_compute_hook")

    def test_compute_events_reports_hits(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        with analysis_api.compute_events() as events:
            analysis.arrival_matrix()
            analysis.arrival_matrix()
        assert events.counts == {"arrival_matrix": 1}
        assert events.hits == {"arrival_matrix": 1}

    def test_compute_events_nests_and_composes(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        with analysis_api.compute_events() as outer:
            with analysis_api.compute_events() as inner:
                analysis.arrival_matrix()
            analysis.eccentricities()
        assert inner.counts == {"arrival_matrix": 1}
        assert outer.counts == {"arrival_matrix": 1, "eccentricities": 1}

    def test_returned_arrays_are_read_only(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        for array in (
            analysis.arrival_matrix(),
            analysis.eccentricities(),
            analysis.reachability(),
            analysis.distances_from([0, 1]),
        ):
            with pytest.raises(ValueError):
                array[0] = 0

    def test_expansion_memoized_and_matches_free_function(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        first = analysis.expansion(0, 5)
        again = analysis.expansion(0, 5)
        assert first is again
        assert counting_hook.get("expansion") == 1
        direct = expansion_process(clique_network, 0, 5)
        assert first.success == direct.success
        assert first.forward_layer_sizes == direct.forward_layer_sizes

    def test_por_audit_memoized(self, counting_hook):
        network = uniform_random_labels(
            star_graph(12), labels_per_edge=4, lifetime=12, seed=3
        )
        analysis = NetworkAnalysis(network)
        audit = analysis.por_audit()
        assert analysis.por_audit() is audit
        assert counting_hook.get("por_audit") == 1
        assert audit.r == 4
        assert audit.total_labels == network.total_labels
        assert audit.measured_por == price_of_randomness(
            network.graph, 4, opt=audit.opt
        )
        # explicit arguments form their own memo entries
        explicit = analysis.por_audit(8, opt=opt_labels_star(12))
        assert explicit.r == 8
        assert explicit.opt == opt_labels_star(12)
        assert counting_hook["por_audit"] == 2

    def test_por_audit_requires_labels(self):
        from repro.core.temporal_graph import TemporalGraph

        empty = TemporalGraph(star_graph(4), {})
        with pytest.raises(ConfigurationError, match="r >= 1"):
            NetworkAnalysis(empty).por_audit()


class TestRowQueries:
    def test_distances_from_slices_cached_matrix(self, clique_network, counting_hook):
        analysis = NetworkAnalysis(clique_network)
        full = analysis.arrival_matrix()
        rows = analysis.distances_from([3, 0])
        assert np.array_equal(rows, full[[3, 0]])
        assert "source_rows" not in counting_hook

    def test_distances_from_without_matrix_uses_memoized_rows(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        rows = analysis.distances_from([2, 4])
        assert counting_hook == {"source_rows": 1}
        again = analysis.distances_from([4, 2])
        assert counting_hook == {"source_rows": 1}  # served from the row cache
        assert np.array_equal(rows[::-1], again)
        assert np.array_equal(rows, temporal_distance_matrix(clique_network, [2, 4]))

    def test_distance_matches_temporal_distance(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        assert analysis.distance(1, 6) == temporal_distance(clique_network, 1, 6)
        analysis.arrival_matrix()
        assert analysis.distance(1, 6) == temporal_distance(clique_network, 1, 6)

    def test_distances_from_none_is_full_matrix(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        assert np.array_equal(
            analysis.distances_from(), temporal_distance_matrix(clique_network)
        )

    def test_invalid_source_rejected(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        with pytest.raises(ValueError):
            analysis.distances_from([99])
        with pytest.raises(ValueError):
            analysis.distance(0, 99)


class TestRestrictedAnalysis:
    def test_derived_matrix_matches_fresh_computation(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        analysis.arrival_matrix()
        for k in (3, analysis.diameter, clique_network.lifetime):
            derived = analysis.restricted_to_max_label(k)
            fresh = NetworkAnalysis(clique_network.restricted_to_max_label(k))
            assert np.array_equal(derived.arrival_matrix(), fresh.arrival_matrix())

    def test_derivation_skips_the_sweep(self, clique_network, counting_hook):
        analysis = NetworkAnalysis(clique_network)
        analysis.arrival_matrix()
        child = analysis.restricted_to_max_label(5)
        child.diameter  # reductions run, but no second arrival sweep
        assert counting_hook["arrival_matrix"] == 1

    def test_without_cached_matrix_child_computes_its_own(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        child = analysis.restricted_to_max_label(5)
        child.arrival_matrix()
        assert counting_hook["arrival_matrix"] == 1  # the child's, not the parent's

    def test_child_wraps_restricted_network(self, clique_network):
        child = NetworkAnalysis(clique_network).restricted_to_max_label(4)
        assert child.network.time_arc_labels.size == int(
            (clique_network.time_arc_labels <= 4).sum()
        )


class TestTrialContextSharing:
    SUITE = (
        MetricSpec("temporal_diameter"),
        MetricSpec(
            "distance_summary",
            {"fields": ["mean_temporal_distance", "temporal_radius"]},
        ),
        MetricSpec("ratio_to_log_n"),
        MetricSpec("strong_reachability"),
    )

    def _run_suite(self, network) -> tuple[dict[str, float], TrialContext]:
        ctx = TrialContext(
            graph=network.graph,
            network=network,
            params={"n": network.n},
            rng=np.random.default_rng(0),
        )
        for spec in self.SUITE:
            ctx.metrics.update(METRICS[spec.metric](ctx, spec.options))
        return dict(ctx.metrics), ctx

    def test_multi_metric_suite_computes_each_artifact_once(
        self, clique_network, counting_hook
    ):
        metrics, ctx = self._run_suite(clique_network)
        assert counting_hook == {
            "arrival_matrix": 1,
            "eccentricities": 1,
            "reachability": 1,
            "summary": 1,
            "static_reachability": 1,
        }
        assert ctx.analysis is not None
        assert metrics["temporal_diameter"] == float(temporal_diameter(clique_network))

    def test_require_analysis_reuses_one_handle(self, clique_network):
        ctx = TrialContext(
            graph=clique_network.graph,
            network=clique_network,
            params={},
            rng=np.random.default_rng(0),
        )
        first = ctx.require_analysis("temporal_diameter")
        assert ctx.require_analysis("strong_reachability") is first

    def test_require_analysis_without_network_raises(self):
        ctx = TrialContext(
            graph=None, network=None, params={}, rng=np.random.default_rng(0)
        )
        with pytest.raises(ConfigurationError, match="temporal_diameter"):
            ctx.require_analysis("temporal_diameter")

    def test_expansion_metric_journey_still_reconstructable(self):
        network = normalized_urtn(complete_graph(32, directed=True), seed=11)
        ctx = TrialContext(
            graph=network.graph,
            network=network,
            params={"n": 32},
            rng=np.random.default_rng(5),
        )
        metrics = METRICS["expansion_process"](ctx, {})
        assert set(metrics) >= {"success", "time_bound", "sqrt_n"}
        if metrics["success"]:
            assert metrics["optimal_arrival"] <= metrics["arrival_time"]
        # the trace is memoized on the shared handle
        assert ctx.analysis is not None and ctx.analysis._expansions


class TestReverseArtifacts:
    """The target-side (reverse-sweep) artifacts obey the same compute-once
    contract as the forward ones — and never trigger a forward sweep."""

    def test_departure_matrix_computed_at_most_once(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        for _ in range(3):
            analysis.departure_matrix()
            analysis.departures_to()
            analysis.distances_to()
        assert counting_hook == {"departure_matrix": 1}

    def test_invalidate_clears_reverse_artifacts(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        before = analysis.departure_matrix().copy()
        analysis.invalidate()
        np.testing.assert_array_equal(analysis.departure_matrix(), before)
        assert counting_hook["departure_matrix"] == 2

    def test_single_target_query_never_runs_forward_sweep(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        analysis.distances_to([3])
        analysis.reverse_reachable_set(3)
        analysis.latest_departure(0, 3)
        assert counting_hook == {"target_columns": 1}

    def test_departures_to_served_from_cached_matrix(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        matrix = analysis.departure_matrix()
        rows = analysis.departures_to([5, 2])
        np.testing.assert_array_equal(rows, matrix[[5, 2]])
        assert counting_hook == {"departure_matrix": 1}

    def test_target_columns_match_full_matrix(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        narrow = analysis.distances_to([4])
        full = NetworkAnalysis(clique_network).departure_matrix()
        horizon = clique_network.lifetime + 1
        from repro import NEVER

        expected = np.where(full[4] == NEVER, UNREACHABLE, horizon - full[4])
        np.testing.assert_array_equal(narrow[0], expected)

    def test_distances_to_diagonal_and_sentinels(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        distances = analysis.distances_to()
        assert (np.diag(distances) == 0).all()
        finite = distances[distances < UNREACHABLE]
        assert (finite <= clique_network.lifetime).all()

    def test_centrality_artifact_computed_once_for_whole_family(
        self, clique_network, counting_hook
    ):
        analysis = NetworkAnalysis(clique_network)
        for _ in range(2):
            analysis.closeness()
            analysis.harmonic_closeness()
            analysis.influence_counts()
            analysis.reach_counts()
        assert counting_hook == {
            "arrival_matrix": 1,
            "reachability": 1,
            "centrality": 1,
        }

    def test_centrality_free_functions_delegate(self, clique_network):
        from repro import (
            temporal_closeness,
            temporal_harmonic_closeness,
            temporal_influence_counts,
            temporal_reach_counts,
        )

        analysis = NetworkAnalysis(clique_network)
        np.testing.assert_allclose(
            temporal_closeness(clique_network), analysis.closeness()
        )
        np.testing.assert_allclose(
            temporal_harmonic_closeness(clique_network),
            analysis.harmonic_closeness(),
        )
        np.testing.assert_array_equal(
            temporal_influence_counts(clique_network), analysis.influence_counts()
        )
        np.testing.assert_array_equal(
            temporal_reach_counts(clique_network), analysis.reach_counts()
        )

    def test_reverse_reachability_transposes_forward(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        forward = analysis.reachability()
        for target in [0, 7, 13]:
            np.testing.assert_array_equal(
                analysis.reverse_reachable_set(target),
                np.flatnonzero(forward[:, target]),
            )

    def test_returned_arrays_are_read_only(self, clique_network):
        analysis = NetworkAnalysis(clique_network)
        for array in (
            analysis.departure_matrix(),
            analysis.distances_to([1]),
            analysis.closeness(),
            analysis.influence_counts(),
        ):
            with pytest.raises(ValueError):
                array[0] = 0
