"""The reverse sweep engine, pinned by time-reversal duality.

Writing ``M(x) = L + 1 − x`` for a network with lifetime ``L``, a journey
``v → t`` with labels ``l_1 < … < l_k`` corresponds exactly to a journey
``t → v`` in the time-reversed network (arcs flipped, labels ``l → L+1−l``)
— so the latest-departure matrix of ``G`` must equal the mirrored
earliest-arrival matrix of ``reverse(G)`` **bit for bit**, with
``UNREACHABLE ↔ NEVER`` at the sentinels.  That identity pins the whole
reverse engine against the forward one, which is itself oracle-checked
(``tests/test_oracle_crosscheck.py``); the rest of this module covers the
reverse CSR layout, deadline semantics and degenerate networks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    NEVER,
    UNREACHABLE,
    complete_graph,
    earliest_arrival_matrix,
    erdos_renyi_graph,
    hypercube_graph,
    latest_departure,
    latest_departure_matrix,
    latest_departure_times,
    normalized_urtn,
    reverse_reachable_set,
    star_graph,
    uniform_random_labels,
)
from repro.core.reverse_journeys import latest_departure_times_reference
from repro.core.temporal_graph import TemporalGraph


def _family_pool():
    """The four families of the acceptance grid, several seeds each."""
    pool = {}
    for seed in range(4):
        pool[f"complete-{seed}"] = normalized_urtn(
            complete_graph(12, directed=True), seed=seed
        )
        pool[f"er-{seed}"] = uniform_random_labels(
            erdos_renyi_graph(16, 0.3, directed=True, seed=seed),
            lifetime=24,
            labels_per_edge=2,
            seed=seed + 50,
        )
        pool[f"star-{seed}"] = normalized_urtn(star_graph(11), seed=seed)
        pool[f"hypercube-{seed}"] = normalized_urtn(hypercube_graph(3), seed=seed)
    return pool


_POOL = _family_pool()


@pytest.fixture(params=sorted(_POOL), ids=sorted(_POOL))
def network(request):
    return _POOL[request.param]


def _mirror(arrivals: np.ndarray, lifetime: int) -> np.ndarray:
    """Map earliest arrivals of the reversed network to latest departures."""
    return np.where(arrivals == UNREACHABLE, NEVER, lifetime + 1 - arrivals)


class TestTimeReversalDuality:
    def test_matrix_duality_bit_identical(self, network):
        reversed_net = network.time_reversed()
        expected = _mirror(
            earliest_arrival_matrix(reversed_net), network.lifetime
        )
        np.testing.assert_array_equal(latest_departure_matrix(network), expected)

    def test_single_target_matches_matrix_row(self, network):
        matrix = latest_departure_matrix(network)
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times(network, target), matrix[target]
            )

    def test_reference_implementation_agrees(self, network):
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times(network, target),
                latest_departure_times_reference(network, target),
            )

    def test_reverse_reachability_is_forward_transposed(self, network):
        forward = earliest_arrival_matrix(network) < UNREACHABLE
        backward = latest_departure_matrix(network) > NEVER
        np.testing.assert_array_equal(backward, forward.T)
        for target in range(network.n):
            np.testing.assert_array_equal(
                reverse_reachable_set(network, target),
                np.flatnonzero(forward[:, target]),
            )

    def test_time_reversal_is_an_involution(self, network):
        twice = network.time_reversed().time_reversed()
        assert twice.n == network.n
        assert twice.lifetime == network.lifetime
        np.testing.assert_array_equal(
            earliest_arrival_matrix(twice), earliest_arrival_matrix(network)
        )
        np.testing.assert_array_equal(
            latest_departure_matrix(twice), latest_departure_matrix(network)
        )

    def test_time_reversed_preserves_label_multiset(self, network):
        original = np.sort(network.time_arc_labels)
        mapped = np.sort(network.lifetime + 1 - network.time_reversed().time_arc_labels)
        np.testing.assert_array_equal(mapped, original)


class TestDeadlineSemantics:
    def test_target_reports_deadline_plus_one(self, network):
        deadline = max(1, network.lifetime // 2)
        depart = latest_departure_times(network, 0, deadline=deadline)
        assert depart[0] == deadline + 1
        off_target = np.delete(depart, 0)
        assert (off_target <= deadline).all()

    def test_tighter_deadline_never_improves(self, network):
        full = latest_departure_times(network, 0)
        tight = latest_departure_times(network, 0, deadline=network.lifetime // 2)
        assert (tight[1:] <= full[1:]).all()

    def test_deadline_zero_isolates_the_target(self, network):
        depart = latest_departure_times(network, 0, deadline=0)
        assert depart[0] == 1
        assert (np.delete(depart, 0) == NEVER).all()

    def test_scalar_query_matches_vector(self, network):
        vector = latest_departure_times(network, 1)
        for source in range(network.n):
            assert latest_departure(network, source, 1) == vector[source]

    def test_negative_deadline_rejected(self, network):
        with pytest.raises(Exception):
            latest_departure_times(network, 0, deadline=-1)


class TestReverseCsrLayout:
    def test_groups_sorted_and_cover_all_arcs(self, network):
        csr = network.reverse_timearc_csr
        assert csr.num_arcs == network.num_time_arcs
        assert (np.diff(csr.labels) > 0).all()
        assert csr.arc_offsets[0] == 0
        assert csr.arc_offsets[-1] == csr.num_arcs
        for group in range(csr.num_groups):
            arc_slice = csr.group_slice(group)
            assert (csr.labels[group] == network.time_arc_labels[
                csr.arc_order[arc_slice]
            ]).all()
            group_tails = csr.tails[arc_slice]
            assert (np.diff(group_tails) >= 0).all()

    def test_tail_runs_index_reduceat_correctly(self, network):
        csr = network.reverse_timearc_csr
        for group in range(csr.num_groups):
            arc_slice = csr.group_slice(group)
            tails = csr.tails[arc_slice]
            tlo, thi = int(csr.tail_offsets[group]), int(csr.tail_offsets[group + 1])
            np.testing.assert_array_equal(
                csr.tail_values[tlo:thi], np.unique(tails)
            )
            starts = csr.tail_starts[tlo:thi]
            np.testing.assert_array_equal(
                tails[starts], csr.tail_values[tlo:thi]
            )

    def test_layout_is_cached_and_immutable(self, network):
        csr = network.reverse_timearc_csr
        assert network.reverse_timearc_csr is csr
        with pytest.raises(ValueError):
            csr.tails[0] = 0

    def test_descending_iteration_order(self, network):
        labels = [label for label, _ in network.reverse_timearc_csr.iter_groups_descending()]
        assert labels == sorted(labels, reverse=True)


class TestDegenerateNetworks:
    def test_single_vertex(self):
        network = TemporalGraph(complete_graph(1), [])
        depart = latest_departure_times(network, 0)
        assert depart.tolist() == [network.lifetime + 1]
        assert latest_departure_matrix(network).shape == (1, 1)

    def test_no_labels(self):
        graph = complete_graph(4)
        network = TemporalGraph(graph, [() for _ in range(graph.m)], lifetime=5)
        depart = latest_departure_times(network, 2)
        assert depart[2] == 6
        assert (np.delete(depart, 2) == NEVER).all()

    def test_empty_target_list(self):
        network = normalized_urtn(complete_graph(5, directed=True), seed=0)
        out = latest_departure_matrix(network, [])
        assert out.shape == (0, 5)
