"""The async job manager: lifecycle, dedup, cancellation, crash-resume.

The two pins at the bottom are the service's reason to exist:

* a second submission of the same ``(scenario, scale, seed)`` is served from
  the store with **zero** new sweep computes (kernel counters frozen);
* a run killed mid-flight resumes from its checkpoint shards to records
  bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import Scenario, get_scenario, run_scenario
from repro.service.jobs import JobManager
from repro.service.store import ArtifactStore, run_fingerprint
from repro.telemetry import TelemetryRecorder

QUICK = {"scale": "quick"}


@pytest.fixture()
def manager(tmp_path):
    store = ArtifactStore(tmp_path / "store.sqlite3")
    mgr = JobManager(
        store, data_dir=tmp_path, recorder=TelemetryRecorder()
    )
    yield mgr
    mgr.shutdown()


def _submit_and_wait(mgr: JobManager, scenario, **kwargs):
    snapshot = mgr.submit(scenario, **kwargs)
    return mgr.wait(snapshot["id"], timeout=120)


class TestLifecycle:
    def test_queued_to_done(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        submitted = manager.submit(scenario, scale="quick")
        assert submitted["state"] in ("queued", "running", "done")
        finished = manager.wait(submitted["id"], timeout=120)
        assert finished["state"] == "done"
        assert finished["progress"] == 1.0
        assert not finished["from_store"]
        assert finished["started_at"] is not None
        assert finished["finished_at"] >= finished["started_at"]

    def test_done_job_persists_records_and_timings(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        finished = _submit_and_wait(manager, scenario, **QUICK)
        record = manager.store.get_run(finished["fingerprint"])
        assert record is not None and record.done
        assert record.records  # one flat record per sweep point
        assert record.timings is not None and record.timings["run_s"] > 0
        assert record.scenario_name == "clique-temporal-centrality"
        assert record.seed == scenario.default_seed

    def test_default_seed_resolves_before_fingerprinting(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        implicit = manager.submit(scenario, scale="quick")
        explicit = manager.submit(
            scenario, scale="quick", seed=scenario.default_seed
        )
        assert implicit["fingerprint"] == explicit["fingerprint"]
        manager.wait(implicit["id"], timeout=120)
        manager.wait(explicit["id"], timeout=120)

    def test_unknown_scale_rejected_synchronously(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        with pytest.raises(ConfigurationError):
            manager.submit(scenario, scale="no-such-scale")

    def test_unknown_job_queries_raise(self, manager):
        assert manager.status("job-9999") is None
        with pytest.raises(ConfigurationError):
            manager.wait("job-9999")
        with pytest.raises(ConfigurationError):
            manager.cancel("job-9999")

    def test_failed_job_records_error(self, manager, tmp_path):
        scenario = get_scenario("clique-temporal-centrality")
        data = scenario.to_dict()
        data["name"] = "broken-metric"
        data["metrics"] = [{"metric": "no-such-metric"}]
        broken = Scenario.from_dict(data)
        finished = _submit_and_wait(manager, broken, **QUICK)
        assert finished["state"] == "failed"
        assert "no-such-metric" in finished["error"]
        record = manager.store.get_run(finished["fingerprint"])
        assert record.status == "failed" and "no-such-metric" in record.error

    def test_counts_by_state(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        _submit_and_wait(manager, scenario, **QUICK)
        counts = manager.counts()
        assert counts["done"] == 1 and counts["failed"] == 0

    def test_direct_mode_scenario_runs_without_checkpointing(self, manager):
        direct = get_scenario("E6")
        assert direct.mode == "direct"
        finished = _submit_and_wait(manager, direct, **QUICK)
        assert finished["state"] == "done"
        assert not manager.checkpoint_dir(finished["fingerprint"]).exists()


class TestProgress:
    def test_progress_reaches_one_monotonically(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        submitted = manager.submit(scenario, scale="quick")
        finished = manager.wait(submitted["id"], timeout=120)
        assert finished["progress"] == 1.0


class TestCancellation:
    def test_cancel_while_queued(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        # Occupy the worker so the second job is reliably still queued.
        first = manager.submit(scenario, scale="quick")
        second = manager.submit(scenario, scale="quick", seed=4242)
        manager.cancel(second["id"])
        manager.wait(first["id"], timeout=120)
        finished = manager.wait(second["id"], timeout=120)
        assert finished["state"] in ("cancelled", "done")
        if finished["state"] == "cancelled":
            assert finished["finished_at"] is not None

    def test_cancel_mid_run_keeps_checkpoint_shards(self, manager):
        scenario = get_scenario("clique-temporal-centrality")
        data = scenario.to_dict()
        data["name"] = "slow-centrality"
        data["scales"]["quick"]["repetitions"] = 400
        slow = Scenario.from_dict(data)
        submitted = manager.submit(slow, scale="quick")
        deadline = time.time() + 60
        while time.time() < deadline:
            snapshot = manager.status(submitted["id"])
            if snapshot["state"] == "running" and snapshot["progress"] > 0:
                break
            if snapshot["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.01)
        manager.cancel(submitted["id"])
        finished = manager.wait(submitted["id"], timeout=120)
        assert finished["state"] == "cancelled"
        record = manager.store.get_run(finished["fingerprint"])
        assert record.status == "failed" and record.error == "cancelled"
        # The partial shards survive for the resume path.
        checkpoint = manager.checkpoint_dir(finished["fingerprint"])
        assert any(checkpoint.glob("**/shard-*.json"))


class TestStoreHitDedup:
    def test_second_submission_serves_from_store_with_zero_computes(self, manager):
        """The acceptance-criteria pin: identical resubmission = pure store hit."""
        scenario = get_scenario("clique-temporal-centrality")
        first = _submit_and_wait(manager, scenario, **QUICK)
        assert first["state"] == "done" and not first["from_store"]
        first_records = manager.store.get_run(first["fingerprint"]).records

        recorder = manager._recorder
        sweep_counters_before = {
            name: count
            for name, count in recorder.counters.items()
            if "kernel" in name or "sweep" in name or name == "scenario.trials"
        }

        second = manager.submit(scenario, scale="quick")
        assert second["state"] == "done"
        assert second["from_store"]
        assert second["progress"] == 1.0
        assert second["fingerprint"] == first["fingerprint"]

        # Bit-identical summaries out of the store...
        second_records = manager.store.get_run(second["fingerprint"]).records
        assert json.dumps(second_records, sort_keys=True) == json.dumps(
            first_records, sort_keys=True
        )
        # ...and zero new sweep/trial computes anywhere in the process.
        sweep_counters_after = {
            name: count
            for name, count in recorder.counters.items()
            if "kernel" in name or "sweep" in name or name == "scenario.trials"
        }
        assert sweep_counters_after == sweep_counters_before
        assert recorder.counters["service.jobs.store_hits"] == 1

    def test_store_hit_survives_manager_restart(self, manager, tmp_path):
        """A fresh manager over the same store dedups runs from past lives."""
        scenario = get_scenario("clique-temporal-centrality")
        first = _submit_and_wait(manager, scenario, **QUICK)
        assert first["state"] == "done"

        reborn = JobManager(manager.store, data_dir=tmp_path)
        try:
            second = reborn.submit(scenario, scale="quick")
            assert second["state"] == "done" and second["from_store"]
        finally:
            reborn.shutdown()


class TestCrashResume:
    def test_killed_mid_run_resumes_to_bit_identical_records(self, manager, tmp_path):
        """The acceptance-criteria pin: crash → resume → identical output."""
        scenario = get_scenario("clique-temporal-centrality")
        seed = scenario.default_seed
        fingerprint = run_fingerprint(scenario, "quick", seed)

        # The uninterrupted reference, straight through the pipeline.
        reference = run_scenario(scenario, scale="quick", seed=seed).to_records()

        # Simulate a crashed service: run directly into the manager's
        # checkpoint directory for this fingerprint and die after the first
        # completed shard (the idiom tests/test_parallel_determinism.py uses).
        checkpoint = manager.checkpoint_dir(fingerprint)

        class SimulatedCrash(RuntimeError):
            pass

        calls = {"count": 0}

        def crash_after_first_shard(completed, total, repetitions_done):
            calls["count"] += 1
            if calls["count"] >= 1:
                raise SimulatedCrash

        with pytest.raises(SimulatedCrash):
            run_scenario(
                scenario,
                scale="quick",
                seed=seed,
                checkpoint_dir=checkpoint,
                progress=crash_after_first_shard,
            )
        assert any(checkpoint.glob("**/shard-*.json"))  # partial state on disk

        # Resubmit through the manager: it must resume, not restart.
        finished = _submit_and_wait(manager, scenario, scale="quick", seed=seed)
        assert finished["state"] == "done"
        assert finished["resumed_from_checkpoint"]

        resumed = manager.store.get_run(fingerprint).records
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
