"""Tests for repro.utils.seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.seeding import derive_seed_sequence, normalize_rng, spawn_rngs


class TestNormalizeRng:
    def test_none_gives_generator(self):
        assert isinstance(normalize_rng(None), np.random.Generator)

    def test_integer_seed_is_deterministic(self):
        a = normalize_rng(42).integers(0, 1000, size=5)
        b = normalize_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough_is_identity(self):
        gen = np.random.default_rng(1)
        assert normalize_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = normalize_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count_allowed(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(123, 3)
        draws = [gen.integers(0, 10**9) for gen in children]
        assert len(set(draws)) == 3

    def test_reproducible_for_same_seed(self):
        first = [gen.integers(0, 10**9) for gen in spawn_rngs(9, 4)]
        second = [gen.integers(0, 10**9) for gen in spawn_rngs(9, 4)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [gen.integers(0, 10**9) for gen in spawn_rngs(1, 3)]
        second = [gen.integers(0, 10**9) for gen in spawn_rngs(2, 3)]
        assert first != second

    def test_spawning_from_generator_is_deterministic_given_state(self):
        gen_a = np.random.default_rng(5)
        gen_b = np.random.default_rng(5)
        a = [g.integers(0, 10**9) for g in spawn_rngs(gen_a, 2)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(gen_b, 2)]
        assert a == b


def test_derive_seed_sequence_roundtrip():
    seq = derive_seed_sequence(11)
    assert isinstance(seq, np.random.SeedSequence)
    same = derive_seed_sequence(np.random.SeedSequence(11))
    assert isinstance(same, np.random.SeedSequence)
