"""Cross-check the sweep kernels against brute-force journey enumeration.

The oracles in ``tests/oracles.py`` share no code with the production
kernels: they enumerate journeys straight from the definition by DFS over the
raw time-arc list.  On every ``n <= 8`` instance in the pool, the forward
kernel, the reverse kernels (single-target, batched and pure-Python
reference) and the centrality family must all agree with them exactly.

``TestEveryBackendAgainstOracle`` additionally pins **every registered
kernel backend** (:mod:`repro.core.kernels`) bit-identical to the oracles on
the same pool; backends that cannot run here (numba not installed, cython
extension not built) skip cleanly with the registry's reason string.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    NetworkAnalysis,
    complete_graph,
    earliest_arrival_matrix,
    earliest_arrival_times,
    erdos_renyi_graph,
    normalized_urtn,
    path_graph,
    star_graph,
    uniform_random_labels,
)
from repro.core import kernels
from repro.core.reverse_journeys import (
    latest_departure_matrix,
    latest_departure_times,
    latest_departure_times_reference,
)

from oracles import (
    oracle_arrival_matrix,
    oracle_centrality,
    oracle_departure_matrix,
    oracle_distance_summary,
    oracle_earliest_arrival_times,
    oracle_latest_departure_times,
    oracle_reverse_distance_summary,
)


def _instance_pool():
    """Small, structurally diverse instances: id → network."""
    pool = {}
    for seed in range(5):
        pool[f"clique-directed-{seed}"] = normalized_urtn(
            complete_graph(6, directed=True), seed=seed
        )
        pool[f"clique-undirected-{seed}"] = normalized_urtn(
            complete_graph(5), seed=seed
        )
        pool[f"er-r2-{seed}"] = uniform_random_labels(
            erdos_renyi_graph(8, 0.4, directed=True, seed=seed),
            lifetime=12,
            labels_per_edge=2,
            seed=seed + 100,
        )
        pool[f"star-{seed}"] = normalized_urtn(star_graph(7), seed=seed)
        pool[f"path-r2-{seed}"] = uniform_random_labels(
            path_graph(6), lifetime=9, labels_per_edge=2, seed=seed + 200
        )
    return pool


_POOL = _instance_pool()


@pytest.fixture(params=sorted(_POOL), ids=sorted(_POOL))
def network(request):
    return _POOL[request.param]


def backend_params():
    """One pytest param per registered kernel backend; unusable ones skip."""
    params = []
    for name in kernels.backend_names():
        reason = kernels.backend_unavailable_reason(name)
        marks = (
            [pytest.mark.skip(reason=f"backend {name!r}: {reason}")]
            if reason is not None
            else []
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(params=backend_params())
def kernel_backend(request):
    return request.param


class TestForwardKernelAgainstOracle:
    def test_single_source(self, network):
        for source in range(network.n):
            np.testing.assert_array_equal(
                earliest_arrival_times(network, source),
                oracle_earliest_arrival_times(network, source),
            )

    def test_matrix(self, network):
        np.testing.assert_array_equal(
            earliest_arrival_matrix(network), oracle_arrival_matrix(network)
        )

    def test_nonzero_start_time(self, network):
        start = max(1, network.lifetime // 3)
        for source in range(network.n):
            np.testing.assert_array_equal(
                earliest_arrival_times(network, source, start_time=start),
                oracle_earliest_arrival_times(network, source, start_time=start),
            )


class TestReverseKernelAgainstOracle:
    def test_single_target(self, network):
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times(network, target),
                oracle_latest_departure_times(network, target),
            )

    def test_matrix(self, network):
        np.testing.assert_array_equal(
            latest_departure_matrix(network), oracle_departure_matrix(network)
        )

    def test_reference_implementation(self, network):
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times_reference(network, target),
                oracle_latest_departure_times(network, target),
            )

    def test_restricted_deadline(self, network):
        deadline = max(1, network.lifetime // 2)
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times(network, target, deadline=deadline),
                oracle_latest_departure_times(network, target, deadline=deadline),
            )


class TestEveryBackendAgainstOracle:
    """Every registered backend must be bit-identical to the oracles.

    These run the same instances as the reference-kernel classes above, but
    force each sweep through one named backend — the cross-backend half of
    the oracle harness.  (Large-n cross-backend parity lives in
    ``tests/test_kernel_backends.py``; this pool is exhaustive per source and
    target.)
    """

    def test_forward(self, network, kernel_backend):
        np.testing.assert_array_equal(
            earliest_arrival_matrix(network, backend=kernel_backend),
            oracle_arrival_matrix(network),
        )
        start = max(1, network.lifetime // 3)
        for source in range(network.n):
            np.testing.assert_array_equal(
                earliest_arrival_times(
                    network, source, start_time=start, backend=kernel_backend
                ),
                oracle_earliest_arrival_times(network, source, start_time=start),
            )

    def test_reverse(self, network, kernel_backend):
        np.testing.assert_array_equal(
            latest_departure_matrix(network, backend=kernel_backend),
            oracle_departure_matrix(network),
        )
        deadline = max(1, network.lifetime // 2)
        for target in range(network.n):
            np.testing.assert_array_equal(
                latest_departure_times(
                    network, target, deadline=deadline, backend=kernel_backend
                ),
                oracle_latest_departure_times(network, target, deadline=deadline),
            )


class TestStreamedSummaryAgainstOracle:
    """The blocked (out-of-core) accumulator path against the oracle pool.

    The other classes pin the full-matrix kernels; this one pins the tiled
    *reduction* — :func:`repro.core.blocked_sweeps.blocked_sweep_summary`
    streams tile partials into exact integer accumulators, and every field
    (including the correctly-rounded mean) must equal the oracle's pure-Python
    reduction exactly.  Tile width 3 forces partial tiles on every pool
    instance; ``n`` collapses to a single tile.
    """

    @pytest.mark.parametrize("tile_size", [3, None], ids=["tile3", "tileN"])
    def test_forward(self, network, tile_size):
        from repro.core.blocked_sweeps import blocked_sweep_summary

        expected = oracle_distance_summary(network)
        result = blocked_sweep_summary(
            network,
            tile_size=network.n if tile_size is None else tile_size,
        )
        assert result.summary.diameter == expected["diameter"]
        assert result.summary.radius == expected["radius"]
        _assert_same_float(
            result.summary.average_distance, expected["average_distance"]
        )
        assert result.summary.reachable_fraction == expected["reachable_fraction"]
        np.testing.assert_array_equal(
            result.reach_counts, expected["reach_counts"]
        )

    @pytest.mark.parametrize("tile_size", [3, None], ids=["tile3", "tileN"])
    def test_reverse(self, network, tile_size):
        from repro.core.blocked_sweeps import blocked_sweep_summary

        expected = oracle_reverse_distance_summary(network)
        result = blocked_sweep_summary(
            network,
            tile_size=network.n if tile_size is None else tile_size,
            direction="reverse",
        )
        assert result.summary.diameter == expected["diameter"]
        assert result.summary.radius == expected["radius"]
        _assert_same_float(
            result.summary.average_distance, expected["average_distance"]
        )
        assert result.summary.reachable_fraction == expected["reachable_fraction"]
        np.testing.assert_array_equal(
            result.reach_counts, expected["reach_counts"]
        )

    def test_every_backend(self, network, kernel_backend):
        from repro.core.blocked_sweeps import blocked_sweep_summary

        expected = oracle_distance_summary(network)
        result = blocked_sweep_summary(network, tile_size=2, backend=kernel_backend)
        assert result.summary.diameter == expected["diameter"]
        _assert_same_float(
            result.summary.average_distance, expected["average_distance"]
        )
        assert result.summary.reachable_fraction == expected["reachable_fraction"]


def _assert_same_float(actual: float, expected: float) -> None:
    """Exact float equality, with ``nan == nan`` (the unreachable sentinel)."""
    if np.isnan(expected):
        assert np.isnan(actual)
    else:
        assert actual == expected


class TestCentralityAgainstOracle:
    def test_whole_family(self, network):
        analysis = NetworkAnalysis(network)
        expected = oracle_centrality(network)
        np.testing.assert_allclose(analysis.closeness(), expected["closeness"])
        np.testing.assert_allclose(
            analysis.harmonic_closeness(), expected["harmonic"]
        )
        np.testing.assert_array_equal(
            analysis.influence_counts(), expected["influence"]
        )
        np.testing.assert_array_equal(analysis.reach_counts(), expected["reach"])
