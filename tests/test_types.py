"""Tests for repro.types: TimeEdge, Journey and vertex validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import JourneyError
from repro.types import UNREACHABLE, Journey, TimeEdge, as_vertex_array


class TestTimeEdge:
    def test_fields_are_preserved(self):
        edge = TimeEdge(1, 2, 7)
        assert (edge.u, edge.v, edge.label) == (1, 2, 7)

    def test_reversed_swaps_endpoints(self):
        edge = TimeEdge(1, 2, 7)
        rev = edge.reversed()
        assert (rev.u, rev.v, rev.label) == (2, 1, 7)

    def test_as_tuple(self):
        assert TimeEdge(3, 4, 9).as_tuple() == (3, 4, 9)

    def test_non_positive_label_rejected(self):
        with pytest.raises(JourneyError):
            TimeEdge(0, 1, 0)

    def test_is_hashable_and_equal_by_value(self):
        assert TimeEdge(0, 1, 2) == TimeEdge(0, 1, 2)
        assert len({TimeEdge(0, 1, 2), TimeEdge(0, 1, 2)}) == 1


class TestJourney:
    def test_empty_journey_has_arrival_zero(self):
        journey = Journey(3, 3)
        assert journey.arrival_time == 0
        assert journey.hops == 0
        assert journey.vertices() == (3,)

    def test_empty_journey_with_distinct_endpoints_rejected(self):
        with pytest.raises(JourneyError):
            Journey(0, 1)

    def test_valid_journey(self):
        journey = Journey.from_sequence([(0, 1, 2), (1, 2, 5), (2, 3, 6)])
        assert journey.source == 0
        assert journey.target == 3
        assert journey.arrival_time == 6
        assert journey.departure_time == 2
        assert journey.hops == 3
        assert journey.vertices() == (0, 1, 2, 3)
        assert journey.labels() == (2, 5, 6)

    def test_non_increasing_labels_rejected(self):
        with pytest.raises(JourneyError):
            Journey.from_sequence([(0, 1, 3), (1, 2, 3)])

    def test_decreasing_labels_rejected(self):
        with pytest.raises(JourneyError):
            Journey.from_sequence([(0, 1, 5), (1, 2, 2)])

    def test_non_incident_edges_rejected(self):
        with pytest.raises(JourneyError):
            Journey.from_sequence([(0, 1, 1), (2, 3, 4)])

    def test_source_mismatch_rejected(self):
        with pytest.raises(JourneyError):
            Journey(5, 2, (TimeEdge(0, 1, 1), TimeEdge(1, 2, 2)))

    def test_target_mismatch_rejected(self):
        with pytest.raises(JourneyError):
            Journey(0, 5, (TimeEdge(0, 1, 1), TimeEdge(1, 2, 2)))

    def test_from_sequence_empty_rejected(self):
        with pytest.raises(JourneyError):
            Journey.from_sequence([])

    def test_iteration_and_len(self):
        journey = Journey.from_sequence([(0, 1, 1), (1, 2, 2)])
        assert len(journey) == 2
        assert [edge.label for edge in journey] == [1, 2]


class TestVertexArray:
    def test_valid_vertices(self):
        arr = as_vertex_array([0, 2, 1], 3)
        assert arr.dtype == np.int64
        assert arr.tolist() == [0, 2, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            as_vertex_array([0, 3], 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_vertex_array([-1], 3)

    def test_empty_is_allowed(self):
        assert as_vertex_array([], 3).size == 0


def test_unreachable_sentinel_is_large_but_safe():
    # Must exceed any realistic label but still leave headroom for additions.
    assert UNREACHABLE > 10**12
    assert UNREACHABLE * 2 < np.iinfo(np.int64).max
