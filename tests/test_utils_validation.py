"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_square_matrix,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int(0, "widgets")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_non_negative_int("3", "x")


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.0001, 5])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True, "p")

    def test_accepts_integer_zero_and_one(self):
        assert check_probability(1, "p") == 1.0


class TestFraction:
    def test_accepts_positive_float(self):
        assert check_fraction(0.25, "f") == 0.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_fraction(float("inf"), "f")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_fraction(float("nan"), "f")


class TestSquareMatrix:
    def test_accepts_square(self):
        matrix = check_square_matrix([[1, 2], [3, 4]], "m")
        assert matrix.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square_matrix([[1, 2, 3], [4, 5, 6]], "m")

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            check_square_matrix([1, 2, 3], "m")
