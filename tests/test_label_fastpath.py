"""The direct-to-CSR label-sampling fast path is bit-identical to the mapping path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labeling import uniform_random_labels
from repro.core.temporal_graph import TemporalGraph
from repro.core.timearc_csr import build_timearc_csr_from_arrays
from repro.exceptions import LabelingError, LifetimeError
from repro.graphs.generators import complete_graph, path_graph, star_graph

CSR_FIELDS = (
    "labels",
    "arc_offsets",
    "tails",
    "heads",
    "arc_order",
    "edge_index",
    "head_values",
    "head_offsets",
    "head_starts",
)


def _legacy(graph, matrix, lifetime):
    labels = [tuple(sorted(set(row))) for row in matrix.tolist()]
    return TemporalGraph(graph, labels, lifetime=lifetime)


@pytest.mark.parametrize(
    "graph, r",
    [
        (complete_graph(24, directed=True), 1),
        (complete_graph(16, directed=False), 3),
        (star_graph(20), 4),
        (path_graph(12), 2),
    ],
    ids=["directed-clique", "undirected-clique", "star", "path"],
)
class TestFromLabelMatrixEquivalence:
    def test_networks_are_bit_identical(self, graph, r):
        rng = np.random.default_rng(42)
        matrix = rng.integers(1, graph.n + 1, size=(graph.m, r))
        legacy = _legacy(graph, matrix, graph.n)
        fast = TemporalGraph.from_label_matrix(graph, matrix, lifetime=graph.n)

        assert np.array_equal(legacy.time_arc_tails, fast.time_arc_tails)
        assert np.array_equal(legacy.time_arc_heads, fast.time_arc_heads)
        assert np.array_equal(legacy.time_arc_labels, fast.time_arc_labels)
        assert np.array_equal(legacy.time_arc_edge_index, fast.time_arc_edge_index)
        for field in CSR_FIELDS:
            assert np.array_equal(
                getattr(legacy.timearc_csr, field), getattr(fast.timearc_csr, field)
            ), field
        assert legacy == fast
        assert hash(legacy) == hash(fast)

    def test_label_queries_match(self, graph, r):
        rng = np.random.default_rng(7)
        matrix = rng.integers(1, graph.n + 1, size=(graph.m, r))
        legacy = _legacy(graph, matrix, graph.n)
        fast = TemporalGraph.from_label_matrix(graph, matrix, lifetime=graph.n)

        assert fast.total_labels == legacy.total_labels
        assert np.array_equal(fast.label_count_per_edge(), legacy.label_count_per_edge())
        for edge_index in range(graph.m):
            assert fast.labels_of_edge_index(edge_index) == legacy.labels_of_edge_index(
                edge_index
            )
        assert list(fast.edge_label_items()) == list(legacy.edge_label_items())

    def test_derived_networks_match(self, graph, r):
        rng = np.random.default_rng(3)
        matrix = rng.integers(1, graph.n + 1, size=(graph.m, r))
        legacy = _legacy(graph, matrix, graph.n)
        fast = TemporalGraph.from_label_matrix(graph, matrix, lifetime=graph.n)
        cutoff = max(1, graph.n // 2)
        assert fast.restricted_to_max_label(cutoff) == legacy.restricted_to_max_label(cutoff)
        assert fast.with_lifetime(graph.n + 5) == legacy.with_lifetime(graph.n + 5)


class TestFromLabelMatrixValidation:
    def test_one_dimensional_matrix_means_one_label_per_edge(self):
        graph = path_graph(5)
        draws = np.array([1, 2, 3, 4])
        network = TemporalGraph.from_label_matrix(graph, draws, lifetime=5)
        assert network.total_labels == 4

    def test_wrong_row_count_rejected(self):
        with pytest.raises(LabelingError):
            TemporalGraph.from_label_matrix(path_graph(5), np.ones((2, 1), dtype=np.int64))

    def test_non_positive_labels_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LabelingError):
            TemporalGraph.from_label_matrix(graph, np.array([[0], [1]]))

    def test_labels_above_lifetime_rejected(self):
        graph = path_graph(3)
        with pytest.raises(LifetimeError):
            TemporalGraph.from_label_matrix(graph, np.array([[1], [9]]), lifetime=4)

    def test_default_lifetime_is_max_label(self):
        graph = path_graph(3)
        network = TemporalGraph.from_label_matrix(graph, np.array([[2], [6]]))
        assert network.lifetime == 6

    def test_duplicate_draws_collapse(self):
        graph = path_graph(3)
        network = TemporalGraph.from_label_matrix(graph, np.array([[2, 2, 2], [1, 3, 1]]))
        assert network.labels_of_edge_index(0) == (2,)
        assert network.labels_of_edge_index(1) == (1, 3)


class TestUniformRandomLabelsUsesFastPath:
    def test_same_network_as_explicit_draw_sequence(self):
        graph = complete_graph(12, directed=True)
        network = uniform_random_labels(graph, labels_per_edge=2, lifetime=12, seed=99)
        rng = np.random.default_rng(99)
        draws = rng.integers(1, 13, size=(graph.m, 2))
        assert network == _legacy(graph, draws, 12)

    def test_lazy_tuples_not_materialised_until_needed(self):
        graph = complete_graph(8, directed=True)
        network = uniform_random_labels(graph, seed=1)
        assert network._edge_labels is None
        network.timearc_csr  # kernels do not materialise the tuple view
        assert network._edge_labels is None
        network.labels_of_edge_index(0)  # API query does
        assert network._edge_labels is not None


class TestArrayLevelCsrBuilder:
    def test_matches_network_level_builder(self):
        graph = complete_graph(10, directed=True)
        network = uniform_random_labels(graph, seed=5)
        direct = build_timearc_csr_from_arrays(
            network.n,
            network.lifetime,
            network.time_arc_tails,
            network.time_arc_heads,
            network.time_arc_labels,
            network.time_arc_edge_index,
        )
        cached = network.timearc_csr
        for field in CSR_FIELDS:
            assert np.array_equal(getattr(direct, field), getattr(cached, field)), field

    def test_empty_arrays(self):
        empty = np.empty(0, dtype=np.int64)
        csr = build_timearc_csr_from_arrays(4, 4, empty, empty, empty, empty)
        assert csr.num_arcs == 0 and csr.num_groups == 0
