"""Tests for repro.graphs.properties against networkx as an oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError, InvalidVertexError
from repro.graphs import generators as gen
from repro.graphs.conversion import to_networkx
from repro.graphs.properties import (
    all_pairs_shortest_paths,
    bfs_distances,
    connected_components,
    density,
    diameter,
    eccentricities,
    is_connected,
    radius,
)
from repro.graphs.static_graph import StaticGraph


class TestBfsDistances:
    def test_path_distances(self):
        graph = gen.path_graph(5)
        assert bfs_distances(graph, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked_minus_one(self):
        graph = StaticGraph(4, [(0, 1), (2, 3)])
        assert bfs_distances(graph, 0).tolist() == [0, 1, -1, -1]

    def test_invalid_source(self):
        with pytest.raises(InvalidVertexError):
            bfs_distances(gen.path_graph(3), 7)

    def test_directed_respects_orientation(self):
        graph = StaticGraph(3, [(0, 1), (1, 2)], directed=True)
        assert bfs_distances(graph, 0).tolist() == [0, 1, 2]
        assert bfs_distances(graph, 2).tolist() == [-1, -1, 0]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx_on_random_graphs(self, seed):
        graph = gen.erdos_renyi_graph(25, 0.15, seed=seed)
        nx_graph = to_networkx(graph)
        for source in range(0, 25, 7):
            expected = nx.single_source_shortest_path_length(nx_graph, source)
            ours = bfs_distances(graph, source)
            for v in range(25):
                assert ours[v] == expected.get(v, -1)


class TestDiameterAndRadius:
    def test_path_diameter(self):
        assert diameter(gen.path_graph(7)) == 6

    def test_cycle_diameter(self):
        assert diameter(gen.cycle_graph(8)) == 4

    def test_single_vertex(self):
        assert diameter(StaticGraph(1)) == 0
        assert radius(StaticGraph(1)) == 0

    def test_disconnected_raises(self):
        with pytest.raises(GraphError):
            diameter(StaticGraph(4, [(0, 1)]))

    def test_radius_le_diameter(self):
        graph = gen.grid_graph(3, 3)
        assert radius(graph) <= diameter(graph)

    @pytest.mark.parametrize("maker", [lambda: gen.grid_graph(3, 4), lambda: gen.hypercube_graph(3)])
    def test_matches_networkx(self, maker):
        graph = maker()
        assert diameter(graph) == nx.diameter(to_networkx(graph))


class TestConnectivity:
    def test_connected_path(self):
        assert is_connected(gen.path_graph(4))

    def test_disconnected(self):
        assert not is_connected(StaticGraph(4, [(0, 1), (2, 3)]))

    def test_empty_graph_is_connected(self):
        assert is_connected(StaticGraph(0))

    def test_directed_strong_connectivity(self):
        one_way = StaticGraph(3, [(0, 1), (1, 2)], directed=True)
        cycle = StaticGraph(3, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert not is_connected(one_way)
        assert is_connected(cycle)

    def test_connected_components_partition(self):
        graph = StaticGraph(6, [(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph)
        assert components == [[0, 1, 2], [3, 4], [5]]
        assert sum(len(c) for c in components) == 6

    def test_components_of_connected_graph(self):
        assert connected_components(gen.cycle_graph(5)) == [[0, 1, 2, 3, 4]]


class TestMatrixHelpers:
    def test_all_pairs_symmetric_for_undirected(self):
        graph = gen.grid_graph(3, 3)
        matrix = all_pairs_shortest_paths(graph)
        assert np.array_equal(matrix, matrix.T)

    def test_eccentricities_match_matrix(self):
        graph = gen.cycle_graph(6)
        matrix = all_pairs_shortest_paths(graph)
        assert np.array_equal(eccentricities(graph), matrix.max(axis=1))

    def test_density_bounds(self):
        assert density(gen.complete_graph(5)) == pytest.approx(1.0)
        assert density(gen.path_graph(5)) == pytest.approx(4 / 10)
        assert density(StaticGraph(1)) == 0.0
