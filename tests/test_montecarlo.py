"""Tests for the Monte-Carlo engine: experiments, runner, sweeps, results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.montecarlo.convergence import FixedBudgetStopping, RelativeErrorStopping
from repro.montecarlo.experiment import Experiment
from repro.montecarlo.results import SweepResult, TrialResult, results_to_records
from repro.montecarlo.runner import MonteCarloRunner, run_trials
from repro.montecarlo.sweep import ParameterSweep, sweep_grid


def _coin_trial(params, rng):
    """Bernoulli(p) metric plus a normal metric — a tiny synthetic experiment."""
    p = params.get("p", 0.5)
    return {
        "heads": float(rng.random() < p),
        "noise": float(rng.normal(loc=params.get("mu", 0.0))),
    }


class TestExperiment:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            Experiment(name="", trial=_coin_trial)

    def test_requires_callable(self):
        with pytest.raises(ConfigurationError):
            Experiment(name="x", trial="not-callable")  # type: ignore[arg-type]

    def test_with_parameters_merges(self):
        exp = Experiment(name="x", trial=_coin_trial, parameters={"p": 0.5, "mu": 1.0})
        updated = exp.with_parameters(p=0.9)
        assert updated.parameters == {"p": 0.9, "mu": 1.0}
        assert exp.parameters["p"] == 0.5  # original untouched

    def test_run_single_validates_output(self):
        bad = Experiment(name="bad", trial=lambda params, rng: {})
        with pytest.raises(ConfigurationError):
            bad.run_single(np.random.default_rng(0))

    def test_run_single_rejects_non_numeric(self):
        bad = Experiment(name="bad", trial=lambda params, rng: {"x": "oops"})
        with pytest.raises(ConfigurationError):
            bad.run_single(np.random.default_rng(0))

    def test_run_single_returns_floats(self):
        exp = Experiment(name="coin", trial=_coin_trial)
        metrics = exp.run_single(np.random.default_rng(0))
        assert set(metrics) == {"heads", "noise"}
        assert all(isinstance(v, float) for v in metrics.values())


class TestRunner:
    def test_fixed_budget_runs_exact_count(self):
        result = run_trials(Experiment(name="coin", trial=_coin_trial), repetitions=17, seed=0)
        assert result.repetitions == 17
        assert len(result.values("heads")) == 17

    def test_reproducible_across_runs(self):
        exp = Experiment(name="coin", trial=_coin_trial)
        a = run_trials(exp, repetitions=10, seed=5)
        b = run_trials(exp, repetitions=10, seed=5)
        assert a.values("noise") == b.values("noise")

    def test_different_seeds_differ(self):
        exp = Experiment(name="coin", trial=_coin_trial)
        a = run_trials(exp, repetitions=10, seed=1)
        b = run_trials(exp, repetitions=10, seed=2)
        assert a.values("noise") != b.values("noise")

    def test_estimates_are_sensible(self):
        exp = Experiment(name="coin", trial=_coin_trial, parameters={"p": 0.8})
        result = run_trials(exp, repetitions=400, seed=3)
        assert result.mean("heads") == pytest.approx(0.8, abs=0.08)

    def test_relative_error_stopping_stops_early(self):
        stopping = RelativeErrorStopping(
            "noise", relative_tolerance=0.5, min_repetitions=5, max_repetitions=500
        )
        runner = MonteCarloRunner(stopping=stopping, seed=0)
        exp = Experiment(name="coin", trial=_coin_trial, parameters={"mu": 10.0})
        result = runner.run(exp)
        assert 5 <= result.repetitions < 500

    def test_relative_error_strict_raises_when_budget_exhausted(self):
        stopping = RelativeErrorStopping(
            "noise",
            relative_tolerance=1e-6,
            min_repetitions=2,
            max_repetitions=5,
            strict=True,
        )
        runner = MonteCarloRunner(stopping=stopping, seed=0)
        with pytest.raises(ConvergenceError):
            runner.run(Experiment(name="coin", trial=_coin_trial))

    def test_run_sweep_covers_all_points(self):
        runner = MonteCarloRunner(stopping=FixedBudgetStopping(5), seed=0)
        sweep = ParameterSweep({"p": [0.1, 0.9]})
        result = runner.run_sweep(Experiment(name="coin", trial=_coin_trial), sweep)
        assert len(result) == 2
        assert result.column("p") == [0.1, 0.9]
        means = result.metric_means("heads")
        assert means[1] >= means[0]

    def test_streaming_aggregation_summary_matches_full(self):
        exp = Experiment(name="coin", trial=_coin_trial, parameters={"mu": 2.0})
        full = run_trials(exp, repetitions=40, seed=9)
        streaming = run_trials(exp, repetitions=40, seed=9, aggregation="streaming")
        assert streaming.accumulators is not None
        for metric in full.metric_names():
            exact = full.summary(metric)
            streamed = streaming.summary(metric)
            assert streamed.count == exact.count
            assert streamed.mean == pytest.approx(exact.mean, rel=1e-12)
            assert streamed.std == pytest.approx(exact.std, rel=1e-12)
            assert streamed.minimum == exact.minimum
            assert streamed.maximum == exact.maximum
        # in-budget streams keep the full sample in the reservoir
        assert streaming.values("noise") == full.values("noise")

    def test_streaming_reservoir_capacity_is_configurable(self):
        exp = Experiment(name="coin", trial=_coin_trial)
        small = run_trials(
            exp, repetitions=40, seed=9, aggregation="streaming", reservoir_capacity=8
        )
        assert len(small.values("noise")) == 8
        assert small.summary("noise").count == 40  # moments stay exact

    def test_progress_hook_reports_repetitions(self):
        seen: list[tuple[int, int, int]] = []
        run_trials(
            Experiment(name="coin", trial=_coin_trial),
            repetitions=12,
            seed=0,
            shard_size=4,
            progress=lambda done, total, reps: seen.append((done, total, reps)),
        )
        assert seen == [(1, 3, 4), (2, 3, 8), (3, 3, 12)]


class TestStoppingRules:
    def test_fixed_budget_properties(self):
        rule = FixedBudgetStopping(7)
        assert rule.max_repetitions == 7
        assert rule.min_repetitions == 7
        assert not rule.should_stop({})
        assert rule.should_stop({"x": [1.0] * 7})

    def test_relative_error_validation(self):
        with pytest.raises(ConfigurationError):
            RelativeErrorStopping("", relative_tolerance=0.1)
        with pytest.raises(ConfigurationError):
            RelativeErrorStopping("m", min_repetitions=10, max_repetitions=5)

    def test_relative_error_needs_min_samples(self):
        rule = RelativeErrorStopping("m", relative_tolerance=0.5, min_repetitions=5)
        assert not rule.should_stop({"m": [1.0, 1.0]})


class TestSweep:
    def test_cartesian_size(self):
        sweep = ParameterSweep({"a": [1, 2, 3], "b": [10, 20]})
        assert len(sweep) == 6
        assert len(list(sweep.points())) == 6

    def test_constants_merged(self):
        sweep = ParameterSweep({"a": [1, 2]}, constants={"c": 7})
        assert all(point["c"] == 7 for point in sweep)

    def test_scalar_promoted_to_singleton(self):
        sweep = ParameterSweep({"a": 5, "b": [1, 2]})
        assert len(sweep) == 2

    def test_conflicting_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep({"a": [1]}, constants={"a": 2})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSweep({})
        with pytest.raises(ConfigurationError):
            ParameterSweep({"a": []})

    def test_restrict(self):
        sweep = ParameterSweep({"a": [1, 2, 3], "b": [4, 5]})
        restricted = sweep.restrict(a=[2])
        assert len(restricted) == 2
        with pytest.raises(ConfigurationError):
            sweep.restrict(z=[1])

    def test_sweep_grid_helper(self):
        assert len(sweep_grid(n=[4, 8], r=[1, 2, 3])) == 6

    def test_shard_round_trip_union_equals_full_grid(self):
        sweep = ParameterSweep({"a": [1, 2, 3], "b": [10, 20]}, constants={"c": 7})
        for k in (1, 2, 3, 5, 6):
            shards = sweep.shard(k)
            assert len(shards) == k
            rebuilt = [point for shard in shards for point in shard.points()]
            assert rebuilt == list(sweep.points())

    def test_shard_sizes_balanced(self):
        sweep = ParameterSweep({"a": list(range(7))})
        sizes = [len(shard) for shard in sweep.shard(3)]
        assert sorted(sizes) == [2, 2, 3]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_keeps_names_and_constants(self):
        sweep = ParameterSweep({"a": [1, 2]}, constants={"c": 7})
        shard = sweep.shard(2)[0]
        assert shard.parameter_names == ["a"]
        assert shard.constants == {"c": 7}
        assert all(point["c"] == 7 for point in shard)

    def test_shard_validation(self):
        sweep = ParameterSweep({"a": [1, 2, 3]})
        with pytest.raises(ConfigurationError):
            sweep.shard(0)
        with pytest.raises(ConfigurationError):
            sweep.shard(4)  # more shards than points
        with pytest.raises(ConfigurationError):
            sweep.shard("two")
        with pytest.raises(ConfigurationError):
            sweep.shard(2.5)  # no silent truncation
        with pytest.raises(ConfigurationError):
            sweep.shard(True)

    def test_shard_cannot_be_restricted(self):
        shard = ParameterSweep({"a": [1, 2]}).shard(2)[0]
        with pytest.raises(ConfigurationError):
            shard.restrict(a=[1])

    def test_shards_usable_with_run_sweep(self):
        runner = MonteCarloRunner(stopping=FixedBudgetStopping(3), seed=0)
        experiment = Experiment(name="coin", trial=_coin_trial)
        full = ParameterSweep({"p": [0.1, 0.5, 0.9]})
        results = [runner.run_sweep(experiment, shard) for shard in full.shard(2)]
        assert [len(r) for r in results] == [2, 1]
        assert results[0].column("p") == [0.1, 0.5]
        assert results[1].column("p") == [0.9]


class TestResults:
    def _make_result(self) -> TrialResult:
        return TrialResult(
            experiment="toy",
            parameters={"n": 4},
            metrics={"value": (1.0, 2.0, 3.0)},
            repetitions=3,
        )

    def test_summary_and_mean(self):
        result = self._make_result()
        assert result.mean("value") == pytest.approx(2.0)
        stats = result.summary("value")
        assert stats.count == 3
        assert stats.minimum == 1.0 and stats.maximum == 3.0

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            self._make_result().values("missing")

    def test_as_record_flattens(self):
        record = self._make_result().as_record()
        assert record["param_n"] == 4
        assert record["value_mean"] == pytest.approx(2.0)
        assert "value_ci_low" in record

    def test_sweep_result_add_checks_experiment_name(self):
        sweep = SweepResult(experiment="other")
        with pytest.raises(ValueError):
            sweep.add(self._make_result())

    def test_results_to_records_accepts_both(self):
        result = self._make_result()
        sweep = SweepResult(experiment="toy", points=[result])
        assert results_to_records([result]) == results_to_records(sweep)

    def test_metric_names_union(self):
        sweep = SweepResult(experiment="toy", points=[self._make_result()])
        assert sweep.metric_names() == ["value"]
