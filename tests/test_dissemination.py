"""Tests for repro.core.dissemination: flooding and the phone-call baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dissemination import flood_broadcast, push_phone_call_broadcast
from repro.core.journeys import earliest_arrival_times
from repro.core.labeling import assign_deterministic_labels, normalized_urtn
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.static_graph import StaticGraph
from repro.types import UNREACHABLE


class TestFloodBroadcast:
    def test_arrival_times_match_foremost_journeys(self, random_clique_instance):
        result = flood_broadcast(random_clique_instance, 0)
        expected = earliest_arrival_times(random_clique_instance, 0)
        assert np.array_equal(result.arrival_times, expected)

    def test_broadcast_time_is_max_arrival(self, random_clique_instance):
        result = flood_broadcast(random_clique_instance, 3)
        assert result.completed
        assert result.broadcast_time == int(result.arrival_times.max())

    def test_incomplete_broadcast(self, small_path):
        result = flood_broadcast(small_path, 3)
        assert not result.completed
        assert result.broadcast_time == UNREACHABLE
        assert result.informed_count == 2
        assert result.informed_fraction == pytest.approx(0.5)

    def test_transmission_count_on_deterministic_instance(self):
        graph = star_graph(4)
        network = assign_deterministic_labels(
            graph, {(0, 1): [1], (0, 2): [2], (0, 3): [3]}, lifetime=4
        )
        result = flood_broadcast(network, 1)
        # vertex 1 informed at 0, sends on (1,0,1); centre informed at 1,
        # sends on (0,2,2) and (0,3,3); vertices 2 and 3 have no later arcs.
        assert result.completed
        assert result.num_transmissions == 3
        assert result.broadcast_time == 3

    def test_singleton_graph(self):
        network = TemporalGraph(StaticGraph(1), [])
        result = flood_broadcast(network, 0)
        assert result.completed
        assert result.broadcast_time == 0
        assert result.num_transmissions == 0

    def test_clique_broadcast_is_fast(self):
        graph = complete_graph(128, directed=True)
        network = normalized_urtn(graph, seed=11)
        result = flood_broadcast(network, 0)
        assert result.completed
        # §3.5: logarithmic broadcast; even with slack, far below n/2.
        assert result.broadcast_time < 128 / 4
        assert result.broadcast_time >= 2


class TestPhoneCallBroadcast:
    def test_everyone_informed(self):
        result = push_phone_call_broadcast(64, seed=0)
        assert result.completed
        assert result.informed_count == 64

    def test_round_count_is_logarithmic(self):
        rounds = [
            push_phone_call_broadcast(256, seed=seed).broadcast_time for seed in range(5)
        ]
        mean_rounds = float(np.mean(rounds))
        prediction = math.log2(256) + math.log(256)
        assert mean_rounds < 2.5 * prediction
        assert mean_rounds >= math.log2(256) - 1

    def test_source_informed_at_round_zero(self):
        result = push_phone_call_broadcast(32, source=5, seed=1)
        assert result.arrival_times[5] == 0

    def test_transmissions_lower_bound(self):
        result = push_phone_call_broadcast(64, seed=2)
        # at least one transmission per vertex informed after the source
        assert result.num_transmissions >= 63

    def test_single_vertex(self):
        result = push_phone_call_broadcast(1, seed=0)
        assert result.completed
        assert result.broadcast_time == 0

    def test_max_rounds_cap_respected(self):
        result = push_phone_call_broadcast(512, seed=3, max_rounds=1)
        assert not result.completed
        assert result.informed_count <= 3

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            push_phone_call_broadcast(8, source=9)

    def test_reproducibility(self):
        a = push_phone_call_broadcast(64, seed=9)
        b = push_phone_call_broadcast(64, seed=9)
        assert np.array_equal(a.arrival_times, b.arrival_times)
