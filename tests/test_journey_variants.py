"""Tests for repro.core.journey_variants: shortest and fastest journeys."""

from __future__ import annotations

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.journey_variants import fastest_journey, shortest_journey
from repro.core.journeys import earliest_arrival_times, foremost_journey
from repro.core.labeling import assign_deterministic_labels, normalized_urtn
from repro.core.temporal_graph import TemporalGraph
from repro.exceptions import UnreachableVertexError
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.static_graph import StaticGraph
from repro.types import UNREACHABLE


@pytest.fixture
def shortcut_network() -> TemporalGraph:
    """A 4-vertex graph where the foremost journey 0→3 is long but a later direct hop exists.

    Edges: path 0-1-2-3 with labels 1, 2, 3 (foremost arrival 3, 3 hops) and a
    direct edge 0-3 with label 5 (1 hop, later arrival, duration 1).
    """
    graph = StaticGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    return assign_deterministic_labels(
        graph, {(0, 1): [1], (1, 2): [2], (2, 3): [3], (0, 3): [5]}, lifetime=6
    )


class TestShortestJourney:
    def test_prefers_fewest_hops(self, shortcut_network):
        journey = shortest_journey(shortcut_network, 0, 3)
        assert journey.hops == 1
        assert journey.labels() == (5,)

    def test_foremost_can_be_longer_in_hops(self, shortcut_network):
        foremost = foremost_journey(shortcut_network, 0, 3)
        shortest = shortest_journey(shortcut_network, 0, 3)
        assert foremost.arrival_time < shortest.arrival_time
        assert shortest.hops < foremost.hops

    def test_trivial_journey(self, shortcut_network):
        assert shortest_journey(shortcut_network, 2, 2).hops == 0

    def test_unreachable_raises(self, small_path):
        with pytest.raises(UnreachableVertexError):
            shortest_journey(small_path, 3, 0)

    def test_valid_time_edges(self, random_clique_instance):
        journey = shortest_journey(random_clique_instance, 0, 17)
        for edge in journey:
            assert random_clique_instance.has_time_edge(edge.u, edge.v, edge.label)

    def test_single_hop_on_clique(self, random_clique_instance):
        # every ordered pair of the clique has a direct arc, so the shortest
        # journey is always one hop
        for target in (1, 5, 20):
            assert shortest_journey(random_clique_instance, 0, target).hops == 1

    def test_multi_hop_path(self, two_label_star):
        journey = shortest_journey(two_label_star, 1, 4)
        assert journey.hops == 2

    def test_invalid_vertex(self, shortcut_network):
        with pytest.raises(ValueError):
            shortest_journey(shortcut_network, 0, 99)


class TestFastestJourney:
    def test_prefers_minimum_duration(self, shortcut_network):
        result = fastest_journey(shortcut_network, 0, 3)
        # the direct hop at time 5 has duration 1; the path 1-2-3 has duration 3
        assert result.duration == 1
        assert result.journey.hops == 1
        assert result.departure == 5 and result.arrival == 5

    def test_duration_never_smaller_than_hops(self, random_clique_instance):
        for target in (3, 9, 21):
            result = fastest_journey(random_clique_instance, 0, target)
            assert result.duration >= result.journey.hops

    def test_duration_at_most_foremost_arrival(self, random_clique_instance):
        for target in (3, 9, 21):
            result = fastest_journey(random_clique_instance, 0, target)
            foremost = foremost_journey(random_clique_instance, 0, target)
            assert result.duration <= foremost.arrival_time

    def test_trivial_journey(self, shortcut_network):
        result = fastest_journey(shortcut_network, 1, 1)
        assert result.duration == 0
        assert result.journey.hops == 0

    def test_unreachable_raises(self, small_path):
        with pytest.raises(UnreachableVertexError):
            fastest_journey(small_path, 3, 0)

    def test_star_fastest_duration(self, two_label_star):
        result = fastest_journey(two_label_star, 1, 2)
        # hop at label 1 then label 2: duration = 2
        assert result.duration == 2

    def test_journey_edges_exist(self, random_clique_instance):
        result = fastest_journey(random_clique_instance, 4, 11)
        for edge in result.journey:
            assert random_clique_instance.has_time_edge(edge.u, edge.v, edge.label)


@st.composite
def small_networks(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    flags = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    edges = [edge for edge, keep in zip(possible, flags) if keep]
    graph = StaticGraph(n, edges)
    labels = [
        sorted(set(draw(st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=2))))
        for _ in range(graph.m)
    ]
    return TemporalGraph(graph, labels, lifetime=6)


def _brute_force_min_hops(network, source, target):
    if source == target:
        return 0
    best = None
    others = [v for v in range(network.n) if v not in (source, target)]
    for length in range(0, len(others) + 1):
        for middle in permutations(others, length):
            path = (source, *middle, target)
            time = 0
            ok = True
            for u, v in zip(path, path[1:]):
                try:
                    labels = network.labels_of(u, v)
                except KeyError:
                    ok = False
                    break
                usable = [l for l in labels if l > time]
                if not usable:
                    ok = False
                    break
                time = min(usable)
            if ok:
                hops = len(path) - 1
                best = hops if best is None else min(best, hops)
        if best is not None:
            # paths are enumerated by increasing length, so the first hit is minimal
            return best
    return best


@settings(max_examples=50, deadline=None)
@given(small_networks())
def test_shortest_journey_matches_brute_force(network):
    arrival = earliest_arrival_times(network, 0)
    for target in range(1, network.n):
        if arrival[target] >= UNREACHABLE:
            with pytest.raises(UnreachableVertexError):
                shortest_journey(network, 0, target)
            continue
        journey = shortest_journey(network, 0, target)
        assert journey.hops == _brute_force_min_hops(network, 0, target)


@settings(max_examples=50, deadline=None)
@given(small_networks())
def test_fastest_journey_dominates_any_single_departure(network):
    arrival = earliest_arrival_times(network, 0)
    for target in range(1, network.n):
        if arrival[target] >= UNREACHABLE:
            continue
        result = fastest_journey(network, 0, target)
        # the fastest duration is at most the foremost journey's duration
        foremost = foremost_journey(network, 0, target)
        foremost_duration = foremost.arrival_time - foremost.departure_time + 1
        assert result.duration <= foremost_duration
        # and the reported journey is internally consistent
        assert result.arrival == result.journey.arrival_time
        assert result.departure == result.journey.departure_time


def test_variants_agree_on_single_edge():
    graph = path_graph(2)
    network = assign_deterministic_labels(graph, {(0, 1): [4]}, lifetime=5)
    assert shortest_journey(network, 0, 1).labels() == (4,)
    fastest = fastest_journey(network, 0, 1)
    assert fastest.duration == 1
    assert foremost_journey(network, 0, 1).arrival_time == 4


def test_clique_fastest_is_often_direct():
    network = normalized_urtn(complete_graph(16, directed=True), seed=2)
    result = fastest_journey(network, 0, 1)
    # the direct arc gives duration 1; a fastest journey can never do better
    assert result.duration >= 1
    direct_label = network.labels_of(0, 1)[0]
    assert result.duration <= max(1, direct_label)
