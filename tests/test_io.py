"""Tests for repro.io: table rendering and record serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.io.serialization import (
    read_records_csv,
    read_records_json,
    write_records_csv,
    write_records_json,
)
from repro.io.tables import format_markdown_table, format_table

RECORDS = [
    {"n": 16, "mean": 3.25, "ok": True},
    {"n": 32, "mean": 4.5, "ok": False},
]


class TestTables:
    def test_ascii_table_contains_all_cells(self):
        table = format_table(RECORDS)
        assert "n" in table and "mean" in table
        assert "16" in table and "4.500" in table
        assert "yes" in table and "no" in table

    def test_title_included(self):
        table = format_table(RECORDS, title="Results")
        assert table.splitlines()[0] == "Results"

    def test_column_subset_and_order(self):
        table = format_table(RECORDS, columns=["mean", "n"])
        header = table.splitlines()[0]
        assert header.index("mean") < header.index("n")
        assert "ok" not in header

    def test_float_format(self):
        table = format_table(RECORDS, float_format=".1f")
        assert "3.2" in table and "3.250" not in table

    def test_missing_keys_render_empty(self):
        table = format_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table

    def test_empty_records(self):
        assert format_table([], columns=["a"]).splitlines()[0] == "a"

    def test_markdown_table(self):
        table = format_markdown_table(RECORDS)
        lines = table.splitlines()
        assert lines[0].startswith("| n |")
        assert lines[1].startswith("|---")
        assert len(lines) == 4

    def test_markdown_empty(self):
        assert format_markdown_table([]) == ""


class TestSerialization:
    def test_csv_roundtrip(self, tmp_path):
        path = write_records_csv(RECORDS, tmp_path / "out.csv")
        loaded = read_records_csv(path)
        assert loaded[0]["n"] == 16
        assert loaded[0]["mean"] == pytest.approx(3.25)
        assert loaded[1]["ok"] is False

    def test_csv_handles_missing_keys(self, tmp_path):
        records = [{"a": 1}, {"a": 2, "b": "x"}]
        loaded = read_records_csv(write_records_csv(records, tmp_path / "m.csv"))
        assert loaded[0]["b"] is None
        assert loaded[1]["b"] == "x"

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_records_csv([], tmp_path / "empty.csv")

    def test_csv_read_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            read_records_csv(tmp_path / "nope.csv")

    def test_json_roundtrip(self, tmp_path):
        path = write_records_json(RECORDS, tmp_path / "out.json")
        loaded = read_records_json(path)
        assert loaded == [dict(r) for r in RECORDS]

    def test_json_rejects_non_list(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("42")
        with pytest.raises(SerializationError):
            read_records_json(path)

    def test_json_read_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            read_records_json(path)

    def test_json_unserializable_value(self, tmp_path):
        with pytest.raises(SerializationError):
            write_records_json([{"x": object()}], tmp_path / "bad.json")
