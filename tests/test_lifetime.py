"""Tests for repro.core.lifetime (Theorem 5 helpers)."""

from __future__ import annotations

import math

import pytest

from repro.core.distances import temporal_diameter
from repro.core.labeling import assign_deterministic_labels, uniform_random_labels
from repro.core.lifetime import (
    erdos_renyi_equivalent_p,
    prefix_connectivity_time,
    temporal_diameter_lower_bound_theorem5,
)
from repro.core.temporal_graph import TemporalGraph
from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.static_graph import StaticGraph
from repro.types import UNREACHABLE


class TestPrefixConnectivityTime:
    def test_deterministic_path(self):
        graph = path_graph(4)
        network = assign_deterministic_labels(
            graph, {(0, 1): [5], (1, 2): [2], (2, 3): [9]}, lifetime=10
        )
        assert prefix_connectivity_time(network) == 9

    def test_unlabelled_edges_never_connect(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[1], [], [2]], lifetime=4)
        assert prefix_connectivity_time(network) == UNREACHABLE

    def test_singleton(self):
        network = TemporalGraph(StaticGraph(1), [])
        assert prefix_connectivity_time(network) == 0

    def test_is_lower_bound_for_temporal_diameter(self):
        graph = complete_graph(20, directed=True)
        for seed in range(3):
            network = uniform_random_labels(graph, lifetime=60, seed=seed)
            prefix = prefix_connectivity_time(network)
            assert prefix <= temporal_diameter(network)

    def test_grows_with_lifetime(self):
        graph = complete_graph(24, directed=True)
        short = uniform_random_labels(graph, lifetime=24, seed=1)
        long = uniform_random_labels(graph, lifetime=24 * 8, seed=1)
        assert prefix_connectivity_time(long) > prefix_connectivity_time(short)


class TestTheorem5Bound:
    def test_normalized_case_is_log_n(self):
        assert temporal_diameter_lower_bound_theorem5(100, 100) == pytest.approx(math.log(100))

    def test_scaling_with_lifetime(self):
        n = 64
        assert temporal_diameter_lower_bound_theorem5(n, 4 * n) == pytest.approx(4 * math.log(n))

    def test_sub_normalized_lifetime_clamped(self):
        n = 64
        assert temporal_diameter_lower_bound_theorem5(n, n // 2) == pytest.approx(math.log(n))

    def test_measured_diameter_scales_with_lifetime(self):
        n = 32
        graph = complete_graph(n, directed=True)
        short_diameters = []
        long_diameters = []
        for seed in range(3):
            short_diameters.append(
                temporal_diameter(uniform_random_labels(graph, lifetime=n, seed=seed))
            )
            long_diameters.append(
                temporal_diameter(uniform_random_labels(graph, lifetime=8 * n, seed=seed))
            )
        assert sum(long_diameters) > 2 * sum(short_diameters)


class TestEquivalentP:
    def test_formula(self):
        assert erdos_renyi_equivalent_p(10, 100) == pytest.approx(0.1)

    def test_k_above_lifetime_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_equivalent_p(11, 10)
