"""Tests for repro.core.journeys: foremost journeys and temporal distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.journeys import (
    earliest_arrival_times,
    earliest_arrival_times_reference,
    foremost_journey,
    foremost_journey_tree,
    temporal_distance,
)
from repro.core.labeling import assign_deterministic_labels, normalized_urtn, uniform_random_labels
from repro.core.temporal_graph import TemporalGraph
from repro.exceptions import UnreachableVertexError
from repro.graphs.generators import complete_graph, erdos_renyi_graph, path_graph, star_graph
from repro.types import UNREACHABLE


class TestEarliestArrival:
    def test_simple_path(self, small_path):
        arrival = earliest_arrival_times(small_path, 0)
        assert arrival.tolist() == [0, 1, 3, 5]

    def test_reverse_direction_blocked_by_decreasing_labels(self, small_path):
        arrival = earliest_arrival_times(small_path, 3)
        assert arrival[3] == 0
        assert arrival[2] == 5
        # labels decrease towards vertex 0, so the journey cannot continue
        assert arrival[1] == UNREACHABLE
        assert arrival[0] == UNREACHABLE

    def test_source_has_zero_arrival(self, random_clique_instance):
        arrival = earliest_arrival_times(random_clique_instance, 5)
        assert arrival[5] == 0

    def test_equal_labels_cannot_chain(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[2], [2]])
        arrival = earliest_arrival_times(network, 0)
        assert arrival[1] == 2
        assert arrival[2] == UNREACHABLE

    def test_start_time_excludes_early_labels(self, small_path):
        arrival = earliest_arrival_times(small_path, 0, start_time=2)
        assert arrival.tolist()[0] == 2
        # first edge has label 1 <= start_time, so nothing is reachable
        assert arrival[1] == UNREACHABLE

    def test_no_labels_means_nothing_reachable(self):
        graph = path_graph(4)
        network = TemporalGraph(graph, [[], [], []])
        arrival = earliest_arrival_times(network, 0)
        assert arrival[1:].tolist() == [UNREACHABLE] * 3

    def test_invalid_source(self, small_path):
        with pytest.raises(ValueError):
            earliest_arrival_times(small_path, 9)

    def test_multi_label_edges_use_best_label(self):
        graph = path_graph(3)
        network = TemporalGraph(graph, [[4, 1], [5, 2]])
        arrival = earliest_arrival_times(network, 0)
        assert arrival.tolist() == [0, 1, 2]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_implementation(self, seed):
        graph = erdos_renyi_graph(18, 0.25, seed=seed)
        network = uniform_random_labels(graph, labels_per_edge=2, lifetime=12, seed=seed)
        for source in range(0, 18, 5):
            fast = earliest_arrival_times(network, source)
            slow = earliest_arrival_times_reference(network, source)
            assert np.array_equal(fast, slow)

    def test_clique_always_reaches_everyone(self, random_clique_instance):
        arrival = earliest_arrival_times(random_clique_instance, 0)
        assert np.all(arrival < UNREACHABLE)


class TestForemostJourney:
    def test_journey_is_valid_and_foremost(self, small_path):
        journey = foremost_journey(small_path, 0, 3)
        assert journey.source == 0 and journey.target == 3
        assert journey.arrival_time == 5
        assert journey.labels() == (1, 3, 5)

    def test_trivial_journey(self, small_path):
        journey = foremost_journey(small_path, 2, 2)
        assert journey.hops == 0
        assert journey.arrival_time == 0

    def test_unreachable_raises(self, small_path):
        with pytest.raises(UnreachableVertexError):
            foremost_journey(small_path, 3, 0)

    def test_journey_arrival_matches_distance(self, random_clique_instance):
        network = random_clique_instance
        for target in (1, 7, 13, 23):
            journey = foremost_journey(network, 0, target)
            assert journey.arrival_time == temporal_distance(network, 0, target)

    def test_journey_uses_existing_time_edges(self, random_clique_instance):
        journey = foremost_journey(random_clique_instance, 2, 9)
        for edge in journey:
            assert random_clique_instance.has_time_edge(edge.u, edge.v, edge.label)

    def test_journey_on_star_uses_two_hops(self, two_label_star):
        journey = foremost_journey(two_label_star, 1, 2)
        assert journey.hops == 2
        assert journey.vertices() == (1, 0, 2)
        assert journey.labels() == (1, 2)

    def test_tree_predecessors_consistent(self, random_clique_instance):
        arrival, predecessor = foremost_journey_tree(random_clique_instance, 4)
        labels = random_clique_instance.time_arc_labels
        heads = random_clique_instance.time_arc_heads
        for v in range(random_clique_instance.n):
            if v == 4:
                assert predecessor[v] == -1
                continue
            arc = predecessor[v]
            assert arc >= 0
            assert heads[arc] == v
            assert labels[arc] == arrival[v]


class TestTemporalDistance:
    def test_distance_zero_to_self(self, small_path):
        assert temporal_distance(small_path, 1, 1) == 0

    def test_distance_unreachable_is_sentinel(self, small_path):
        assert temporal_distance(small_path, 3, 0) == UNREACHABLE

    def test_direct_edge_on_clique_bounds_distance(self):
        graph = complete_graph(12, directed=True)
        network = normalized_urtn(graph, seed=3)
        for target in range(1, 12):
            direct_label = network.labels_of(0, target)[0]
            assert temporal_distance(network, 0, target) <= direct_label

    def test_star_single_label_blocks_second_hop(self):
        graph = star_graph(4)
        network = assign_deterministic_labels(
            graph, {(0, 1): [3], (0, 2): [2], (0, 3): [1]}, lifetime=4
        )
        # 1 -> 0 at time 3, but both other edges are only available earlier.
        assert temporal_distance(network, 1, 2) == UNREACHABLE
        # 3 -> 0 at time 1, then 0 -> 2 at time 2 works.
        assert temporal_distance(network, 3, 2) == 2
