"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause without accidentally swallowing unrelated errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidVertexError",
    "InvalidEdgeError",
    "LabelingError",
    "LifetimeError",
    "JourneyError",
    "UnreachableVertexError",
    "ExperimentError",
    "ConfigurationError",
    "ConvergenceError",
    "SerializationError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structural problems with a static or temporal graph."""


class InvalidVertexError(GraphError, IndexError):
    """Raised when a vertex index is outside ``range(n)`` for the graph."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(
            f"vertex {vertex!r} is not a valid vertex index for a graph with "
            f"{n} vertices (expected an integer in [0, {n - 1}])"
        )
        self.vertex = vertex
        self.n = n


class InvalidEdgeError(GraphError, KeyError):
    """Raised when an edge is referenced that does not exist in the graph."""

    def __init__(self, edge: tuple[int, int]) -> None:
        super().__init__(f"edge {edge!r} does not exist in the graph")
        self.edge = edge


class LabelingError(ReproError):
    """Raised when a temporal label assignment is invalid or inconsistent."""


class LifetimeError(LabelingError, ValueError):
    """Raised when labels fall outside the network lifetime ``{1, …, a}``."""

    def __init__(self, label: int, lifetime: int) -> None:
        super().__init__(
            f"label {label} is outside the network lifetime interval "
            f"[1, {lifetime}]"
        )
        self.label = label
        self.lifetime = lifetime


class JourneyError(ReproError):
    """Raised for invalid journey constructions (non-increasing labels, …)."""


class UnreachableVertexError(JourneyError):
    """Raised when a journey is requested between temporally unreachable vertices."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(
            f"no temporal journey exists from vertex {source} to vertex {target}"
        )
        self.source = source
        self.target = target


class ExperimentError(ReproError):
    """Raised when a Monte-Carlo experiment is misconfigured or fails."""


class ConfigurationError(ExperimentError, ValueError):
    """Raised for invalid experiment or sweep configuration values."""


class ConvergenceError(ExperimentError):
    """Raised when a sequential stopping rule fails to converge."""

    def __init__(self, message: str, *, iterations: int | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations


class SerializationError(ReproError):
    """Raised when experiment results cannot be persisted or reloaded."""


class CheckpointError(SerializationError):
    """Raised when an engine checkpoint is corrupt or belongs to another run."""
