"""The paper's theoretical predictions, as plain functions of the parameters.

Each function documents which statement of the paper it encodes; the
experiment layer evaluates them at the measured parameter points so the
reports can print "paper says / we measured" side by side.
"""

from __future__ import annotations

import math

from ..utils.validation import check_positive_int

__all__ = [
    "temporal_diameter_prediction",
    "temporal_diameter_lower_bound",
    "expected_direct_wait",
    "r_lower_bound_star",
    "r_sufficient_general",
    "por_bound_general",
    "phone_call_rounds_prediction",
]


def temporal_diameter_prediction(n: int, *, gamma: float = 1.0) -> float:
    """Theorem 4: the temporal diameter of the normalized clique is ``≤ γ·log n`` whp.

    The constant ``γ`` is not pinned down by the paper (it emerges from the
    Chernoff constants); the experiments fit it from the measurements, and
    ``γ = 1`` gives the bare ``log n`` reference curve.
    """
    n = check_positive_int(n, "n")
    return gamma * math.log(n)


def temporal_diameter_lower_bound(n: int, lifetime: int | None = None) -> float:
    """The Ω-side predictions.

    * Remark after Theorem 4 (normalized case, ``a = n``): the temporal
      diameter cannot be ``o(log n)``.
    * Theorem 5 (``a`` asymptotically larger than ``n``): it must be
      ``Ω((a/n)·log n)``.
    """
    n = check_positive_int(n, "n")
    a = check_positive_int(lifetime, "lifetime") if lifetime is not None else n
    return max(a / n, 1.0) * math.log(n)


def expected_direct_wait(n: int) -> float:
    """Expected arrival time of the trivial 1-hop strategy on the clique: ``≈ n/2``.

    The introduction contrasts this ("wait for the link (s, t) to become
    available … a passing time equal to n/2 in expectation") with the
    ``Θ(log n)`` achievable through multi-hop journeys.
    """
    n = check_positive_int(n, "n")
    return (n + 1) / 2.0


def r_lower_bound_star(n: int) -> float:
    """Theorem 6(b): on the star, ``r(n) = o(log n)`` labels per edge fail whp.

    Returned as the bare ``log n`` reference curve (natural logarithm).
    """
    n = check_positive_int(n, "n")
    return math.log(n)


def r_sufficient_general(n: int, diam: int) -> float:
    """Theorem 7: ``r > 2·d(G)·log n`` labels per edge suffice for any connected G."""
    n = check_positive_int(n, "n")
    diam = check_positive_int(diam, "diam")
    return 2.0 * diam * math.log(n)


def por_bound_general(n: int, m: int, diam: int, *, epsilon: float = 0.0) -> float:
    """Theorem 8: ``PoR(G) ≤ (2·d(G)·log n + ε)·m/(n−1)``."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    diam = check_positive_int(diam, "diam")
    if n < 2:
        raise ValueError("the PoR bound needs at least two vertices")
    return (2.0 * diam * math.log(n) + epsilon) * m / (n - 1)


def phone_call_rounds_prediction(n: int) -> float:
    """Frieze–Grimmett/Pittel: push rumour spreading takes ``log₂ n + ln n`` rounds.

    The §1.1 baseline the dissemination experiment compares against.
    """
    n = check_positive_int(n, "n")
    if n == 1:
        return 0.0
    return math.log2(n) + math.log(n)
