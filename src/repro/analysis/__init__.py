"""Analysis layer: theoretical bounds, curve fitting and comparison tables.

The experiments report measured quantities next to the paper's predictions.
This subpackage holds the prediction functions (:mod:`repro.analysis.bounds`),
the fitting code that extracts the leading constant of ``c·log n`` /
``c·(a/n)·log n`` laws from measurements (:mod:`repro.analysis.fitting`),
threshold estimators (:mod:`repro.analysis.thresholds`) and the
paper-vs-measured comparison helpers used to build EXPERIMENTS.md
(:mod:`repro.analysis.comparison`).
"""

from .bounds import (
    expected_direct_wait,
    phone_call_rounds_prediction,
    por_bound_general,
    r_lower_bound_star,
    r_sufficient_general,
    temporal_diameter_lower_bound,
    temporal_diameter_prediction,
)
from .fitting import FitResult, fit_log_model, fit_power_model, fit_scaled_log_model
from .thresholds import estimate_probability_threshold, monotone_threshold_index
from .comparison import ComparisonRow, build_comparison_table

__all__ = [
    "temporal_diameter_prediction",
    "temporal_diameter_lower_bound",
    "expected_direct_wait",
    "r_lower_bound_star",
    "r_sufficient_general",
    "por_bound_general",
    "phone_call_rounds_prediction",
    "FitResult",
    "fit_log_model",
    "fit_scaled_log_model",
    "fit_power_model",
    "estimate_probability_threshold",
    "monotone_threshold_index",
    "ComparisonRow",
    "build_comparison_table",
]
