"""Threshold estimation for monotone probability curves.

Two of the experiments locate thresholds in monotone curves: E5 finds the
number of labels per edge at which the star becomes temporally reachable whp,
and E7 finds the edge probability at which ``G(n, p)`` becomes connected.
Both reduce to the same primitive: given a monotone (up to Monte-Carlo noise)
sequence of probabilities measured on a grid, return the grid point where the
curve first crosses a target level, optionally with linear interpolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..utils.validation import check_probability

__all__ = ["monotone_threshold_index", "estimate_probability_threshold"]


def monotone_threshold_index(
    probabilities: Sequence[float], target: float
) -> int | None:
    """Index of the first probability ``>= target`` after isotonic smoothing.

    The raw Monte-Carlo estimates may dip non-monotonically; a running maximum
    (the simplest isotonic regression from the left) removes those dips before
    the crossing is located.  Returns ``None`` when the curve never reaches the
    target.
    """
    target = check_probability(target, "target")
    values = np.asarray(list(probabilities), dtype=np.float64)
    if values.size == 0:
        return None
    smoothed = np.maximum.accumulate(values)
    crossing = np.flatnonzero(smoothed >= target)
    if crossing.size == 0:
        return None
    return int(crossing[0])


def estimate_probability_threshold(
    grid: Sequence[float],
    probabilities: Sequence[float],
    *,
    target: float = 0.5,
    interpolate: bool = True,
) -> float | None:
    """Location on ``grid`` where the probability curve crosses ``target``.

    Parameters
    ----------
    grid:
        Monotonically increasing parameter values (e.g. ``r`` or ``p``).
    probabilities:
        Measured probabilities at the corresponding grid points.
    target:
        Crossing level.
    interpolate:
        When True, linearly interpolate between the bracketing grid points for
        a smoother estimate; otherwise return the first grid point at/above the
        target.

    Returns ``None`` if the curve never reaches the target.
    """
    grid_arr = np.asarray(list(grid), dtype=np.float64)
    prob_arr = np.asarray(list(probabilities), dtype=np.float64)
    if grid_arr.size != prob_arr.size:
        raise ValueError(
            f"grid and probabilities must have the same length, got {grid_arr.size} "
            f"and {prob_arr.size}"
        )
    if np.any(np.diff(grid_arr) <= 0):
        raise ValueError("grid values must be strictly increasing")
    index = monotone_threshold_index(prob_arr, target)
    if index is None:
        return None
    if not interpolate or index == 0:
        return float(grid_arr[index])
    smoothed = np.maximum.accumulate(prob_arr)
    x0, x1 = grid_arr[index - 1], grid_arr[index]
    y0, y1 = smoothed[index - 1], smoothed[index]
    if y1 == y0:
        return float(x1)
    fraction = (target - y0) / (y1 - y0)
    return float(x0 + fraction * (x1 - x0))
