"""Least-squares fits of the scaling laws appearing in the paper.

The experiments measure, e.g., the temporal diameter as a function of ``n``
and need the leading constant of the ``c·log n + b`` law (Theorem 4) or the
``c·(a/n)·log n`` law (Theorem 5).  These are linear least-squares problems in
the transformed covariate, solved with :func:`numpy.linalg.lstsq`; the power
law fit linearises through logarithms and is used to check that the measured
growth is indeed logarithmic rather than polynomial (the fitted exponent
should be close to 0 against ``n``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["FitResult", "fit_log_model", "fit_scaled_log_model", "fit_power_model"]


@dataclass(frozen=True, slots=True)
class FitResult:
    """Outcome of a least-squares fit.

    Attributes
    ----------
    model:
        Human-readable description of the fitted functional form.
    coefficients:
        Fitted coefficients, in the order documented by the fitting function.
    r_squared:
        Coefficient of determination on the fitting data.
    """

    model: str
    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at a single covariate value."""
        if self.model.startswith("y = c*log(x) + b"):
            c, b = self.coefficients
            return c * math.log(x) + b
        if self.model.startswith("y = c*x + b"):
            c, b = self.coefficients
            return c * x + b
        if self.model.startswith("y = c*x^k"):
            c, k = self.coefficients
            return c * x**k
        raise ValueError(f"unknown model {self.model!r}")


def _validate_xy(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x_arr = np.asarray(list(x), dtype=np.float64)
    y_arr = np.asarray(list(y), dtype=np.float64)
    if x_arr.size != y_arr.size:
        raise ValueError(
            f"x and y must have the same length, got {x_arr.size} and {y_arr.size}"
        )
    if x_arr.size < 2:
        raise ValueError("fitting needs at least two points")
    return x_arr, y_arr


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def fit_log_model(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c·log(x) + b``; coefficients are ``(c, b)``.

    This is the Theorem 4 check: the measured temporal diameter against ``n``
    should produce a positive ``c`` with a high ``r_squared``.
    """
    x_arr, y_arr = _validate_xy(x, y)
    if np.any(x_arr <= 0):
        raise ValueError("the logarithmic model requires positive x values")
    design = np.stack([np.log(x_arr), np.ones_like(x_arr)], axis=1)
    coef, *_ = np.linalg.lstsq(design, y_arr, rcond=None)
    predicted = design @ coef
    return FitResult(
        model="y = c*log(x) + b",
        coefficients=(float(coef[0]), float(coef[1])),
        r_squared=_r_squared(y_arr, predicted),
    )


def fit_scaled_log_model(
    scaled_x: Sequence[float], y: Sequence[float]
) -> FitResult:
    """Fit ``y = c·x + b`` on an already-transformed covariate.

    The Theorem 5 experiment passes ``x = (a/n)·log n`` so the fitted ``c`` is
    the leading constant of the ``Ω((a/n)·log n)`` law.
    """
    x_arr, y_arr = _validate_xy(scaled_x, y)
    design = np.stack([x_arr, np.ones_like(x_arr)], axis=1)
    coef, *_ = np.linalg.lstsq(design, y_arr, rcond=None)
    predicted = design @ coef
    return FitResult(
        model="y = c*x + b",
        coefficients=(float(coef[0]), float(coef[1])),
        r_squared=_r_squared(y_arr, predicted),
    )


def fit_power_model(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c·x^k`` through log–log linear regression; coefficients ``(c, k)``.

    Used as a sanity check that measured growth is sub-polynomial: fitting the
    temporal diameter against ``n`` should give an exponent ``k`` close to 0
    (whereas the trivial wait-for-the-direct-edge strategy gives ``k ≈ 1``).
    """
    x_arr, y_arr = _validate_xy(x, y)
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("the power model requires strictly positive x and y values")
    design = np.stack([np.log(x_arr), np.ones_like(x_arr)], axis=1)
    coef, *_ = np.linalg.lstsq(design, np.log(y_arr), rcond=None)
    k, log_c = float(coef[0]), float(coef[1])
    predicted = np.exp(design @ coef)
    return FitResult(
        model="y = c*x^k",
        coefficients=(float(math.exp(log_c)), k),
        r_squared=_r_squared(y_arr, predicted),
    )
