"""Paper-vs-measured comparison rows used to assemble EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["ComparisonRow", "build_comparison_table"]


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One line of a paper-vs-measured comparison.

    Attributes
    ----------
    quantity:
        What is being compared (e.g. "temporal diameter, n=256").
    paper:
        The paper's statement or predicted value, as a display string.
    measured:
        The measured value, as a display string.
    matches:
        Whether the measurement is consistent with the paper's claim (the
        *shape* criterion described in DESIGN.md, not absolute equality).
    note:
        Optional free-text commentary.
    """

    quantity: str
    paper: str
    measured: str
    matches: bool
    note: str = ""

    def as_markdown(self) -> str:
        """Render as a markdown table row."""
        verdict = "yes" if self.matches else "NO"
        return f"| {self.quantity} | {self.paper} | {self.measured} | {verdict} | {self.note} |"


def build_comparison_table(rows: Iterable[ComparisonRow]) -> str:
    """Render comparison rows as a complete markdown table."""
    rows = list(rows)
    header = (
        "| Quantity | Paper | Measured | Consistent | Note |\n"
        "|---|---|---|---|---|"
    )
    if not rows:
        return header
    body = "\n".join(row.as_markdown() for row in rows)
    return f"{header}\n{body}"
