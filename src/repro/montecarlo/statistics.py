"""Summary statistics and confidence intervals for Monte-Carlo metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_positive_int, check_probability

__all__ = [
    "SummaryStatistics",
    "summarize",
    "normal_confidence_interval",
    "normal_interval_from_moments",
    "bootstrap_confidence_interval",
]


@dataclass(frozen=True, slots=True)
class SummaryStatistics:
    """Summary of a sample of a single metric.

    Attributes
    ----------
    count / mean / std / minimum / maximum / median:
        The usual sample statistics (``std`` uses the unbiased ``ddof=1``
        estimator, 0.0 when only one sample is available).
    ci_low / ci_high:
        Normal-approximation confidence interval at the level used by
        :func:`summarize` (95% by default).
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    ci_low: float
    ci_high: float

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width of the CI relative to the absolute mean.

        A zero mean makes the ratio undefined; by convention it is ``inf``
        when the interval has positive width (the estimate genuinely cannot
        be resolved relative to 0) and ``nan`` for the degenerate case of a
        zero-width interval around a zero mean (e.g. a single all-zero
        sample), where "infinitely imprecise" would be misleading.
        """
        if self.mean == 0.0:
            return math.nan if self.half_width == 0.0 else math.inf
        return self.half_width / abs(self.mean)

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary representation (used by the CSV/JSON writers)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def normal_interval_from_moments(
    mean: float, std: float, count: int, *, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for a mean given its sample moments.

    The single home of the CI convention: both the array-based
    :func:`normal_confidence_interval` and the engine's streaming summaries
    (:meth:`repro.engine.accumulators.MetricAccumulator.summary`) delegate
    here.  With fewer than two samples the interval degenerates to the mean.
    """
    confidence = check_probability(confidence, "confidence")
    count = check_positive_int(count, "count")
    if count == 1:
        return (mean, mean)
    sem = std / math.sqrt(count)
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    return (mean - z * sem, mean + z * sem)


def normal_confidence_interval(
    values: Sequence[float], *, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean of ``values``.

    With fewer than two samples the interval degenerates to the single value.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot build a confidence interval from an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return normal_interval_from_moments(
        mean, std, int(arr.size), confidence=confidence
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = None,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``.

    More robust than the normal approximation for the heavily skewed metrics
    (e.g. broadcast times conditioned on success) that show up in the
    experiments.

    ``rng`` accepts an explicit (typically spawned) generator so that
    parallel shards can bootstrap from their own independent streams without
    sharing one generator; it is mutually exclusive with ``seed``.
    """
    confidence = check_probability(confidence, "confidence")
    resamples = check_positive_int(resamples, "resamples")
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either seed= or rng=, not both")
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                f"rng must be a numpy.random.Generator, got {type(rng).__name__}"
            )
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if arr.size == 1:
        value = float(arr[0])
        return (value, value)
    if rng is None:
        rng = normalize_rng(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(low), float(high))


def summarize(
    values: Sequence[float], *, confidence: float = 0.95
) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for a metric sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    ci_low, ci_high = normal_confidence_interval(arr, confidence=confidence)
    # The sample mean mathematically lies in [min, max]; clamp away the 1-ulp
    # rounding drift np.mean can introduce on denormal-range samples.
    mean = min(max(float(arr.mean()), float(arr.min())), float(arr.max()))
    return SummaryStatistics(
        count=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        ci_low=ci_low,
        ci_high=ci_high,
    )
