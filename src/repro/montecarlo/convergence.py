"""Sequential stopping rules for Monte-Carlo estimation.

The runner can either execute a fixed number of repetitions
(:class:`FixedBudgetStopping`) or keep sampling until the confidence interval
of a designated metric is tight enough (:class:`RelativeErrorStopping`).  The
latter is used by the higher-accuracy experiment presets where the variance of
the temporal diameter differs a lot between small and large ``n``.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

from ..exceptions import ConfigurationError, ConvergenceError
from ..utils.validation import check_fraction, check_positive_int
from .statistics import summarize

__all__ = ["StoppingRule", "FixedBudgetStopping", "RelativeErrorStopping"]


class StoppingRule(abc.ABC):
    """Decides, given the metrics collected so far, whether to keep sampling."""

    @abc.abstractmethod
    def should_stop(self, metrics: Mapping[str, Sequence[float]]) -> bool:
        """Whether enough repetitions have been collected."""

    @property
    @abc.abstractmethod
    def max_repetitions(self) -> int:
        """Hard cap on the number of repetitions."""

    @property
    def min_repetitions(self) -> int:
        """Minimum number of repetitions before the rule is consulted."""
        return 1

    def on_budget_exhausted(self, repetitions: int) -> None:
        """Hook called when the cap is reached without the rule being satisfied."""


class FixedBudgetStopping(StoppingRule):
    """Run exactly ``repetitions`` trials."""

    def __init__(self, repetitions: int) -> None:
        self._repetitions = check_positive_int(repetitions, "repetitions")

    @property
    def max_repetitions(self) -> int:
        return self._repetitions

    @property
    def min_repetitions(self) -> int:
        return self._repetitions

    def should_stop(self, metrics: Mapping[str, Sequence[float]]) -> bool:
        if not metrics:
            return False
        some_metric = next(iter(metrics.values()))
        return len(some_metric) >= self._repetitions

    def __repr__(self) -> str:
        return f"FixedBudgetStopping(repetitions={self._repetitions})"


class RelativeErrorStopping(StoppingRule):
    """Stop once the CI half-width of ``metric`` is below a relative tolerance.

    Parameters
    ----------
    metric:
        The metric whose confidence interval controls stopping.
    relative_tolerance:
        Target relative half-width (e.g. 0.05 for ±5%).
    min_repetitions / max_repetitions:
        Sampling floor and hard cap.
    strict:
        When True, exhausting the cap without reaching the tolerance raises
        :class:`ConvergenceError`; otherwise the available sample is used.
    """

    def __init__(
        self,
        metric: str,
        *,
        relative_tolerance: float = 0.05,
        min_repetitions: int = 10,
        max_repetitions: int = 1000,
        confidence: float = 0.95,
        strict: bool = False,
    ) -> None:
        if not metric:
            raise ConfigurationError("the controlling metric name must be non-empty")
        self._metric = metric
        self._tolerance = check_fraction(relative_tolerance, "relative_tolerance")
        self._min = check_positive_int(min_repetitions, "min_repetitions")
        self._max = check_positive_int(max_repetitions, "max_repetitions")
        if self._max < self._min:
            raise ConfigurationError(
                f"max_repetitions ({self._max}) must be >= min_repetitions ({self._min})"
            )
        self._confidence = confidence
        self._strict = bool(strict)

    @property
    def metric(self) -> str:
        """Name of the controlling metric."""
        return self._metric

    @property
    def max_repetitions(self) -> int:
        return self._max

    @property
    def min_repetitions(self) -> int:
        return self._min

    def should_stop(self, metrics: Mapping[str, Sequence[float]]) -> bool:
        values = metrics.get(self._metric)
        if values is None or len(values) < self._min:
            return False
        stats = summarize(values, confidence=self._confidence)
        return stats.relative_half_width <= self._tolerance

    def on_budget_exhausted(self, repetitions: int) -> None:
        if self._strict:
            raise ConvergenceError(
                f"metric {self._metric!r} did not reach relative tolerance "
                f"{self._tolerance} within {repetitions} repetitions",
                iterations=repetitions,
            )

    def __repr__(self) -> str:
        return (
            f"RelativeErrorStopping(metric={self._metric!r}, "
            f"relative_tolerance={self._tolerance}, min={self._min}, max={self._max})"
        )
