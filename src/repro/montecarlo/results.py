"""Result containers for Monte-Carlo runs and parameter sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from .statistics import SummaryStatistics, summarize

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..engine.accumulators import AccumulatorSet

__all__ = ["TrialResult", "SweepResult", "results_to_records"]


@dataclass(frozen=True)
class TrialResult:
    """Aggregated result of repeated trials at a single parameter point.

    Attributes
    ----------
    experiment:
        Name of the experiment.
    parameters:
        The parameter point at which the trials were run.
    metrics:
        Per-trial metric values: ``metric name → list of values``.  Under the
        runner's default ``aggregation="full"`` these are the raw values of
        every repetition; under ``aggregation="streaming"`` they are the
        engine's bounded reservoir sample (still the full stream whenever the
        budget fits the reservoir).
    repetitions:
        Number of trials actually executed.
    accumulators:
        Streaming accumulators, set only under ``aggregation="streaming"``.
        When present, :meth:`summary` uses their exact streamed
        count/mean/std/min/max instead of re-summarising :attr:`metrics`.
    """

    experiment: str
    parameters: Mapping[str, Any]
    metrics: Mapping[str, Sequence[float]]
    repetitions: int
    accumulators: "AccumulatorSet | None" = None

    def metric_names(self) -> list[str]:
        """Sorted list of metric names recorded by the trials."""
        return sorted(self.metrics)

    def values(self, metric: str) -> list[float]:
        """Values of a metric across repetitions (see :attr:`metrics`)."""
        if metric not in self.metrics:
            raise KeyError(
                f"metric {metric!r} was not recorded; available: {self.metric_names()}"
            )
        return list(self.metrics[metric])

    def summary(self, metric: str, *, confidence: float = 0.95) -> SummaryStatistics:
        """Summary statistics for one metric."""
        if self.accumulators is not None and metric in self.accumulators:
            return self.accumulators[metric].summary(confidence=confidence)
        return summarize(self.values(metric), confidence=confidence)

    def mean(self, metric: str) -> float:
        """Convenience accessor for the sample mean of one metric."""
        return self.summary(metric).mean

    def as_record(self) -> dict[str, Any]:
        """Flatten into a single record: parameters plus per-metric summaries."""
        record: dict[str, Any] = {"experiment": self.experiment, "repetitions": self.repetitions}
        record.update({f"param_{k}": v for k, v in self.parameters.items()})
        for metric in self.metric_names():
            stats = self.summary(metric)
            record[f"{metric}_mean"] = stats.mean
            record[f"{metric}_std"] = stats.std
            record[f"{metric}_ci_low"] = stats.ci_low
            record[f"{metric}_ci_high"] = stats.ci_high
        return record


@dataclass
class SweepResult:
    """Results of an experiment across a parameter sweep (one TrialResult per point)."""

    experiment: str
    points: list[TrialResult] = field(default_factory=list)

    def add(self, result: TrialResult) -> None:
        """Append the result of one sweep point."""
        if result.experiment != self.experiment:
            raise ValueError(
                f"cannot add a result of experiment {result.experiment!r} to the "
                f"sweep of {self.experiment!r}"
            )
        self.points.append(result)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self.points)

    def metric_names(self) -> list[str]:
        """Union of metric names across all sweep points."""
        names: set[str] = set()
        for point in self.points:
            names.update(point.metric_names())
        return sorted(names)

    def column(self, parameter: str) -> list[Any]:
        """Values of one parameter across the sweep points, in order."""
        return [point.parameters.get(parameter) for point in self.points]

    def metric_means(self, metric: str) -> list[float]:
        """Mean of one metric across the sweep points, in order."""
        return [point.mean(metric) for point in self.points]

    def as_records(self) -> list[dict[str, Any]]:
        """One flat record per sweep point (see :meth:`TrialResult.as_record`)."""
        return [point.as_record() for point in self.points]


def results_to_records(
    results: Sequence[TrialResult] | SweepResult,
) -> list[dict[str, Any]]:
    """Normalise either a sweep or a list of trial results into flat records."""
    if isinstance(results, SweepResult):
        return results.as_records()
    return [result.as_record() for result in results]
