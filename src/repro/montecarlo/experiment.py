"""Experiment protocol: a named, parameterised trial function.

A *trial function* receives the experiment parameters plus a dedicated
:class:`numpy.random.Generator` and returns a flat mapping of metric name to
numeric value.  Keeping trials as plain functions (rather than classes with
state) makes them trivially reproducible: the runner derives one independent
generator per trial from the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["TrialFunction", "Experiment"]

#: Signature of a Monte-Carlo trial: ``(parameters, rng) -> {metric: value}``.
TrialFunction = Callable[[Mapping[str, Any], np.random.Generator], Mapping[str, float]]


@dataclass(frozen=True)
class Experiment:
    """A named trial function together with its parameters.

    Attributes
    ----------
    name:
        Short identifier used in reports and file names.
    trial:
        The trial function.
    parameters:
        Parameters passed to every trial (the sweep layer varies these).
    description:
        Optional human-readable description shown in reports.
    """

    name: str
    trial: TrialFunction
    parameters: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an experiment needs a non-empty name")
        if not callable(self.trial):
            raise ConfigurationError("the trial must be callable")

    def with_parameters(self, **overrides: Any) -> "Experiment":
        """Return a copy of the experiment with some parameters replaced."""
        merged = dict(self.parameters)
        merged.update(overrides)
        return Experiment(
            name=self.name,
            trial=self.trial,
            parameters=merged,
            description=self.description,
        )

    def run_single(self, rng: np.random.Generator) -> Mapping[str, float]:
        """Run one trial with the given generator and validate its output."""
        metrics = self.trial(self.parameters, rng)
        if not isinstance(metrics, Mapping) or not metrics:
            raise ConfigurationError(
                f"trial of experiment {self.name!r} must return a non-empty "
                f"mapping of metrics, got {type(metrics).__name__}"
            )
        validated: dict[str, float] = {}
        for key, value in metrics.items():
            try:
                validated[str(key)] = float(value)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"metric {key!r} of experiment {self.name!r} is not numeric: "
                    f"{value!r}"
                ) from exc
        return validated
