"""Monte-Carlo experiment engine.

The paper's quantities of interest (temporal diameter, reachability
probability, broadcast time, …) are expectations or probabilities over random
label assignments; this subpackage provides the machinery to estimate them:

* :class:`Experiment` — a named trial function plus its parameters;
* :class:`MonteCarloRunner` — runs repeated independent trials with spawned
  RNG streams and aggregates the metrics; fixed-budget runs execute on the
  parallel engine (:mod:`repro.engine`), so ``jobs=N`` fans trials out over
  worker processes with bit-identical results;
* :mod:`repro.montecarlo.statistics` — summary statistics and confidence
  intervals;
* :class:`ParameterSweep` — cartesian grids over experiment parameters;
* result containers with CSV/JSON export;
* sequential stopping rules (:mod:`repro.montecarlo.convergence`).
"""

from .experiment import Experiment, TrialFunction
from .runner import MonteCarloRunner, run_trials
from .statistics import (
    SummaryStatistics,
    bootstrap_confidence_interval,
    normal_confidence_interval,
    summarize,
)
from .sweep import ParameterSweep, sweep_grid
from .results import SweepResult, TrialResult, results_to_records
from .convergence import RelativeErrorStopping, StoppingRule, FixedBudgetStopping

__all__ = [
    "Experiment",
    "TrialFunction",
    "MonteCarloRunner",
    "run_trials",
    "SummaryStatistics",
    "summarize",
    "normal_confidence_interval",
    "bootstrap_confidence_interval",
    "ParameterSweep",
    "sweep_grid",
    "TrialResult",
    "SweepResult",
    "results_to_records",
    "StoppingRule",
    "FixedBudgetStopping",
    "RelativeErrorStopping",
]
