"""Parameter sweeps: cartesian grids over experiment parameters."""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator, Mapping, Sequence

from ..exceptions import ConfigurationError
from ..utils.validation import check_positive_int

__all__ = ["ParameterSweep", "sweep_grid"]


class ParameterSweep:
    """A cartesian product of parameter values.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the sequence of values it sweeps over.
        Scalars are treated as single-value sequences.
    constants:
        Parameters held fixed across the whole sweep (merged into each point).

    Example
    -------
    >>> sweep = ParameterSweep({"n": [16, 32], "r": [1, 2, 3]})
    >>> len(sweep)
    6
    """

    def __init__(
        self,
        grid: Mapping[str, Sequence[Any] | Any],
        *,
        constants: Mapping[str, Any] | None = None,
    ) -> None:
        if not grid:
            raise ConfigurationError("a sweep needs at least one swept parameter")
        self._grid: dict[str, list[Any]] = {}
        for key, values in grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                values = [values]
            values = list(values)
            if not values:
                raise ConfigurationError(f"parameter {key!r} has no values to sweep")
            self._grid[str(key)] = values
        self._constants = dict(constants or {})
        overlap = set(self._grid) & set(self._constants)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear both in the grid and in constants"
            )
        # Set by shard(): an explicit point list that overrides the cartesian
        # enumeration, so sub-sweeps need not be cartesian themselves.
        self._explicit_points: list[dict[str, Any]] | None = None

    @property
    def parameter_names(self) -> list[str]:
        """Names of the swept parameters (insertion order)."""
        return list(self._grid)

    @property
    def constants(self) -> dict[str, Any]:
        """The fixed parameters merged into every point."""
        return dict(self._constants)

    def __len__(self) -> int:
        if self._explicit_points is not None:
            return len(self._explicit_points)
        total = 1
        for values in self._grid.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[dict[str, Any]]:
        """Iterate over all parameter points (grid values merged with constants)."""
        if self._explicit_points is not None:
            for point in self._explicit_points:
                yield dict(point)
            return
        names = list(self._grid)
        for combination in product(*(self._grid[name] for name in names)):
            point = dict(self._constants)
            point.update(dict(zip(names, combination)))
            yield point

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.points()

    def restrict(self, **subset: Sequence[Any]) -> "ParameterSweep":
        """Return a new sweep with some parameters restricted to the given values."""
        if self._explicit_points is not None:
            raise ConfigurationError(
                "a sweep shard cannot be restricted; restrict the full sweep "
                "before sharding it"
            )
        new_grid: dict[str, Sequence[Any]] = dict(self._grid)
        for key, values in subset.items():
            if key not in new_grid:
                raise ConfigurationError(f"parameter {key!r} is not part of the sweep")
            new_grid[key] = list(values)
        return ParameterSweep(new_grid, constants=self._constants)

    def shard(self, k: int) -> list["ParameterSweep"]:
        """Split the sweep into ``k`` balanced sub-sweeps.

        Points are dealt to the shards in contiguous blocks of the grid's
        enumeration order, with sizes differing by at most one, so that the
        concatenation of all shards' points reproduces the full sweep exactly
        (the round-trip property the tests pin).  Sub-sweeps keep the parent's
        parameter names and constants but enumerate an explicit point list —
        a slice of a cartesian grid is generally not cartesian — which makes
        them directly usable with ``MonteCarloRunner.run_sweep`` on separate
        machines or processes.
        """
        total = len(self)
        try:
            k = check_positive_int(k, "shard count")
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(str(exc)) from exc
        if k > total:
            raise ConfigurationError(
                f"cannot split a sweep of {total} point(s) into {k} non-empty shards"
            )
        points = list(self.points())
        base, extra = divmod(total, k)
        shards: list[ParameterSweep] = []
        start = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            piece = ParameterSweep(self._grid, constants=self._constants)
            piece._explicit_points = points[start : start + size]
            shards.append(piece)
            start += size
        return shards

    def __repr__(self) -> str:
        if self._explicit_points is not None:
            return f"ParameterSweep(shard, points={len(self)})"
        sizes = ", ".join(f"{k}×{len(v)}" for k, v in self._grid.items())
        return f"ParameterSweep({sizes}, points={len(self)})"


def sweep_grid(**grid: Sequence[Any] | Any) -> ParameterSweep:
    """Keyword-argument convenience constructor for :class:`ParameterSweep`."""
    return ParameterSweep(grid)
