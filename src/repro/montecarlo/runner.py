"""The Monte-Carlo runner: repeated independent trials with seeded streams.

Fixed-budget runs are delegated to the parallel execution engine
(:mod:`repro.engine`): the trial budget is cut into deterministic shards,
executed by a pluggable :class:`repro.engine.executors.Executor` (in-process
by default, a process pool with ``jobs > 1``) and merged in shard-index
order.  For a fixed master seed the resulting :class:`TrialResult` is
bit-identical across ``jobs`` counts and executors — see
``docs/parallel_engine.md`` for the contract.

Adaptive stopping rules (e.g. :class:`RelativeErrorStopping`) are inherently
sequential — whether to run trial ``k+1`` depends on trials ``1 … k`` — and
keep using the in-process loop below; combining them with parallel options
raises :class:`repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

from ..engine.accumulators import DEFAULT_RESERVOIR_CAPACITY
from ..engine.driver import ProgressCallback, run_sharded
from ..engine.executors import Executor, SerialExecutor, resolve_executor
from ..exceptions import ConfigurationError
from ..utils.logging import get_logger
from ..utils.seeding import SeedLike, spawn_rngs
from ..utils.timing import Timer
from ..utils.validation import check_positive_int
from .convergence import FixedBudgetStopping, StoppingRule
from .experiment import Experiment
from .results import SweepResult, TrialResult
from .sweep import ParameterSweep

__all__ = ["MonteCarloRunner", "run_trials"]

_LOGGER = get_logger("montecarlo.runner")

#: Valid values of the ``aggregation`` option.
_AGGREGATION_MODES = ("full", "streaming")


def run_trials(
    experiment: Experiment,
    *,
    repetitions: int = 30,
    seed: SeedLike = None,
    jobs: int | None = None,
    executor: Executor | None = None,
    shard_size: int | None = None,
    checkpoint_dir: str | os.PathLike[str] | None = None,
    progress: ProgressCallback | None = None,
    aggregation: str = "full",
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
) -> TrialResult:
    """Run a fixed number of independent trials of an experiment.

    Thin convenience wrapper over :class:`MonteCarloRunner` for the common
    fixed-budget case.  ``jobs=4`` fans the trial budget out over four worker
    processes; results are bit-identical to ``jobs=1`` for the same seed.
    """
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(check_positive_int(repetitions, "repetitions")),
        seed=seed,
        jobs=jobs,
        executor=executor,
        shard_size=shard_size,
        checkpoint_dir=checkpoint_dir,
        progress=progress,
        aggregation=aggregation,
        reservoir_capacity=reservoir_capacity,
    )
    return runner.run(experiment)


class MonteCarloRunner:
    """Runs experiments: repeated trials, independent RNG streams, aggregation.

    Parameters
    ----------
    stopping:
        The stopping rule (fixed budget by default: 30 repetitions).
    seed:
        Master seed.  Each trial receives its own generator spawned from this
        seed, so results are reproducible and independent of execution order,
        shard layout and worker count.
    jobs / executor:
        Execution strategy for fixed-budget runs: ``jobs=N`` with ``N > 1``
        uses a process pool of ``N`` workers; an explicit
        :class:`repro.engine.executors.Executor` instance overrides it.
        Defaults to in-process serial execution.
    shard_size:
        Trials per engine shard (default: an even cut into at most 16
        shards).  Affects scheduling granularity only; raw trial values are
        identical for any value.
    checkpoint_dir:
        Directory for crash/resume persistence of completed shards
        (fixed-budget runs only).  ``run_sweep`` appends one subdirectory per
        sweep point.
    progress:
        Optional hook ``(completed_shards, total_shards, repetitions_done)``
        invoked as shards finish.
    aggregation:
        ``"full"`` (default) keeps every raw trial value on the result;
        ``"streaming"`` ships only O(1) accumulator partials per shard — the
        result then exposes exact count/mean/std/min/max, a reservoir-backed
        median, and bounded samples instead of full arrays.
    reservoir_capacity:
        Per-metric bound on the streaming reservoir (default 1024); raise it
        when a streaming run's median/sample should stay exact for larger
        budgets.
    """

    def __init__(
        self,
        *,
        stopping: StoppingRule | None = None,
        seed: SeedLike = None,
        jobs: int | None = None,
        executor: Executor | None = None,
        shard_size: int | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        progress: ProgressCallback | None = None,
        aggregation: str = "full",
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ) -> None:
        self._stopping = stopping if stopping is not None else FixedBudgetStopping(30)
        self._seed = seed
        if aggregation not in _AGGREGATION_MODES:
            raise ConfigurationError(
                f"aggregation must be one of {_AGGREGATION_MODES}, got {aggregation!r}"
            )
        self._executor = resolve_executor(executor, jobs)
        self._shard_size = (
            None if shard_size is None else check_positive_int(shard_size, "shard_size")
        )
        self._checkpoint_dir = checkpoint_dir
        self._progress = progress
        self._aggregation = aggregation
        self._reservoir_capacity = check_positive_int(
            reservoir_capacity, "reservoir_capacity"
        )
        if not isinstance(self._stopping, FixedBudgetStopping):
            parallel_options = []
            if not isinstance(self._executor, SerialExecutor):
                parallel_options.append("jobs/executor")
            if self._shard_size is not None:
                parallel_options.append("shard_size")
            if checkpoint_dir is not None:
                parallel_options.append("checkpoint_dir")
            if progress is not None:
                parallel_options.append("progress")
            if aggregation != "full":
                parallel_options.append("aggregation='streaming'")
            if parallel_options:
                raise ConfigurationError(
                    f"{', '.join(parallel_options)} require a fixed trial budget; "
                    f"adaptive stopping rules ({type(self._stopping).__name__}) "
                    "decide trial k+1 from trials 1..k and run sequentially"
                )

    @property
    def stopping(self) -> StoppingRule:
        """The stopping rule in use."""
        return self._stopping

    @property
    def executor(self) -> Executor:
        """The executor fixed-budget runs are dispatched to."""
        return self._executor

    def run(self, experiment: Experiment) -> TrialResult:
        """Run one experiment at its current parameter point."""
        if isinstance(self._stopping, FixedBudgetStopping):
            return self._run_fixed_budget(experiment)
        return self._run_adaptive(experiment)

    def _run_fixed_budget(self, experiment: Experiment) -> TrialResult:
        """Fixed budgets are embarrassingly parallel: delegate to the engine."""
        collect_values = self._aggregation == "full"
        result = run_sharded(
            experiment,
            budget=self._stopping.max_repetitions,
            seed=self._seed,
            executor=self._executor,
            shard_size=self._shard_size,
            collect_values=collect_values,
            reservoir_capacity=self._reservoir_capacity,
            checkpoint_dir=self._checkpoint_dir,
            progress=self._progress,
        )
        if collect_values:
            assert result.values is not None
            return TrialResult(
                experiment=experiment.name,
                parameters=dict(experiment.parameters),
                metrics=result.values,
                repetitions=result.repetitions,
            )
        return TrialResult(
            experiment=experiment.name,
            parameters=dict(experiment.parameters),
            metrics=result.accumulators.samples(),
            repetitions=result.repetitions,
            accumulators=result.accumulators,
        )

    def _run_adaptive(self, experiment: Experiment) -> TrialResult:
        """Sequential loop for stopping rules that inspect the running sample."""
        max_reps = self._stopping.max_repetitions
        rngs = spawn_rngs(self._seed, max_reps)
        metrics: dict[str, list[float]] = {}
        repetitions = 0
        with Timer(experiment.name) as timer:
            for rng in rngs:
                trial_metrics = experiment.run_single(rng)
                for key, value in trial_metrics.items():
                    metrics.setdefault(key, []).append(value)
                repetitions += 1
                if (
                    repetitions >= self._stopping.min_repetitions
                    and self._stopping.should_stop(metrics)
                ):
                    break
            else:
                self._stopping.on_budget_exhausted(repetitions)
        _LOGGER.debug(
            "experiment %s: %d repetitions in %s",
            experiment.name,
            repetitions,
            timer,
        )
        return TrialResult(
            experiment=experiment.name,
            parameters=dict(experiment.parameters),
            metrics={key: tuple(values) for key, values in metrics.items()},
            repetitions=repetitions,
        )

    def run_sweep(
        self,
        experiment: Experiment,
        sweep: ParameterSweep | Sequence[Mapping[str, object]],
    ) -> SweepResult:
        """Run the experiment at every parameter point of a sweep.

        Each point gets its own independent master seed derived from the
        runner seed so that adding or removing points does not perturb the
        other points' results.  The executor (and therefore ``jobs``) is
        shared across points; with a ``checkpoint_dir`` every point persists
        its shards under a ``point-NNNN`` subdirectory.
        """
        points = list(sweep.points()) if isinstance(sweep, ParameterSweep) else list(sweep)
        result = SweepResult(experiment=experiment.name)
        point_seeds = spawn_rngs(self._seed, len(points))
        for position, (point, point_seed) in enumerate(zip(points, point_seeds)):
            configured = experiment.with_parameters(**dict(point))
            checkpoint_dir = self._checkpoint_dir
            if checkpoint_dir is not None:
                checkpoint_dir = os.path.join(
                    os.fspath(checkpoint_dir), f"point-{position:04d}"
                )
            runner = MonteCarloRunner(
                stopping=self._stopping,
                seed=point_seed,
                executor=self._executor,
                shard_size=self._shard_size,
                checkpoint_dir=checkpoint_dir,
                progress=self._progress,
                aggregation=self._aggregation,
                reservoir_capacity=self._reservoir_capacity,
            )
            result.add(runner.run(configured))
            _LOGGER.info(
                "experiment %s: finished point %s", experiment.name, dict(point)
            )
        return result
