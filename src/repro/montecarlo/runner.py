"""The Monte-Carlo runner: repeated independent trials with seeded streams."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..utils.logging import get_logger
from ..utils.seeding import SeedLike, spawn_rngs
from ..utils.timing import Timer
from ..utils.validation import check_positive_int
from .convergence import FixedBudgetStopping, StoppingRule
from .experiment import Experiment
from .results import SweepResult, TrialResult
from .sweep import ParameterSweep

__all__ = ["MonteCarloRunner", "run_trials"]

_LOGGER = get_logger("montecarlo.runner")


def run_trials(
    experiment: Experiment,
    *,
    repetitions: int = 30,
    seed: SeedLike = None,
) -> TrialResult:
    """Run a fixed number of independent trials of an experiment.

    Thin convenience wrapper over :class:`MonteCarloRunner` for the common
    fixed-budget case.
    """
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(check_positive_int(repetitions, "repetitions")),
        seed=seed,
    )
    return runner.run(experiment)


class MonteCarloRunner:
    """Runs experiments: repeated trials, independent RNG streams, aggregation.

    Parameters
    ----------
    stopping:
        The stopping rule (fixed budget by default: 30 repetitions).
    seed:
        Master seed.  Each trial receives its own generator spawned from this
        seed, so results are reproducible and independent of execution order.
    """

    def __init__(
        self,
        *,
        stopping: StoppingRule | None = None,
        seed: SeedLike = None,
    ) -> None:
        self._stopping = stopping if stopping is not None else FixedBudgetStopping(30)
        self._seed = seed

    @property
    def stopping(self) -> StoppingRule:
        """The stopping rule in use."""
        return self._stopping

    def run(self, experiment: Experiment) -> TrialResult:
        """Run one experiment at its current parameter point."""
        max_reps = self._stopping.max_repetitions
        rngs = spawn_rngs(self._seed, max_reps)
        metrics: dict[str, list[float]] = {}
        repetitions = 0
        with Timer(experiment.name) as timer:
            for rng in rngs:
                trial_metrics = experiment.run_single(rng)
                for key, value in trial_metrics.items():
                    metrics.setdefault(key, []).append(value)
                repetitions += 1
                if (
                    repetitions >= self._stopping.min_repetitions
                    and self._stopping.should_stop(metrics)
                ):
                    break
            else:
                self._stopping.on_budget_exhausted(repetitions)
        _LOGGER.debug(
            "experiment %s: %d repetitions in %s",
            experiment.name,
            repetitions,
            timer,
        )
        return TrialResult(
            experiment=experiment.name,
            parameters=dict(experiment.parameters),
            metrics={key: tuple(values) for key, values in metrics.items()},
            repetitions=repetitions,
        )

    def run_sweep(
        self,
        experiment: Experiment,
        sweep: ParameterSweep | Sequence[Mapping[str, object]],
    ) -> SweepResult:
        """Run the experiment at every parameter point of a sweep.

        Each point gets its own independent master seed derived from the
        runner seed so that adding or removing points does not perturb the
        other points' results.
        """
        points = list(sweep.points()) if isinstance(sweep, ParameterSweep) else list(sweep)
        result = SweepResult(experiment=experiment.name)
        point_seeds = spawn_rngs(self._seed, len(points))
        for point, point_seed in zip(points, point_seeds):
            configured = experiment.with_parameters(**dict(point))
            runner = MonteCarloRunner(stopping=self._stopping, seed=point_seed)
            result.add(runner.run(configured))
            _LOGGER.info(
                "experiment %s: finished point %s", experiment.name, dict(point)
            )
        return result
