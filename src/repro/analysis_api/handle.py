"""The :class:`NetworkAnalysis` handle — the single per-instance compute API.

Every quantity the paper studies on one sampled instance — temporal diameter
(Definition 5 / Theorem 4), eccentricities, reachability fraction, the
``T_reach`` predicate (Definition 6), expansion-process runs (Theorem 3),
Price of Randomness audits (Theorems 7–8) — is a view over the *same*
all-pairs arrival structure produced by one batched
:func:`repro.core.journeys.earliest_arrival_matrix` sweep.  The handle makes
that sharing explicit: construct it once per instance and every quantity is a
cached property or memoized method, so a multi-metric workload costs **one**
sweep instead of one sweep per metric.

>>> from repro import NetworkAnalysis, complete_graph, normalized_urtn
>>> analysis = NetworkAnalysis(normalized_urtn(complete_graph(32, directed=True), seed=0))
>>> analysis.diameter <= 32 and analysis.is_temporally_connected
True

Shared artifacts and what they feed
-----------------------------------
``arrival_matrix()``
    The ``(n, n)`` earliest-arrival matrix — computed at most once, and the
    substrate of everything below.
``eccentricities()`` → ``diameter`` / ``radius``
    Row maxima of the matrix.
``reachability()`` → ``reachable_fraction`` / ``is_temporally_connected`` /
``preserves_reachability()``
    The boolean journey-existence mask (plus one static BFS pass for the
    ``T_reach`` comparison).
``summary``
    The bundled :class:`DistanceSummary` (diameter, radius, average distance,
    reachable fraction).
``distances_from(sources)`` / ``distance(source, target)``
    Row queries, answered from the cached matrix when it exists and from
    memoized single-batch sweeps otherwise.
``departure_matrix()``
    The ``(n, n)`` latest-departure matrix — one batched *reverse* sweep
    over the target-major CSR layout; independent of the forward cache.
``departures_to(targets)`` / ``distances_to(targets)`` /
``reverse_reachable_set(target)``
    Target-side queries, answered from the cached departure matrix when it
    exists and from memoized single-target reverse sweeps otherwise — a
    single-target question never pays for an all-pairs forward pass.
``closeness()`` / ``harmonic_closeness()`` / ``influence_counts()`` /
``reach_counts()``
    The temporal-centrality family, all derived together in one pass over
    the arrival structure.
``expansion(source, target)`` / ``por_audit()``
    Algorithm 1 traces and Theorem 7/8 audits, memoized per argument set.

Derived analyses
----------------
:meth:`NetworkAnalysis.restricted_to_max_label` returns a child handle over
the labels-``≤ k`` subnetwork (the Theorem 5 construction).  When the parent's
arrival matrix is already cached the child's is *derived* without a sweep:
every label on a foremost journey is bounded by its arrival time (labels
strictly increase), so ``δ_k(s, t) = δ(s, t)`` when ``δ(s, t) ≤ k`` and the
pair is unreachable in the restriction otherwise.

Instrumentation
---------------
Every artifact access reports to :mod:`repro.telemetry` when a recorder is
active: an actual computation emits the ``analysis.compute.<artifact>``
counter plus the ``analysis.compute_ms.<artifact>`` timing, and a cache hit
emits ``analysis.cache_hit.<artifact>``.  :func:`compute_events` opens a
*scoped* probe over those events —

>>> from repro import NetworkAnalysis, complete_graph, normalized_urtn
>>> from repro.analysis_api import compute_events
>>> handle = NetworkAnalysis(normalized_urtn(complete_graph(8, directed=True), seed=0))
>>> with compute_events() as events:
...     _ = handle.summary
...     _ = handle.summary
>>> events.counts["arrival_matrix"], events.hits["summary"]
(1, 1)

— and composes with any outer :func:`repro.telemetry.session`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..types import NEVER, UNREACHABLE, as_vertex_array
from ..core import kernels
from ..core.journeys import earliest_arrival_matrix, earliest_arrival_times
from ..core.reverse_journeys import latest_departure_matrix, latest_departure_times
from ..core.temporal_graph import TemporalGraph
from ..telemetry import TelemetryRecorder, attach as _telemetry_attach
from ..telemetry import active as _telemetry_active

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.expansion import ExpansionParameters, ExpansionResult

__all__ = [
    "ComputeEvents",
    "DistanceSummary",
    "NetworkAnalysis",
    "PorAudit",
    "compute_events",
]

#: Artifact names reported to the telemetry probes, in dependency order.
ARTIFACTS = (
    "arrival_matrix",
    "eccentricities",
    "reachability",
    "summary",
    "streamed_summary",
    "static_reachability",
    "source_rows",
    "departure_matrix",
    "target_columns",
    "centrality",
    "expansion",
    "por_audit",
)


class ComputeEvents:
    """Live view of the artifact cache traffic inside a :func:`compute_events` scope.

    ``counts`` maps artifact name → number of *actual computations*;
    ``hits`` maps artifact name → number of cache hits.  Both views are
    dictionaries rebuilt from the underlying recorder on access, so they can
    be inspected while the scope is still open.
    """

    __slots__ = ("_recorder",)

    def __init__(self, recorder: TelemetryRecorder) -> None:
        self._recorder = recorder

    @property
    def recorder(self) -> TelemetryRecorder:
        """The underlying scoped :class:`~repro.telemetry.TelemetryRecorder`."""
        return self._recorder

    def _by_prefix(self, prefix: str) -> dict[str, int]:
        return {
            name[len(prefix):]: value
            for name, value in self._recorder.counters.items()
            if name.startswith(prefix)
        }

    @property
    def counts(self) -> dict[str, int]:
        """Artifact name → times it was actually computed in this scope."""
        return self._by_prefix("analysis.compute.")

    @property
    def hits(self) -> dict[str, int]:
        """Artifact name → times it was served from cache in this scope."""
        return self._by_prefix("analysis.cache_hit.")

    def __repr__(self) -> str:
        return f"ComputeEvents(counts={self.counts!r}, hits={self.hits!r})"


@contextmanager
def compute_events() -> Iterator[ComputeEvents]:
    """Scoped probe over :class:`NetworkAnalysis` artifact computations.

    Attaches a private telemetry recorder for the duration of the ``with``
    block and yields a :class:`ComputeEvents` view of it.  The probe is
    scoped (no global state to restore), nests, and composes with an outer
    :func:`repro.telemetry.session` — both see the same events.

    >>> from repro import NetworkAnalysis, complete_graph, normalized_urtn
    >>> handle = NetworkAnalysis(normalized_urtn(complete_graph(8, directed=True), seed=0))
    >>> with compute_events() as events:
    ...     _ = handle.diameter
    >>> events.counts["arrival_matrix"]
    1
    """
    recorder = TelemetryRecorder()
    with _telemetry_attach(recorder):
        yield ComputeEvents(recorder)


@dataclass(frozen=True, slots=True)
class DistanceSummary:
    """All-pairs distance statistics derived from one batched sweep.

    Attributes
    ----------
    diameter:
        ``max_{s,t} δ(s, t)``; :data:`~repro.types.UNREACHABLE` if some
        ordered pair has no journey.
    radius:
        The minimum temporal eccentricity over all vertices.
    average_distance:
        Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey, or ``nan``
        when no such pair exists.
    reachable_fraction:
        Fraction of ordered pairs ``s ≠ t`` connected by a journey.
    """

    diameter: int
    radius: int
    average_distance: float
    reachable_fraction: float


@dataclass(frozen=True, slots=True)
class PorAudit:
    """One Price-of-Randomness audit of an instance (Definitions 7–8).

    Attributes
    ----------
    r:
        Labels per edge the audit assumes (defaults to the instance's maximum
        per-edge label count).
    total_labels:
        The paper's cost measure ``Σ_e |L_e|`` of this instance.
    opt:
        The ``OPT`` value the ratio divides by (the constructive upper bound
        by default, making ``measured_por`` a conservative lower bound).
    static_diameter:
        Diameter ``d(G)`` of the underlying graph.
    preserves_reachability:
        Whether this instance satisfies ``T_reach`` (Definition 6).
    measured_por:
        ``m·r / OPT`` (Definition 8).
    theorem8_bound:
        The Theorem 8 upper bound ``2·d(G)·log n · m / (n − 1)``.
    """

    r: int
    total_labels: int
    opt: int
    static_diameter: int
    preserves_reachability: bool
    measured_por: float
    theorem8_bound: float


def _read_only(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class NetworkAnalysis:
    """Lazy, memoized analysis session over one :class:`TemporalGraph`.

    The handle never mutates the network (label data is immutable after
    construction), so its caches cannot go stale; :meth:`invalidate` exists
    for callers who want to force recomputation anyway.  Arrays returned by
    the artifact accessors are read-only views of the shared caches.

    ``kernel_backend`` pins every sweep the handle runs to one named
    :mod:`repro.core.kernels` backend (strict: an unusable name raises at the
    first sweep); the default ``None`` uses the registry's ambient selection.
    """

    __slots__ = (
        "_network",
        "_kernel_backend",
        "_matrix",
        "_ecc",
        "_reach",
        "_summary",
        "_streamed",
        "_preserves",
        "_source_rows",
        "_rev_matrix",
        "_target_cols",
        "_centrality",
        "_expansions",
        "_por_audits",
    )

    def __init__(
        self, network: TemporalGraph, *, kernel_backend: str | None = None
    ) -> None:
        if not isinstance(network, TemporalGraph):
            raise ConfigurationError(
                f"NetworkAnalysis wraps a TemporalGraph, got {type(network).__name__}"
            )
        if kernel_backend is not None:
            # Fail on typos at construction time; availability (warm-up) is
            # still checked strictly at the first sweep.
            kernels.get_backend(kernel_backend)
        self._network = network
        self._kernel_backend = kernel_backend
        self.invalidate()

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cached artifact so the next access recomputes it."""
        self._matrix: np.ndarray | None = None
        self._ecc: np.ndarray | None = None
        self._reach: np.ndarray | None = None
        self._summary: DistanceSummary | None = None
        self._streamed: dict[tuple, DistanceSummary] = {}
        self._preserves: bool | None = None
        self._source_rows: dict[int, np.ndarray] = {}
        self._rev_matrix: np.ndarray | None = None
        self._target_cols: dict[int, np.ndarray] = {}
        self._centrality: dict[str, np.ndarray] | None = None
        self._expansions: dict[tuple, "ExpansionResult"] = {}
        self._por_audits: dict[tuple, PorAudit] = {}

    def _computed(self, artifact: str, start: float) -> None:
        """Report one actual artifact computation to the telemetry recorders.

        ``start`` is the ``time.perf_counter()`` reading taken just before the
        computation; its cost is negligible next to any artifact compute, so
        the timestamp is taken unconditionally and only turned into a timing
        record when recorders are active.
        """
        recs = _telemetry_active()
        if recs:
            duration_ms = (time.perf_counter() - start) * 1e3
            for rec in recs:
                rec.counter(f"analysis.compute.{artifact}")
                rec.observe_ms(f"analysis.compute_ms.{artifact}", duration_ms)

    def _cache_hit(self, artifact: str) -> None:
        for rec in _telemetry_active():
            rec.counter(f"analysis.cache_hit.{artifact}")

    # ------------------------------------------------------------------ #
    # shared artifacts
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> TemporalGraph:
        """The temporal network this analysis session wraps."""
        return self._network

    @property
    def n(self) -> int:
        """Number of vertices of the underlying graph."""
        return self._network.n

    def arrival_matrix(self) -> np.ndarray:
        """The full ``(n, n)`` earliest-arrival matrix (read-only, cached).

        Entry ``[s, v]`` is δ(s, v): 0 on the diagonal,
        :data:`~repro.types.UNREACHABLE` when no journey exists.  Computed by
        one batched sweep on first access; every other all-pairs quantity of
        the handle is a reduction of this array.
        """
        if self._matrix is None:
            start = time.perf_counter()
            self._matrix = earliest_arrival_matrix(
                self._network, backend=self._kernel_backend
            )
            self._computed("arrival_matrix", start)
        else:
            self._cache_hit("arrival_matrix")
        return _read_only(self._matrix)

    def eccentricities(self) -> np.ndarray:
        """Temporal eccentricity of every vertex: ``max_v δ(s, v)`` (read-only).

        The maximum includes unreachable targets, so a vertex that cannot
        reach the whole graph has eccentricity
        :data:`~repro.types.UNREACHABLE`.  The diagonal entries are 0 — the
        minimum possible value, since every off-diagonal arrival is a label
        ``≥ 1`` — so the row maximum needs no diagonal masking (and no O(n²)
        matrix copy).
        """
        if self._ecc is None:
            start = time.perf_counter()
            if self.n <= 1:
                self._ecc = np.zeros(self.n, dtype=np.int64)
            else:
                self._ecc = np.asarray(self.arrival_matrix().max(axis=1))
            self._computed("eccentricities", start)
        else:
            self._cache_hit("eccentricities")
        return _read_only(self._ecc)

    def reachability(self) -> np.ndarray:
        """Boolean mask ``R[s, v]`` = "a journey from ``s`` to ``v`` exists".

        The diagonal is ``True`` (the empty journey).  Read-only, cached.
        """
        if self._reach is None:
            start = time.perf_counter()
            self._reach = self.arrival_matrix() < UNREACHABLE
            self._computed("reachability", start)
        else:
            self._cache_hit("reachability")
        return _read_only(self._reach)

    @property
    def summary(self) -> DistanceSummary:
        """The bundled all-pairs statistics, from one shared sweep (cached)."""
        if self._summary is not None:
            self._cache_hit("summary")
            return self._summary
        start = time.perf_counter()
        n = self.n
        if n <= 1:
            self._summary = DistanceSummary(
                diameter=0, radius=0, average_distance=0.0, reachable_fraction=1.0
            )
        else:
            matrix = self.arrival_matrix()
            ecc = self.eccentricities()
            reach_mask = self.reachability().copy()
            np.fill_diagonal(reach_mask, False)
            reachable_pairs = int(reach_mask.sum())
            if reachable_pairs:
                average = float(matrix[reach_mask].mean())
            else:
                average = float("nan")
            self._summary = DistanceSummary(
                diameter=int(ecc.max()),
                radius=int(ecc.min()),
                average_distance=average,
                reachable_fraction=reachable_pairs / float(n * (n - 1)),
            )
        self._computed("summary", start)
        return self._summary

    def streamed_distance_summary(
        self, *, tile_size: int | None = None, direction: str = "forward"
    ) -> DistanceSummary:
        """:attr:`summary` in ``O(n · tile_size)`` memory, bit-identical.

        Runs the out-of-core blocked sweep engine
        (:mod:`repro.core.blocked_sweeps`): the sweep is tiled over blocks of
        ``tile_size`` sources (``direction="forward"``) or targets
        (``"reverse"``), each tile runs through the handle's pinned kernel
        backend, and the tile's contribution is streamed into exact mergeable
        accumulators — the dense ``(n, n)`` matrix is never materialized and
        the handle's artifact cache is left untouched.  The result is cached
        per ``(direction, tile_size)``.

        ``tile_size=None`` uses the ambient default
        (:func:`repro.core.blocked_sweeps.default_tile_size`, the CLI's
        ``--tile-size`` flag), else
        :data:`~repro.core.blocked_sweeps.DEFAULT_TILE_SIZE`.
        """
        from ..core.blocked_sweeps import blocked_sweep_summary

        key = (
            str(direction),
            None if tile_size is None else int(tile_size),
        )
        cached = self._streamed.get(key)
        if cached is not None:
            self._cache_hit("streamed_summary")
            return cached
        start = time.perf_counter()
        result = blocked_sweep_summary(
            self._network,
            tile_size=tile_size,
            direction=direction,
            backend=self._kernel_backend,
        )
        self._streamed[key] = result.summary
        self._computed("streamed_summary", start)
        return result.summary

    def streamed_reachable_fraction(
        self, *, tile_size: int | None = None, direction: str = "forward"
    ) -> float:
        """:attr:`reachable_fraction` in ``O(n · tile_size)`` memory.

        Bit-identical to the dense value; see
        :meth:`streamed_distance_summary` for the tiling model.
        """
        return self.streamed_distance_summary(
            tile_size=tile_size, direction=direction
        ).reachable_fraction

    # ------------------------------------------------------------------ #
    # derived scalar views
    # ------------------------------------------------------------------ #
    @property
    def diameter(self) -> int:
        """The temporal diameter ``max_{s,t} δ(s, t)`` of this instance.

        Definition 5 defines the Temporal Diameter of the *random* clique as
        the expectation of this quantity; the Monte-Carlo layer averages this
        per-instance value.  Returns :data:`~repro.types.UNREACHABLE` when
        some ordered pair has no journey.
        """
        return self.summary.diameter

    @property
    def radius(self) -> int:
        """The minimum temporal eccentricity over all vertices."""
        return self.summary.radius

    @property
    def average_distance(self) -> float:
        """Mean δ(s, t) over ordered pairs ``s ≠ t`` with a journey (else nan)."""
        return self.summary.average_distance

    @property
    def reachable_fraction(self) -> float:
        """Fraction of ordered pairs ``s ≠ t`` connected by a journey."""
        return self.summary.reachable_fraction

    @property
    def is_temporally_connected(self) -> bool:
        """Whether every ordered pair of vertices is connected by a journey."""
        if self.n <= 1:
            return True
        return self.summary.diameter < UNREACHABLE

    # ------------------------------------------------------------------ #
    # row queries
    # ------------------------------------------------------------------ #
    def distances_from(self, sources: Sequence[int] | None = None) -> np.ndarray:
        """Temporal distances δ(s, v) for the requested sources (read-only).

        ``sources=None`` returns the full cached all-pairs matrix.  With an
        explicit source list the rows are sliced out of the cached matrix when
        it exists; otherwise one batched sweep over just those sources is run
        (and its rows memoized), so a narrow query never pays for all ``n``
        sources.
        """
        if sources is None:
            return self.arrival_matrix()
        n = self.n
        source_arr = as_vertex_array(sources, n)
        if self._matrix is not None:
            self._cache_hit("source_rows")
            return _read_only(self._matrix[source_arr])
        wanted = dict.fromkeys(int(s) for s in source_arr)
        missing = [s for s in wanted if s not in self._source_rows]
        if missing:
            start = time.perf_counter()
            rows = earliest_arrival_matrix(
                self._network, missing, backend=self._kernel_backend
            )
            for index, source in enumerate(missing):
                self._source_rows[source] = rows[index]
            self._computed("source_rows", start)
        elif wanted:
            self._cache_hit("source_rows")
        if source_arr.size == 0:
            return np.empty((0, n), dtype=np.int64)
        stacked = np.stack(
            [self._source_rows[int(s)] for s in source_arr], axis=0
        )
        return _read_only(stacked)

    def distance(self, source: int, target: int) -> int:
        """Temporal distance δ(source, target) (:data:`~repro.types.UNREACHABLE`
        when no journey exists).

        Served from the cached all-pairs matrix when available; otherwise one
        memoized single-source sweep.
        """
        n = self.n
        target = int(as_vertex_array([target], n)[0])
        source = int(as_vertex_array([source], n)[0])
        if self._matrix is not None:
            self._cache_hit("source_rows")
            return int(self._matrix[source, target])
        row = self._source_rows.get(source)
        if row is None:
            start = time.perf_counter()
            row = earliest_arrival_times(
                self._network, source, backend=self._kernel_backend
            )
            self._source_rows[source] = row
            self._computed("source_rows", start)
        else:
            self._cache_hit("source_rows")
        return int(row[target])

    # ------------------------------------------------------------------ #
    # target-side queries (reverse sweeps)
    # ------------------------------------------------------------------ #
    def departure_matrix(self) -> np.ndarray:
        """The full ``(n, n)`` latest-departure matrix (read-only, cached).

        Entry ``[t, v]`` is the latest label a journey ``v → t`` can start
        with and still arrive by the lifetime (``lifetime + 1`` on the
        diagonal, :data:`~repro.types.NEVER` when no journey exists).
        Computed by one batched *reverse* sweep over the target-major CSR
        layout on first access; entirely independent of the forward caches.
        """
        if self._rev_matrix is None:
            start = time.perf_counter()
            self._rev_matrix = latest_departure_matrix(
                self._network, backend=self._kernel_backend
            )
            self._computed("departure_matrix", start)
        else:
            self._cache_hit("departure_matrix")
        return _read_only(self._rev_matrix)

    def departures_to(self, targets: Sequence[int] | None = None) -> np.ndarray:
        """Latest departures towards the requested targets (read-only).

        ``targets=None`` returns the full cached departure matrix.  With an
        explicit target list the rows are sliced out of the cached matrix when
        it exists; otherwise one batched reverse sweep over just those targets
        is run (and its rows memoized), so a narrow target-side query never
        pays for all ``n`` targets — and never triggers a forward sweep.
        """
        if targets is None:
            return self.departure_matrix()
        n = self.n
        target_arr = as_vertex_array(targets, n)
        if self._rev_matrix is not None:
            self._cache_hit("target_columns")
            return _read_only(self._rev_matrix[target_arr])
        wanted = dict.fromkeys(int(t) for t in target_arr)
        missing = [t for t in wanted if t not in self._target_cols]
        if missing:
            start = time.perf_counter()
            rows = latest_departure_matrix(
                self._network, missing, backend=self._kernel_backend
            )
            for index, target in enumerate(missing):
                self._target_cols[target] = rows[index]
            self._computed("target_columns", start)
        elif wanted:
            self._cache_hit("target_columns")
        if target_arr.size == 0:
            return np.empty((0, n), dtype=np.int64)
        stacked = np.stack(
            [self._target_cols[int(t)] for t in target_arr], axis=0
        )
        return _read_only(stacked)

    def latest_departure(self, source: int, target: int) -> int:
        """Latest departure of a journey ``source → target``
        (:data:`~repro.types.NEVER` when no journey exists).

        Served from the cached departure matrix when available; otherwise one
        memoized single-target reverse sweep.
        """
        n = self.n
        source = int(as_vertex_array([source], n)[0])
        target = int(as_vertex_array([target], n)[0])
        if self._rev_matrix is not None:
            self._cache_hit("target_columns")
            return int(self._rev_matrix[target, source])
        row = self._target_cols.get(target)
        if row is None:
            start = time.perf_counter()
            row = latest_departure_times(
                self._network, target, backend=self._kernel_backend
            )
            self._target_cols[target] = row
            self._computed("target_columns", start)
        else:
            self._cache_hit("target_columns")
        return int(row[source])

    def distances_to(self, targets: Sequence[int] | None = None) -> np.ndarray:
        """Reverse temporal distances to the requested targets (read-only).

        Row ``i``, entry ``v`` is ``lifetime + 1 − departure(v, targets[i])``
        — how close to the deadline a journey from ``v`` can leave and still
        make it; 0 on the target itself, :data:`~repro.types.UNREACHABLE`
        when no journey exists.  Derived from :meth:`departures_to` without
        any extra sweep, so a single-target call costs exactly one reverse
        sweep and no forward pass.
        """
        departures = self.departures_to(targets)
        horizon = np.int64(self._network.lifetime + 1)
        return _read_only(
            np.where(departures == NEVER, UNREACHABLE, horizon - departures)
        )

    def reverse_reachable_set(self, target: int) -> np.ndarray:
        """Vertices with a journey *to* ``target`` (including the target).

        One memoized reverse sweep — the "who can influence ``target``" query
        never pays for an all-pairs forward pass.
        """
        departures = self.departures_to([int(target)])[0]
        return np.flatnonzero(departures > NEVER)

    # ------------------------------------------------------------------ #
    # temporal centrality (one shared pass over the arrival structure)
    # ------------------------------------------------------------------ #
    def _centrality_arrays(self) -> dict[str, np.ndarray]:
        if self._centrality is not None:
            self._cache_hit("centrality")
            return self._centrality
        start = time.perf_counter()
        n = self.n
        if n <= 1:
            self._centrality = {
                "closeness": np.zeros(n, dtype=np.float64),
                "harmonic": np.zeros(n, dtype=np.float64),
                "influence": np.zeros(n, dtype=np.int64),
                "reach": np.zeros(n, dtype=np.int64),
            }
        else:
            matrix = self.arrival_matrix()
            off_diagonal = self.reachability().copy()
            np.fill_diagonal(off_diagonal, False)
            counts_out = off_diagonal.sum(axis=1)
            distance_sums = np.where(off_diagonal, matrix, 0).sum(axis=1)
            closeness = np.where(
                distance_sums > 0,
                counts_out / np.maximum(distance_sums, 1),
                0.0,
            )
            inverse = np.zeros((n, n), dtype=np.float64)
            inverse[off_diagonal] = 1.0 / matrix[off_diagonal]
            self._centrality = {
                "closeness": closeness.astype(np.float64),
                "harmonic": inverse.sum(axis=1) / float(n - 1),
                "influence": counts_out.astype(np.int64),
                "reach": off_diagonal.sum(axis=0).astype(np.int64),
            }
        self._computed("centrality", start)
        return self._centrality

    def closeness(self) -> np.ndarray:
        """Temporal closeness of every vertex (read-only ``float64``).

        The reciprocal of the mean temporal distance from each vertex to the
        vertices it can reach; 0.0 for vertices that reach nothing.
        """
        return _read_only(self._centrality_arrays()["closeness"])

    def harmonic_closeness(self) -> np.ndarray:
        """Temporal harmonic closeness of every vertex (read-only, in [0, 1]).

        ``H(u) = (1/(n−1)) Σ_{t ≠ u} 1/δ(u, t)`` with ``1/∞ = 0`` for
        unreachable targets.
        """
        return _read_only(self._centrality_arrays()["harmonic"])

    def influence_counts(self) -> np.ndarray:
        """Number of vertices ``t ≠ u`` temporally reachable from each ``u``."""
        return _read_only(self._centrality_arrays()["influence"])

    def reach_counts(self) -> np.ndarray:
        """Number of vertices ``s ≠ v`` with a journey to each ``v``."""
        return _read_only(self._centrality_arrays()["reach"])

    # ------------------------------------------------------------------ #
    # reachability preservation (Definition 6)
    # ------------------------------------------------------------------ #
    def preserves_reachability(self) -> bool:
        """The paper's ``T_reach`` property (Definition 6), memoized.

        True when, for every ordered pair ``(u, v)``, a journey exists in
        ``(G, L)`` exactly when a path exists in the underlying graph ``G`` —
        i.e. the temporal reachability mask equals the static one.  (A journey
        can only use labelled edges of ``G``, so a journey without a path
        would mean label data inconsistent with the graph, which the
        constructor forbids; the comparison checks both directions anyway.)
        """
        if self._preserves is None:
            start = time.perf_counter()
            n = self.n
            if n <= 1:
                self._preserves = True
            else:
                self._preserves = bool(
                    np.array_equal(
                        self.reachability(), self._static_reachability_matrix()
                    )
                )
            self._computed("static_reachability", start)
        else:
            self._cache_hit("static_reachability")
        return self._preserves

    def _static_reachability_matrix(self) -> np.ndarray:
        """Boolean closure ``R[s, v]`` = "a static path from ``s`` to ``v``".

        All sources are advanced together: one dense adjacency matrix and one
        matmul per BFS level (float32, so the product runs on BLAS instead of
        NumPy's scalar integer loops), instead of ``n`` per-source
        Python-level BFS runs.  Levels are bounded by the static diameter, so
        the clique substrates of the Monte-Carlo workloads finish in one step.
        """
        graph = self._network.graph
        n = graph.n
        adjacency = np.zeros((n, n), dtype=np.float32)
        adjacency[graph.arc_tails, graph.arc_heads] = 1.0
        reach = np.eye(n, dtype=bool)
        frontier = reach
        while True:
            new = (frontier.astype(np.float32) @ adjacency > 0.0) & ~reach
            if not new.any():
                return reach
            reach |= new
            frontier = new

    # ------------------------------------------------------------------ #
    # expansion process (Algorithm 1) and PoR audits (Theorems 7–8)
    # ------------------------------------------------------------------ #
    def expansion(
        self,
        source: int,
        target: int,
        parameters: "ExpansionParameters | None" = None,
    ) -> "ExpansionResult":
        """Run Algorithm 1 between ``source`` and ``target`` (memoized).

        Repeated calls with the same arguments return the cached
        :class:`~repro.core.expansion.ExpansionResult` (the algorithm is
        deterministic given the instance), so report builders can re-read the
        layer traces for free.
        """
        from ..core.expansion import expansion_process

        key = (int(source), int(target), parameters)
        if key not in self._expansions:
            start = time.perf_counter()
            self._expansions[key] = expansion_process(
                self._network, int(source), int(target), parameters
            )
            self._computed("expansion", start)
        else:
            self._cache_hit("expansion")
        return self._expansions[key]

    def por_audit(self, r: int | None = None, *, opt: int | None = None) -> PorAudit:
        """Price-of-Randomness audit of this instance (memoized per arguments).

        Parameters
        ----------
        r:
            Labels per edge to charge the random assignment for; defaults to
            the instance's maximum per-edge label count.
        opt:
            The ``OPT`` denominator; defaults to the constructive upper bound
            :func:`repro.core.price_of_randomness.opt_labels_upper_bound`,
            which makes ``measured_por`` a conservative lower bound on the
            true PoR.

        Raises
        ------
        repro.exceptions.GraphError
            If the underlying graph is disconnected (OPT is undefined).
        """
        key = (r, opt)
        if key in self._por_audits:
            self._cache_hit("por_audit")
            return self._por_audits[key]

        from ..core.price_of_randomness import (
            opt_labels_upper_bound,
            por_upper_bound_theorem8,
            price_of_randomness,
        )
        from ..graphs.properties import diameter as static_diameter

        start = time.perf_counter()
        network = self._network
        if r is None:
            counts = network.label_count_per_edge()
            resolved_r = int(counts.max()) if counts.size else 0
        else:
            resolved_r = int(r)
        if resolved_r < 1:
            raise ConfigurationError(
                "por_audit needs at least one label per edge (r >= 1); "
                "this instance has none and no explicit r was given"
            )
        graph = network.graph
        opt_value = int(opt) if opt is not None else opt_labels_upper_bound(graph)
        d = static_diameter(graph)
        self._por_audits[key] = PorAudit(
            r=resolved_r,
            total_labels=network.total_labels,
            opt=opt_value,
            static_diameter=d,
            preserves_reachability=self.preserves_reachability(),
            measured_por=price_of_randomness(graph, resolved_r, opt=opt_value),
            theorem8_bound=por_upper_bound_theorem8(network.n, network.m, d),
        )
        self._computed("por_audit", start)
        return self._por_audits[key]

    # ------------------------------------------------------------------ #
    # derived analyses
    # ------------------------------------------------------------------ #
    def restricted_to_max_label(self, max_label: int) -> "NetworkAnalysis":
        """Analysis of the labels-``≤ max_label`` subnetwork (Theorem 5).

        When this handle's arrival matrix is already cached the child's is
        derived in O(n²) without a sweep: labels along a journey strictly
        increase, so every label on a foremost journey is at most its arrival
        time — hence ``δ_k(s, t) = δ(s, t)`` whenever ``δ(s, t) ≤ k``, and
        the pair is unreachable in the restriction otherwise.
        """
        child = NetworkAnalysis(
            self._network.restricted_to_max_label(max_label),
            kernel_backend=self._kernel_backend,
        )
        if self._matrix is not None:
            child._matrix = np.where(
                self._matrix <= int(max_label), self._matrix, UNREACHABLE
            )
        return child

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        cached = [
            name
            for name, value in (
                ("arrival_matrix", self._matrix),
                ("eccentricities", self._ecc),
                ("reachability", self._reach),
                ("summary", self._summary),
                ("static_reachability", self._preserves),
                ("departure_matrix", self._rev_matrix),
                ("centrality", self._centrality),
            )
            if value is not None
        ]
        return (
            f"NetworkAnalysis(n={self.n}, lifetime={self._network.lifetime}, "
            f"cached={cached})"
        )
