"""The public per-instance compute API: the :class:`NetworkAnalysis` handle.

This package is the one entry point for computing quantities of a single
temporal-network instance.  Construct a :class:`NetworkAnalysis` from a
:class:`~repro.core.temporal_graph.TemporalGraph` and read any derived
quantity — the shared artifacts (arrival matrix, eccentricities, reachability
mask, distance summary, expansion traces, PoR audits) are computed lazily and
memoized, so however many views you read, each underlying sweep runs at most
once.

The historical free functions (``temporal_diameter``,
``temporal_distance_summary``, ``is_temporally_connected``, …) remain as
thin one-line delegates that construct a throwaway handle, so existing code
keeps working bit-for-bit; new code — and anything reading more than one
quantity per instance — should hold a handle.  ``docs/api.md`` documents the
full surface and the migration mapping.

Cache behaviour is observable: :func:`compute_events` opens a scoped probe
over artifact computations and cache hits (built on :mod:`repro.telemetry`).
"""

from .handle import (
    ComputeEvents,
    DistanceSummary,
    NetworkAnalysis,
    PorAudit,
    compute_events,
)

__all__ = [
    "ComputeEvents",
    "DistanceSummary",
    "NetworkAnalysis",
    "PorAudit",
    "compute_events",
]
