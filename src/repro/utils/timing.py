"""Minimal wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration in a human-friendly unit (ns/µs/ms/s/min)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


@dataclass
class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    label: str = ""
    _start: Optional[float] = field(default=None, repr=False)
    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed time in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    def __str__(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}{format_duration(self.elapsed)}"
