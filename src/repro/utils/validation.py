"""Argument validation helpers.

These helpers raise :class:`ValueError`/:class:`TypeError` with consistent
messages so that the public API surfaces clear errors instead of cryptic NumPy
failures deep inside vectorised kernels.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any

import numpy as np

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_fraction",
    "check_square_matrix",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as ``int``.

    Parameters
    ----------
    value:
        Value supplied by the caller.
    name:
        Parameter name used in the error message.
    """
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a probability in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_fraction(value: Any, name: str) -> float:
    """Validate that ``value`` is a strictly positive finite real number."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_square_matrix(matrix: Any, name: str) -> np.ndarray:
    """Validate that ``matrix`` is a square two-dimensional array."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(
            f"{name} must be a square 2-D array, got shape {arr.shape!r}"
        )
    return arr
