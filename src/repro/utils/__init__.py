"""Shared utilities: validation, seeding, fingerprinting, timing and logging."""

from .validation import (
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_square_matrix,
)
from .fingerprint import canonical_json, fingerprint, graph_fingerprint
from .seeding import SeedLike, normalize_rng, spawn_rngs
from .timing import Timer, format_duration
from .logging import get_logger

__all__ = [
    "check_fraction",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability",
    "check_square_matrix",
    "canonical_json",
    "fingerprint",
    "graph_fingerprint",
    "SeedLike",
    "normalize_rng",
    "spawn_rngs",
    "Timer",
    "format_duration",
    "get_logger",
]
