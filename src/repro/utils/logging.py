"""Library logging configuration.

The library never configures the root logger; it only attaches a
:class:`logging.NullHandler` to its own namespace so applications embedding it
stay in control of log output.  :func:`get_logger` is the single entry point
used by library modules.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, optionally for a sub-namespace.

    Parameters
    ----------
    name:
        Dotted sub-namespace (e.g. ``"montecarlo.runner"``).  ``None`` returns
        the package-level logger.
    """
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(f"{_ROOT_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the library logger.

    Intended for the example scripts and the experiment CLI, not for library
    code.  Calling it repeatedly does not duplicate handlers.
    """
    logger = get_logger()
    has_stream = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in logger.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger
