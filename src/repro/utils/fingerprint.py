"""Canonical fingerprints shared by checkpoints, the artifact store and caches.

Three layers of the repo need a stable identity for "the same computation":

* the engine's :class:`~repro.engine.checkpoint.CheckpointStore` must refuse
  to resume a run whose budget/seed/experiment differ from the shards on
  disk;
* the service's :class:`~repro.service.store.ArtifactStore` keys persisted
  results by run fingerprint so a repeated submission is a row lookup instead
  of a recompute;
* the service's :class:`~repro.service.cache.AnalysisCache` keys live
  :class:`~repro.analysis_api.NetworkAnalysis` handles by the *instance* they
  wrap so repeated queries hit memoized artifacts.

This module is the single home of that identity logic: canonical JSON (sorted
keys, compact separators — so two structurally equal payloads serialise to
the same bytes regardless of insertion order) hashed with ``blake2b``, plus
the exact legacy digest formats the pre-existing checkpoint metadata used
(kept byte-identical so old checkpoint directories stay resumable —
``tests/test_fingerprint.py`` pins this).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.temporal_graph import TemporalGraph

__all__ = [
    "canonical_json",
    "fingerprint",
    "parameters_digest",
    "seed_fingerprint",
    "checkpoint_fingerprint",
    "graph_fingerprint",
]

#: blake2b digest size (bytes) of every hex fingerprint this module mints.
DIGEST_SIZE = 16


def _jsonable(value: Any) -> Any:
    """Coerce the few non-JSON types fingerprint payloads legitimately carry."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(
        f"object of type {type(value).__name__} is not fingerprintable: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to canonical JSON.

    Keys are sorted and separators are compact, so two payloads that compare
    equal as nested dicts/lists produce identical bytes no matter how they
    were built.  Tuples serialise as lists; numpy scalars as their Python
    equivalents; anything else non-JSON raises :class:`TypeError` rather than
    silently hashing a ``repr``.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
        default=_jsonable,
    )


def fingerprint(payload: Any) -> str:
    """Hex blake2b digest of the canonical JSON form of ``payload``."""
    encoded = canonical_json(payload).encode("utf-8")
    return hashlib.blake2b(encoded, digest_size=DIGEST_SIZE).hexdigest()


# --------------------------------------------------------------------- #
# the engine's checkpoint fingerprint (legacy formats, kept byte-identical)
# --------------------------------------------------------------------- #
def parameters_digest(parameters: Mapping[str, object]) -> str:
    """Stable, human-readable identity of a parameter point.

    Part of the checkpoint fingerprint: two runs of the same-named experiment
    at different parameter points must never share a checkpoint.  The format
    predates this module and is pinned — changing it would orphan every
    existing checkpoint directory.
    """
    return repr(sorted((str(key), repr(value)) for key, value in parameters.items()))


def seed_fingerprint(entropy: object, spawn_key: tuple[int, ...]) -> str:
    """Stable identifier of a master seed (entropy + spawn key).

    Same byte-for-byte format :meth:`repro.engine.sharding.SeedPlan.fingerprint`
    has always written into checkpoint metadata.
    """
    return f"entropy={entropy!r};spawn_key={spawn_key!r}"


def checkpoint_fingerprint(
    *,
    experiment: str,
    parameters: Mapping[str, object],
    budget: int,
    shard_size: int,
    num_shards: int,
    collect_values: bool,
    reservoir_capacity: int,
    seed: str,
) -> dict[str, Any]:
    """The engine run identity the checkpoint store verifies on resume.

    Key order matters: ``meta.json`` is written with insertion order
    preserved, and existing checkpoint directories must keep verifying.
    ``seed`` is a pre-formatted :func:`seed_fingerprint` string.
    """
    return {
        "experiment": experiment,
        "parameters": parameters_digest(parameters),
        "budget": budget,
        "shard_size": shard_size,
        "num_shards": num_shards,
        "collect_values": collect_values,
        "reservoir_capacity": reservoir_capacity,
        "seed": seed,
    }


# --------------------------------------------------------------------- #
# temporal-network instance fingerprints (the analysis-cache key)
# --------------------------------------------------------------------- #
def graph_fingerprint(network: "TemporalGraph") -> str:
    """Canonical fingerprint of one temporal-network instance.

    Hashes the structural identity a sweep actually consumes — vertex/edge
    counts, directedness, lifetime and the flat time-arc arrays — so two
    instances built through different constructors (mapping vs. label matrix)
    but describing the same network fingerprint identically, while any
    differing label lands a different digest.
    """
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    header = canonical_json(
        {
            "kind": "temporal-graph-v1",
            "n": network.n,
            "m": network.m,
            "directed": network.directed,
            "lifetime": network.lifetime,
            "num_time_arcs": network.num_time_arcs,
        }
    )
    digest.update(header.encode("utf-8"))
    for array in (
        network.time_arc_tails,
        network.time_arc_heads,
        network.time_arc_labels,
    ):
        digest.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
    return digest.hexdigest()
