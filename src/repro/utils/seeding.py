"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, a :class:`numpy.random.SeedSequence`
or an existing :class:`numpy.random.Generator`.  :func:`normalize_rng` turns
any of these into a ``Generator`` so that downstream code only ever deals with
one type, and :func:`spawn_rngs` derives independent child generators for
parallel / repeated trials (the Monte-Carlo runner uses this to make each
trial reproducible in isolation).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["SeedLike", "normalize_rng", "spawn_rngs", "derive_seed_sequence"]

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def normalize_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed type.

    Passing an existing generator returns it unchanged (no copy), so stateful
    sequential use keeps advancing the same stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for the given seed.

    Generators cannot be converted back into seed sequences; in that case a
    fresh sequence is derived from the generator's own bit stream so that
    spawning from a generator is still deterministic given the generator
    state.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        entropy = int(seed.integers(0, 2**63 - 1))
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    The children are produced through ``SeedSequence.spawn`` which guarantees
    independence between the streams regardless of how many children are
    requested.

    Parameters
    ----------
    seed:
        Any accepted seed type (see :data:`SeedLike`).
    count:
        Number of child generators to create.  Must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    sequence = derive_seed_sequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
