"""Stdlib HTTP transport for the analysis service.

A thin :mod:`http.server` daemon over :class:`~repro.service.app.ServiceApp`:
every route parses the request, calls the matching app handler and serialises
the returned payload as JSON.  No framework, no dependencies — the service
runs anywhere the repo does.  The optional FastAPI adapter
(:mod:`repro.service.fastapi_adapter`) exposes the *same* handlers for
deployments that already carry that stack.

Routes
------
====== ======================== ==========================================
POST   ``/scenarios``           submit a run (name or inline document)
GET    ``/jobs/{id}``           job state / progress
POST   ``/jobs/{id}/cancel``    cooperative cancellation
GET    ``/results/{fp}``        persisted run record by fingerprint
POST   ``/query``               analytical query against a cached handle
GET    ``/healthz``             liveness + configuration
GET    ``/stats``               store / cache / jobs / telemetry counters
====== ======================== ==========================================

The server is a :class:`~http.server.ThreadingHTTPServer`: request threads
only touch thread-safe app components (the store opens per-call connections,
the cache and job manager lock internally, request threads use plain
counters — never telemetry spans, which are single-threaded per recorder).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from ..utils.logging import get_logger
from .app import ServiceApp, ServiceError

__all__ = ["ServiceHTTPServer", "serve"]

_LOGGER = get_logger("service.http")

#: Refuse request bodies beyond this size (1 MiB) rather than buffering them.
MAX_BODY_BYTES = 1 << 20


def _make_handler(app: ServiceApp) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service/1.0"
        protocol_version = "HTTP/1.1"

        # -------------------------------------------------------------- #
        # plumbing
        # -------------------------------------------------------------- #
        def log_message(self, format: str, *args: Any) -> None:
            _LOGGER.debug("%s - %s", self.address_string(), format % args)

        def _reply(self, status: int, payload: dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ServiceError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServiceError(400, "request body must be a JSON object")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(400, f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise ServiceError(400, "request body must be a JSON object")
            return payload

        def _dispatch(self, route: Callable[[], tuple[int, dict[str, Any]]]) -> None:
            try:
                status, payload = route()
            except ServiceError as exc:
                app.recorder.counter("service.http.errors")
                self._reply(exc.status, exc.to_payload())
                return
            except Exception as exc:  # noqa: BLE001 - boundary: anything → 500
                _LOGGER.exception("unhandled service error")
                app.recorder.counter("service.http.errors")
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}", "status": 500})
                return
            self._reply(status, payload)

        # -------------------------------------------------------------- #
        # routing
        # -------------------------------------------------------------- #
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/healthz":
                self._dispatch(lambda: (200, app.healthz()))
            elif path == "/stats":
                self._dispatch(lambda: (200, app.stats()))
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/") :]
                self._dispatch(lambda: (200, app.job_status(job_id)))
            elif path.startswith("/results/"):
                fingerprint = path[len("/results/") :]
                self._dispatch(lambda: (200, app.result(fingerprint)))
            else:
                self._reply(404, {"error": f"no route for GET {path!r}", "status": 404})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/scenarios":
                self._dispatch(
                    lambda: (202, app.submit_scenario(self._read_json()))
                )
            elif path == "/query":
                self._dispatch(lambda: (200, app.query(self._read_json())))
            elif path.startswith("/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/jobs/") : -len("/cancel")]
                self._dispatch(lambda: (200, app.cancel_job(job_id)))
            else:
                self._reply(404, {"error": f"no route for POST {path!r}", "status": 404})

    return Handler


class ServiceHTTPServer:
    """The service bound to a socket; start/stop wraps the stdlib server.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    what the CI smoke job and the end-to-end tests use.
    """

    def __init__(self, app: ServiceApp, *, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._server = ThreadingHTTPServer((host, port), _make_handler(app))
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _LOGGER.info("service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        _LOGGER.info("service listening on %s", self.url)
        try:
            self._server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut the socket and the job worker down (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(
    *,
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_capacity: int | None = None,
    engine_jobs: int | None = None,
    kernel_backend: str | None = None,
    tile_size: int | None = None,
) -> ServiceHTTPServer:
    """Build a :class:`ServiceApp` and bind it to a socket (not yet serving).

    The ``repro-experiments serve`` subcommand calls this and then
    :meth:`ServiceHTTPServer.serve_forever`; tests call :meth:`start` to get
    a background server with an ephemeral port.
    """
    from .cache import DEFAULT_CACHE_CAPACITY

    app = ServiceApp(
        data_dir=data_dir,
        cache_capacity=(
            cache_capacity if cache_capacity is not None else DEFAULT_CACHE_CAPACITY
        ),
        engine_jobs=engine_jobs,
        kernel_backend=kernel_backend,
        tile_size=tile_size,
    )
    return ServiceHTTPServer(app, host=host, port=port)
