"""The transport-agnostic analysis service application.

:class:`ServiceApp` wires the persistent :class:`~repro.service.store.ArtifactStore`,
the :class:`~repro.service.cache.AnalysisCache` of live analysis handles and
the :class:`~repro.service.jobs.JobManager` into one object whose methods are
plain ``payload-in, payload-out`` handlers.  Transports stay thin: the stdlib
:mod:`http.server` daemon (:mod:`repro.service.http_stdlib`) and the optional
FastAPI adapter (:mod:`repro.service.fastapi_adapter`) both route into the
*same* handler methods, so behaviour — and the test suite that pins it —
cannot drift between transports.

Handler errors raise :class:`ServiceError` with an HTTP status code; anything
else escaping a handler is a 500.  Every handler bumps ``service.requests``
plus a per-endpoint counter on the app's own telemetry recorder, which
``GET /stats`` serves back.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..exceptions import ConfigurationError
from ..scenarios import (
    GraphFamilySpec,
    LabelModelSpec,
    Scenario,
    get_scenario,
)
from ..scenarios.families import build_graph
from ..scenarios.labelmodels import sample_labels
from ..telemetry import TelemetryRecorder
from ..utils.fingerprint import fingerprint
from ..utils.logging import get_logger
from .cache import DEFAULT_CACHE_CAPACITY, AnalysisCache
from .jobs import JobManager
from .store import ArtifactStore

__all__ = ["ServiceApp", "ServiceError", "QUERY_OPS", "CENTRALITY_MEASURES"]

_LOGGER = get_logger("service.app")

#: Operations ``POST /query`` dispatches on.
QUERY_OPS = (
    "distances_from",
    "distances_to",
    "latest_departure",
    "reverse_reachable_set",
    "centrality",
)

#: Centrality measures the ``centrality`` op accepts.
CENTRALITY_MEASURES = ("closeness", "harmonic", "influence", "reach")


class ServiceError(Exception):
    """A handler-level error carrying the HTTP status it maps to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message

    def to_payload(self) -> dict[str, Any]:
        return {"error": self.message, "status": self.status}


def _require(payload: Mapping[str, Any], key: str) -> Any:
    value = payload.get(key)
    if value is None:
        raise ServiceError(400, f"request is missing required field {key!r}")
    return value


def _vertex(payload: Mapping[str, Any], key: str) -> int:
    value = _require(payload, key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(400, f"field {key!r} must be an integer vertex id")
    return value


class ServiceApp:
    """The analysis service: submission, results, live queries, stats.

    Parameters
    ----------
    data_dir:
        Root of all persistent state: ``store.sqlite3`` plus per-run engine
        checkpoint directories under ``checkpoints/<fingerprint>/``.
    cache_capacity:
        Bound on live :class:`~repro.analysis_api.NetworkAnalysis` handles.
    engine_jobs:
        Worker processes per scenario run (``None`` = serial engine).
    kernel_backend / tile_size:
        Recorded for ``/healthz``; the ``serve`` CLI applies them process-wide
        through the same scopes every other subcommand uses, so they bind the
        job worker and query threads alike.
    """

    def __init__(
        self,
        *,
        data_dir: str | Path,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        engine_jobs: int | None = None,
        kernel_backend: str | None = None,
        tile_size: int | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.recorder = TelemetryRecorder()
        self.store = ArtifactStore(self.data_dir / "store.sqlite3")
        self.cache = AnalysisCache(cache_capacity)
        self.jobs = JobManager(
            self.store,
            data_dir=self.data_dir,
            engine_jobs=engine_jobs,
            recorder=self.recorder,
        )
        self.kernel_backend = kernel_backend
        self.tile_size = tile_size
        self.started_at = time.time()

    def close(self) -> None:
        """Stop the job worker (idempotent); persisted state stays on disk."""
        self.jobs.shutdown()

    def _count(self, endpoint: str) -> None:
        self.recorder.counter("service.requests")
        self.recorder.counter(f"service.requests.{endpoint}")

    # ------------------------------------------------------------------ #
    # POST /scenarios
    # ------------------------------------------------------------------ #
    def submit_scenario(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Submit a scenario run; returns the job snapshot.

        ``payload["scenario"]`` is either a registry name or an inline
        scenario document (the :meth:`~repro.scenarios.Scenario.to_dict`
        shape); ``scale`` and ``seed`` are optional.
        """
        self._count("scenarios")
        spec = _require(payload, "scenario")
        try:
            if isinstance(spec, str):
                scenario = get_scenario(spec)
            elif isinstance(spec, Mapping):
                scenario = Scenario.from_dict(spec)
            else:
                raise ServiceError(
                    400, "field 'scenario' must be a registry name or a document"
                )
            scale = str(payload.get("scale", "default"))
            seed = payload.get("seed")
            if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
                raise ServiceError(400, "field 'seed' must be an integer")
            return self.jobs.submit(scenario, scale=scale, seed=seed)
        except ConfigurationError as exc:
            raise ServiceError(400, str(exc)) from exc

    # ------------------------------------------------------------------ #
    # GET /jobs/{id} and GET /results/{fingerprint}
    # ------------------------------------------------------------------ #
    def job_status(self, job_id: str) -> dict[str, Any]:
        """Snapshot of one job (404 for unknown ids)."""
        self._count("jobs")
        snapshot = self.jobs.status(job_id)
        if snapshot is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return snapshot

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        """Request cooperative cancellation of one job."""
        self._count("jobs_cancel")
        try:
            return self.jobs.cancel(job_id)
        except ConfigurationError as exc:
            raise ServiceError(404, str(exc)) from exc

    def result(self, fingerprint: str) -> dict[str, Any]:
        """The persisted run record of one fingerprint (404 when absent)."""
        self._count("results")
        record = self.store.get_run(fingerprint)
        if record is None:
            raise ServiceError(404, f"no stored run for fingerprint {fingerprint!r}")
        return record.to_payload()

    # ------------------------------------------------------------------ #
    # POST /query
    # ------------------------------------------------------------------ #
    def _query_spec_key(self, payload: Mapping[str, Any]) -> str:
        """Canonical fingerprint of the network *request* (not the instance).

        Round-tripping through the spec dataclasses normalises defaults, so
        two spellings of the same request share a key.  The key is registered
        as a cache alias of the instance fingerprint it produces: a repeat
        query resolves spec → handle without rebuilding the network.
        """
        graph_spec = GraphFamilySpec.from_dict(_require(payload, "graph"))
        labels_spec = LabelModelSpec.from_dict(_require(payload, "labels"))
        seed = _require(payload, "seed")
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(400, "field 'seed' must be an integer")
        return fingerprint(
            {
                "kind": "query-network-v1",
                "graph": graph_spec.to_dict(),
                "labels": labels_spec.to_dict(),
                "params": dict(payload.get("params", {})),
                "seed": seed,
            }
        )

    def _build_network(self, payload: Mapping[str, Any]):
        graph_spec = GraphFamilySpec.from_dict(_require(payload, "graph"))
        labels_spec = LabelModelSpec.from_dict(_require(payload, "labels"))
        seed = _require(payload, "seed")
        params = dict(payload.get("params", {}))
        try:
            graph = build_graph(graph_spec, params)
            rng = np.random.default_rng(seed)
            network, _extras = sample_labels(labels_spec, graph, params, rng)
        except (ConfigurationError, TypeError, KeyError, ValueError) as exc:
            raise ServiceError(
                400, f"query graph/labels specs are invalid: {exc}"
            ) from exc
        if network is None:
            raise ServiceError(
                400, "query graph/labels specs describe no temporal network"
            )
        return network

    def query(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one analytical query against a cached analysis handle.

        The temporal network is rebuilt deterministically from
        ``(graph, labels, params, seed)`` — cheap relative to any sweep — and
        fingerprinted; repeat queries against the same network hit the same
        live handle and therefore its memoized artifacts.
        """
        self._count("query")
        op = str(_require(payload, "op"))
        if op not in QUERY_OPS:
            raise ServiceError(
                400, f"unknown op {op!r}; expected one of {', '.join(QUERY_OPS)}"
            )
        try:
            spec_key = self._query_spec_key(payload)
            aliased = self.cache.get_by_alias(spec_key)
            if aliased is not None:
                key, handle = aliased
                hit = True
            else:
                network = self._build_network(payload)
                key, handle, hit = self.cache.get_or_create(
                    network, factory=self._handle_factory
                )
                self.cache.alias(spec_key, key)
            start = time.perf_counter()
            if op == "distances_from":
                result: Any = handle.distances_from([_vertex(payload, "source")])[
                    0
                ].tolist()
            elif op == "distances_to":
                result = handle.distances_to([_vertex(payload, "target")])[0].tolist()
            elif op == "latest_departure":
                result = handle.latest_departure(
                    _vertex(payload, "source"), _vertex(payload, "target")
                )
            elif op == "reverse_reachable_set":
                result = handle.reverse_reachable_set(
                    _vertex(payload, "target")
                ).tolist()
            else:  # centrality
                measure = str(payload.get("measure", "closeness"))
                if measure not in CENTRALITY_MEASURES:
                    raise ServiceError(
                        400,
                        f"unknown centrality measure {measure!r}; expected one "
                        f"of {', '.join(CENTRALITY_MEASURES)}",
                    )
                arrays = {
                    "closeness": handle.closeness,
                    "harmonic": handle.harmonic_closeness,
                    "influence": handle.influence_counts,
                    "reach": handle.reach_counts,
                }
                result = arrays[measure]().tolist()
            self.recorder.observe_ms(
                "service.query_ms", (time.perf_counter() - start) * 1e3
            )
        except ConfigurationError as exc:
            raise ServiceError(400, str(exc)) from exc
        return {
            "op": op,
            "graph_fingerprint": key,
            "cache_hit": hit,
            "n": handle.n,
            "lifetime": handle.network.lifetime,
            "result": result,
        }

    def _handle_factory(self, network):
        from ..analysis_api import NetworkAnalysis

        return NetworkAnalysis(network, kernel_backend=self.kernel_backend)

    # ------------------------------------------------------------------ #
    # GET /healthz and GET /stats
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        """Liveness: identity and configuration, cheap enough to poll."""
        self._count("healthz")
        return {
            "status": "ok",
            "schema_version": self.store.schema_version(),
            "uptime_s": time.time() - self.started_at,
            "kernel_backend": self.kernel_backend,
            "tile_size": self.tile_size,
            "engine_jobs": self.jobs.engine_jobs,
        }

    def stats(self) -> dict[str, Any]:
        """Operational snapshot: store, cache, jobs and telemetry counters."""
        self._count("stats")
        return {
            "store": self.store.counts(),
            "cache": self.cache.stats(),
            "jobs": self.jobs.counts(),
            "counters": dict(self.recorder.counters),
        }

    def __repr__(self) -> str:
        return f"ServiceApp(data_dir={str(self.data_dir)!r})"
