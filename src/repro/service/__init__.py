"""The analysis service: a long-lived serving layer over the memoized engine.

Everything below the HTTP surface is a plain library — usable without any
server at all:

* :mod:`repro.service.store` — :class:`ArtifactStore`, a SQLite (WAL)
  results/artifact store keyed by run fingerprints, idempotent per
  fingerprint, schema-versioned with in-place migration.
* :mod:`repro.service.cache` — :class:`AnalysisCache`, a bounded LRU of live
  :class:`~repro.analysis_api.NetworkAnalysis` handles keyed by canonical
  graph fingerprints.
* :mod:`repro.service.jobs` — :class:`JobManager`, asynchronous scenario runs
  through the checkpointing parallel engine: progress, cancellation,
  store-hit dedup and crash-resume.
* :mod:`repro.service.app` — :class:`ServiceApp`, the transport-agnostic
  handlers; :mod:`repro.service.http_stdlib` and the optional
  :mod:`repro.service.fastapi_adapter` expose them over HTTP.

Start a server with the CLI (``repro-experiments serve``) or in-process::

    from repro.service import serve

    with serve(data_dir="./service-data") as server:
        print(server.url)       # ephemeral port by default
"""

from .app import CENTRALITY_MEASURES, QUERY_OPS, ServiceApp, ServiceError
from .cache import DEFAULT_CACHE_CAPACITY, AnalysisCache
from .http_stdlib import ServiceHTTPServer, serve
from .jobs import JobCancelled, JobManager
from .store import ArtifactStore, RunRecord, run_fingerprint

__all__ = [
    "ArtifactStore",
    "RunRecord",
    "run_fingerprint",
    "AnalysisCache",
    "DEFAULT_CACHE_CAPACITY",
    "JobManager",
    "JobCancelled",
    "ServiceApp",
    "ServiceError",
    "QUERY_OPS",
    "CENTRALITY_MEASURES",
    "ServiceHTTPServer",
    "serve",
]
