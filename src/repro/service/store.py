"""The persistent results/artifact store behind the analysis service.

One SQLite file (WAL mode, stdlib :mod:`sqlite3`) records every scenario run
the service has ever completed: the run fingerprint, the scenario JSON, the
resolved seed, the flat summary records, wall-clock timings and optional
paths of ``.npy`` artifacts spilled next to the database.  The contract is
**idempotent by fingerprint**: recording the same fingerprint twice lands on
the same row — the second writer observes the first row instead of
duplicating or overwriting it — which is what turns a repeated scenario
submission into a store hit with zero new sweep computes.

Schema versioning
-----------------
The schema version lives in SQLite's ``PRAGMA user_version``.  Opening a
store applies every migration past the file's recorded version in order
inside one transaction per step, so a database written by an older service
upgrades in place and a database written by a *newer* one is refused rather
than corrupted.

Concurrency
-----------
WAL allows one writer and any number of readers across processes.  Every
public method opens its own short-lived connection with a busy timeout, so
two service processes (or a service plus a CLI inspection) can share the
file: writers queue behind the busy timeout instead of failing, and no
connection is ever shared across threads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from .. import telemetry
from ..exceptions import ConfigurationError
from ..utils.fingerprint import fingerprint
from ..utils.logging import get_logger

__all__ = ["RunRecord", "ArtifactStore", "run_fingerprint"]

_LOGGER = get_logger("service.store")

#: Run lifecycle states persisted in the ``runs.status`` column.
RUN_STATUSES = ("running", "done", "failed")

#: Every schema migration, applied in order past ``PRAGMA user_version``.
#: Version N of the file means migrations ``_MIGRATIONS[:N]`` have run.
_MIGRATIONS: tuple[str, ...] = (
    # v1 — the runs table: one row per run fingerprint.
    """
    CREATE TABLE runs (
        fingerprint   TEXT PRIMARY KEY,
        scenario_name TEXT NOT NULL,
        scale         TEXT NOT NULL,
        seed          INTEGER,
        status        TEXT NOT NULL,
        scenario_json TEXT NOT NULL,
        records_json  TEXT,
        timings_json  TEXT,
        error         TEXT,
        created_at    REAL NOT NULL,
        updated_at    REAL NOT NULL
    );
    CREATE INDEX runs_by_name ON runs (scenario_name, scale);
    """,
    # v2 — named .npy artifacts attached to a run.
    """
    CREATE TABLE artifacts (
        fingerprint TEXT NOT NULL REFERENCES runs (fingerprint),
        name        TEXT NOT NULL,
        path        TEXT NOT NULL,
        created_at  REAL NOT NULL,
        PRIMARY KEY (fingerprint, name)
    );
    """,
)

SCHEMA_VERSION = len(_MIGRATIONS)


def run_fingerprint(scenario: Any, scale: str, seed: Any) -> str:
    """The store/checkpoint key of one ``(scenario, scale, seed)`` run.

    ``scenario`` is a :class:`repro.scenarios.Scenario`; ``seed`` must already
    be resolved (the scenario's ``default_seed`` substituted for ``None``) so
    that an explicit ``seed=2032`` and a defaulted submission of the same
    scenario share a fingerprint exactly when they share results.
    """
    return fingerprint(
        {
            "kind": "scenario-run-v1",
            "scenario": scenario.fingerprint_payload(),
            "scale": str(scale),
            "seed": seed,
        }
    )


@dataclass(frozen=True)
class RunRecord:
    """One persisted run: identity, lifecycle state and summaries."""

    fingerprint: str
    scenario_name: str
    scale: str
    seed: int | None
    status: str
    scenario_json: str
    records: list[dict[str, Any]] | None
    timings: dict[str, float] | None
    error: str | None
    created_at: float
    updated_at: float
    artifacts: dict[str, str] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        """Whether the run completed and carries summary records."""
        return self.status == "done"

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible view (what ``GET /results/{fingerprint}`` serves)."""
        return {
            "fingerprint": self.fingerprint,
            "scenario_name": self.scenario_name,
            "scale": self.scale,
            "seed": self.seed,
            "status": self.status,
            "records": self.records,
            "timings": self.timings,
            "error": self.error,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "artifacts": dict(self.artifacts),
        }


def _counter(name: str, value: int = 1) -> None:
    for rec in telemetry.active():
        rec.counter(name, value)


class ArtifactStore:
    """SQLite-backed persistent store of service run results.

    Parameters
    ----------
    path:
        Database file path; parent directories are created.  The store always
        lives on disk — WAL (and therefore multi-process sharing) does not
        exist for ``:memory:`` databases.
    busy_timeout_ms:
        How long a writer waits on a locked database before erroring; under
        WAL this is the whole cross-process write-contention story.
    """

    def __init__(
        self, path: str | os.PathLike[str], *, busy_timeout_ms: int = 5_000
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._busy_timeout_ms = int(busy_timeout_ms)
        self._migrate()

    @property
    def path(self) -> Path:
        """The database file path."""
        return self._path

    @property
    def busy_timeout_ms(self) -> int:
        """Writer wait budget on a locked database, in milliseconds."""
        return self._busy_timeout_ms

    # ------------------------------------------------------------------ #
    # connections and migration
    # ------------------------------------------------------------------ #
    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection: transaction on success, always closed."""
        conn = sqlite3.connect(self._path, timeout=self._busy_timeout_ms / 1_000.0)
        try:
            conn.row_factory = sqlite3.Row
            conn.execute(f"PRAGMA busy_timeout = {self._busy_timeout_ms}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.execute("PRAGMA foreign_keys = ON")
            with conn:
                yield conn
        finally:
            conn.close()

    def _migrate(self) -> None:
        with self._connect() as conn:
            version = int(conn.execute("PRAGMA user_version").fetchone()[0])
            if version > SCHEMA_VERSION:
                raise ConfigurationError(
                    f"store {self._path} has schema version {version}, newer "
                    f"than this build's {SCHEMA_VERSION}; refusing to open"
                )
            for step in range(version, SCHEMA_VERSION):
                conn.executescript(_MIGRATIONS[step])
                conn.execute(f"PRAGMA user_version = {step + 1}")
                _LOGGER.info(
                    "store %s: migrated schema v%d -> v%d",
                    self._path,
                    step,
                    step + 1,
                )

    def schema_version(self) -> int:
        """The database file's current schema version."""
        with self._connect() as conn:
            return int(conn.execute("PRAGMA user_version").fetchone()[0])

    # ------------------------------------------------------------------ #
    # run lifecycle
    # ------------------------------------------------------------------ #
    def begin_run(
        self,
        fingerprint: str,
        *,
        scenario_name: str,
        scale: str,
        seed: int | None,
        scenario_json: str,
    ) -> tuple[RunRecord, bool]:
        """Claim a fingerprint: insert a ``running`` row, or observe the existing one.

        Returns ``(record, created)``.  ``created`` is False when the
        fingerprint already has a row — done, failed or still running — which
        is the store-hit signal (``service.store.hit``) the job manager uses
        to skip recomputation.  Idempotent under concurrent callers: exactly
        one of two simultaneous ``begin_run`` calls creates the row.
        """
        now = time.time()
        with self._connect() as conn:
            cursor = conn.execute(
                """
                INSERT INTO runs (fingerprint, scenario_name, scale, seed,
                                  status, scenario_json, created_at, updated_at)
                VALUES (?, ?, ?, ?, 'running', ?, ?, ?)
                ON CONFLICT (fingerprint) DO NOTHING
                """,
                (fingerprint, scenario_name, scale, seed, scenario_json, now, now),
            )
            created = cursor.rowcount == 1
        record = self.get_run(fingerprint, _count=False)
        assert record is not None  # the row exists either way
        _counter("service.store.insert" if created else "service.store.hit")
        return record, created

    def complete_run(
        self,
        fingerprint: str,
        *,
        records: Sequence[Mapping[str, Any]],
        timings: Mapping[str, float] | None = None,
    ) -> RunRecord:
        """Mark a run ``done`` and persist its summary records and timings."""
        return self._finish(
            fingerprint,
            status="done",
            records_json=json.dumps(list(map(dict, records))),
            timings_json=json.dumps(dict(timings)) if timings is not None else None,
            error=None,
        )

    def fail_run(self, fingerprint: str, error: str) -> RunRecord:
        """Mark a run ``failed`` with its error message (resubmittable)."""
        return self._finish(
            fingerprint,
            status="failed",
            records_json=None,
            timings_json=None,
            error=error,
        )

    def reset_run(self, fingerprint: str) -> None:
        """Flip a ``failed`` (or stale ``running``) row back to ``running``.

        Used on resubmission after a failure or a crash: the row keeps its
        identity and creation time; the engine's checkpoint directory decides
        how much work is actually redone.
        """
        with self._connect() as conn:
            conn.execute(
                """
                UPDATE runs SET status = 'running', error = NULL, updated_at = ?
                WHERE fingerprint = ? AND status != 'done'
                """,
                (time.time(), fingerprint),
            )

    def _finish(
        self,
        fingerprint: str,
        *,
        status: str,
        records_json: str | None,
        timings_json: str | None,
        error: str | None,
    ) -> RunRecord:
        with self._connect() as conn:
            cursor = conn.execute(
                """
                UPDATE runs SET status = ?, records_json = ?, timings_json = ?,
                                error = ?, updated_at = ?
                WHERE fingerprint = ?
                """,
                (status, records_json, timings_json, error, time.time(), fingerprint),
            )
            if cursor.rowcount != 1:
                raise ConfigurationError(
                    f"cannot mark unknown run {fingerprint!r} as {status}"
                )
        record = self.get_run(fingerprint, _count=False)
        assert record is not None
        return record

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get_run(self, fingerprint: str, *, _count: bool = True) -> RunRecord | None:
        """Look up one run by fingerprint (``service.store.hit``/``miss``)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            artifacts = {
                art["name"]: art["path"]
                for art in conn.execute(
                    "SELECT name, path FROM artifacts WHERE fingerprint = ?",
                    (fingerprint,),
                )
            }
        if _count:
            _counter("service.store.hit" if row is not None else "service.store.miss")
        if row is None:
            return None
        return self._record(row, artifacts)

    def iter_runs(self) -> Iterator[RunRecord]:
        """All runs, newest first (artifact paths not populated)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM runs ORDER BY created_at DESC"
            ).fetchall()
        for row in rows:
            yield self._record(row, {})

    def counts(self) -> dict[str, int]:
        """Row counts: total plus per-status breakdown (the /stats payload)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS c FROM runs GROUP BY status"
            ).fetchall()
            artifacts = int(
                conn.execute("SELECT COUNT(*) FROM artifacts").fetchone()[0]
            )
        by_status = {row["status"]: int(row["c"]) for row in rows}
        return {
            "runs": sum(by_status.values()),
            "artifacts": artifacts,
            **{f"runs_{status}": by_status.get(status, 0) for status in RUN_STATUSES},
        }

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    def add_artifact(self, fingerprint: str, name: str, path: str | os.PathLike[str]) -> None:
        """Attach (idempotently) a named on-disk artifact to a run."""
        with self._connect() as conn:
            exists = conn.execute(
                "SELECT 1 FROM runs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if exists is None:
                raise ConfigurationError(
                    f"cannot attach artifact {name!r} to unknown run {fingerprint!r}"
                )
            conn.execute(
                """
                INSERT INTO artifacts (fingerprint, name, path, created_at)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (fingerprint, name) DO UPDATE SET path = excluded.path
                """,
                (fingerprint, name, os.fspath(path), time.time()),
            )

    # ------------------------------------------------------------------ #
    # row decoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _record(row: sqlite3.Row, artifacts: dict[str, str]) -> RunRecord:
        return RunRecord(
            fingerprint=row["fingerprint"],
            scenario_name=row["scenario_name"],
            scale=row["scale"],
            seed=row["seed"],
            status=row["status"],
            scenario_json=row["scenario_json"],
            records=(
                json.loads(row["records_json"])
                if row["records_json"] is not None
                else None
            ),
            timings=(
                json.loads(row["timings_json"])
                if row["timings_json"] is not None
                else None
            ),
            error=row["error"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            artifacts=artifacts,
        )

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self._path)!r})"
