"""Optional FastAPI adapter over the same :class:`~repro.service.app.ServiceApp`.

FastAPI is **not** a dependency of this repository — the service's canonical
transport is the stdlib daemon in :mod:`repro.service.http_stdlib`.  This
module exists for deployments that already run a FastAPI/ASGI stack and want
the service mounted there: it builds a ``FastAPI`` application whose routes
call the *exact same* app handler methods the stdlib transport does, so the
two transports cannot diverge.

Importing this module is safe without FastAPI installed;
:func:`create_fastapi_app` raises :class:`~repro.exceptions.ConfigurationError`
at call time when the dependency is missing.

Usage::

    from repro.service import ServiceApp
    from repro.service.fastapi_adapter import create_fastapi_app

    app = ServiceApp(data_dir="./service-data")
    asgi = create_fastapi_app(app)   # uvicorn my_module:asgi
"""

from __future__ import annotations

from typing import Any

from ..exceptions import ConfigurationError
from .app import ServiceApp, ServiceError

__all__ = ["fastapi_available", "create_fastapi_app"]


def fastapi_available() -> bool:
    """Whether the optional FastAPI dependency is importable."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_fastapi_app(app: ServiceApp) -> Any:
    """Wrap a :class:`ServiceApp` in a FastAPI application (same routes).

    Raises
    ------
    ConfigurationError
        When FastAPI is not installed in this environment.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse
    except ImportError as exc:  # pragma: no cover - exercised via stub in tests
        raise ConfigurationError(
            "the FastAPI adapter requires the optional 'fastapi' dependency; "
            "install it or use the stdlib transport "
            "(repro.service.http_stdlib.serve)"
        ) from exc

    api = FastAPI(title="repro analysis service", version="1.0")

    @api.exception_handler(ServiceError)
    async def _service_error(request: Request, exc: ServiceError) -> JSONResponse:
        del request
        app.recorder.counter("service.http.errors")
        return JSONResponse(status_code=exc.status, content=exc.to_payload())

    @api.post("/scenarios", status_code=202)
    async def submit_scenario(request: Request) -> dict[str, Any]:
        return app.submit_scenario(await request.json())

    @api.get("/jobs/{job_id}")
    async def job_status(job_id: str) -> dict[str, Any]:
        return app.job_status(job_id)

    @api.post("/jobs/{job_id}/cancel")
    async def cancel_job(job_id: str) -> dict[str, Any]:
        return app.cancel_job(job_id)

    @api.get("/results/{fingerprint}")
    async def result(fingerprint: str) -> dict[str, Any]:
        return app.result(fingerprint)

    @api.post("/query")
    async def query(request: Request) -> dict[str, Any]:
        return app.query(await request.json())

    @api.get("/healthz")
    async def healthz() -> dict[str, Any]:
        return app.healthz()

    @api.get("/stats")
    async def stats() -> dict[str, Any]:
        return app.stats()

    return api
