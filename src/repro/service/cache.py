"""A bounded LRU of live :class:`~repro.analysis_api.NetworkAnalysis` handles.

The handle layer (PR 4) already memoizes every artifact *within* one handle —
arrival matrix, reverse columns, centrality — so the expensive thing left to
share across service requests is the handle itself.  This cache keys handles
by the canonical instance fingerprint
(:func:`repro.utils.fingerprint.graph_fingerprint`), so two requests that
describe the same temporal network — even through different spec spellings —
land on the same handle and its already-computed artifacts: a repeated
single-target query costs a dictionary lookup instead of a reverse sweep.

Eviction is strict LRU under a fixed capacity.  Evicting a handle only drops
cached artifacts (they recompute on the next miss), never correctness.  All
operations are thread-safe; the HTTP layer calls into the cache from
concurrent request threads.

Alias layer
-----------
Instance fingerprints require the instance — and *building* the instance
(sampling tens of thousands of labels) costs far more than any memoized
query against it.  The alias map short-circuits that: the service registers
the canonical fingerprint of the **request spec** (graph family, label
model, params, seed) as an alias of the instance fingerprint it produced, so
a repeat query resolves spec → handle with two dictionary lookups and never
rebuilds the network.  Aliases are a bounded LRU of strings; an alias whose
handle was evicted simply misses, and the rebuild path re-registers it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

from .. import telemetry
from ..utils.fingerprint import graph_fingerprint
from ..utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis_api import NetworkAnalysis
    from ..core.temporal_graph import TemporalGraph

__all__ = ["AnalysisCache", "DEFAULT_CACHE_CAPACITY"]

#: Default number of live handles kept resident.  Each handle can pin up to
#: O(n²) of arrival/departure matrices, so the bound is deliberately modest.
DEFAULT_CACHE_CAPACITY = 32


def _counter(name: str, value: int = 1) -> None:
    for rec in telemetry.active():
        rec.counter(name, value)


class AnalysisCache:
    """Bounded, thread-safe LRU: graph fingerprint → analysis handle."""

    #: Aliases kept per handle slot; aliases are tiny (two hex strings), so
    #: the map may comfortably outnumber the handles it points at.
    ALIASES_PER_SLOT = 8

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self._capacity = check_positive_int(capacity, "capacity")
        self._entries: "OrderedDict[str, NetworkAnalysis]" = OrderedDict()
        self._aliases: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of resident handles."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        """Resident fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> "NetworkAnalysis | None":
        """The handle cached under ``key``, refreshed to most-recently-used."""
        with self._lock:
            handle = self._entries.get(key)
            if handle is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _counter("service.cache.hit")
                return handle
            self.misses += 1
            _counter("service.cache.miss")
            return None

    def put(self, key: str, handle: "NetworkAnalysis") -> None:
        """Insert (or refresh) a handle, evicting the LRU entry past capacity."""
        with self._lock:
            self._entries[key] = handle
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions += 1
                _counter("service.cache.evict")
                del evicted

    # ------------------------------------------------------------------ #
    # spec aliases
    # ------------------------------------------------------------------ #
    def get_by_alias(self, alias: str) -> "tuple[str, NetworkAnalysis] | None":
        """Resolve a registered alias straight to ``(key, handle)``.

        Returns ``None`` — without touching the hit/miss statistics — when
        the alias is unknown or its handle has been evicted; the caller then
        rebuilds through :meth:`get_or_create`, which records the miss.
        """
        with self._lock:
            key = self._aliases.get(alias)
            if key is None:
                return None
            handle = self._entries.get(key)
            if handle is None:
                return None
            self._aliases.move_to_end(alias)
            self._entries.move_to_end(key)
            self.hits += 1
            _counter("service.cache.hit")
            return key, handle

    def alias(self, alias: str, key: str) -> None:
        """Register ``alias`` as another name of the handle cached at ``key``."""
        with self._lock:
            self._aliases[alias] = key
            self._aliases.move_to_end(alias)
            while len(self._aliases) > self._capacity * self.ALIASES_PER_SLOT:
                self._aliases.popitem(last=False)

    def get_or_create(
        self,
        network: "TemporalGraph",
        *,
        factory: Callable[["TemporalGraph"], "NetworkAnalysis"] | None = None,
    ) -> tuple[str, "NetworkAnalysis", bool]:
        """Fingerprint ``network`` and return ``(key, handle, hit)``.

        On a miss a fresh handle is built (``factory`` defaults to the plain
        :class:`~repro.analysis_api.NetworkAnalysis` constructor) and cached.
        The fingerprint-then-lookup is what lets a *rebuilt* instance of the
        same network — same graph spec, same label model, same seed — hit the
        handle, and therefore the memoized artifacts, of an earlier request.
        """
        key = graph_fingerprint(network)
        with self._lock:
            cached = self.get(key)
            if cached is not None:
                return key, cached, True
            if factory is None:
                from ..analysis_api import NetworkAnalysis

                handle = NetworkAnalysis(network)
            else:
                handle = factory(network)
            self.put(key, handle)
            return key, handle, False

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every resident handle and alias (they rebuild on next use)."""
        with self._lock:
            self._entries.clear()
            self._aliases.clear()

    def stats(self) -> dict[str, Any]:
        """Hit/miss/eviction counts plus the derived hit rate (the /stats payload)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"AnalysisCache(size={len(self._entries)}, "
                f"capacity={self._capacity}, hits={self.hits}, "
                f"misses={self.misses})"
            )
