"""Asynchronous scenario jobs over the checkpointing parallel engine.

The :class:`JobManager` is the service's write path: a scenario submission
becomes a job that runs through :func:`repro.scenarios.run_scenario` on a
dedicated worker thread, with

* **dedup by fingerprint** — a submission whose
  :func:`~repro.service.store.run_fingerprint` already has a completed row in
  the :class:`~repro.service.store.ArtifactStore` is answered from the store
  instantly (``from_store=True``), with zero new sweep computes;
* **progress** — the engine's shard-completion hook is folded into one
  monotone fraction across every sweep point of the run;
* **cancellation** — cooperative, checked between shards; a cancelled run
  keeps its completed shards on disk, so resubmission resumes;
* **crash-resume** — the engine checkpoint directory is derived from the run
  fingerprint under the service data dir.  A submission that finds shards
  from a dead process verifies their fingerprint and re-executes only the
  remainder; the merged result is bit-identical to an uninterrupted run
  (the engine's determinism contract, re-pinned at the service level by
  ``tests/test_service_jobs.py``).

Jobs execute strictly one at a time in submission order — determinism and
bounded memory over throughput; the *engine* parallelism (``engine_jobs``)
is where cores go.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, ContextManager

from .. import telemetry
from ..exceptions import ConfigurationError
from ..scenarios import Scenario, run_scenario
from ..utils.logging import get_logger
from .store import ArtifactStore, run_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import TelemetryRecorder

__all__ = ["JobCancelled", "JobManager", "JOB_STATES"]

_LOGGER = get_logger("service.jobs")

#: Job lifecycle states, in rough order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobCancelled(Exception):
    """Raised inside the engine progress hook to abort a cancelled job."""


@dataclass
class _Job:
    """Mutable job record; every field is guarded by the manager lock."""

    id: str
    fingerprint: str
    scenario: Scenario
    scale: str
    seed: int | None
    state: str = "queued"
    progress: float = 0.0
    error: str | None = None
    from_store: bool = False
    resumed_from_checkpoint: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    points_total: int = 1
    points_done: int = 0
    cancel_requested: bool = False

    def __post_init__(self) -> None:
        self.done_event = threading.Event()

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible snapshot (what ``GET /jobs/{id}`` serves)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "scenario_name": self.scenario.name,
            "scale": self.scale,
            "seed": self.seed,
            "state": self.state,
            "progress": round(self.progress, 6),
            "error": self.error,
            "from_store": self.from_store,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def _scenario_points(scenario: Scenario, scale: str) -> int:
    """Number of engine runs one scenario run performs (sweep points)."""
    return sum(len(block.points()) for block in scenario.scale(scale).blocks)


class JobManager:
    """Runs submitted scenarios asynchronously; see the module docstring."""

    def __init__(
        self,
        store: ArtifactStore,
        *,
        data_dir: str | Path,
        engine_jobs: int | None = None,
        recorder: "TelemetryRecorder | None" = None,
    ) -> None:
        self._store = store
        self._data_dir = Path(data_dir)
        self._engine_jobs = engine_jobs
        self._recorder = recorder
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.RLock()
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._ids = itertools.count(1)
        self._worker = threading.Thread(
            target=self._loop, name="repro-service-jobs", daemon=True
        )
        self._worker.start()

    @property
    def store(self) -> ArtifactStore:
        """The persistent store completed runs land in."""
        return self._store

    @property
    def engine_jobs(self) -> int | None:
        """Worker processes each scenario run fans out over (None = serial)."""
        return self._engine_jobs

    def checkpoint_dir(self, fingerprint: str) -> Path:
        """Engine checkpoint directory of one run fingerprint."""
        return self._data_dir / "checkpoints" / fingerprint

    def _telemetry_scope(self) -> ContextManager[Any]:
        if self._recorder is None:
            return nullcontext(None)
        return telemetry.attach(self._recorder)

    def _counter(self, name: str, value: int = 1) -> None:
        if self._recorder is not None:
            self._recorder.counter(name, value)
        for rec in telemetry.active():
            if rec is not self._recorder:
                rec.counter(name, value)

    # ------------------------------------------------------------------ #
    # submission and queries
    # ------------------------------------------------------------------ #
    def submit(
        self, scenario: Scenario, *, scale: str = "default", seed: int | None = None
    ) -> dict[str, Any]:
        """Submit one scenario run; returns the job snapshot immediately.

        ``seed=None`` resolves to the scenario's ``default_seed`` *before*
        fingerprinting, so defaulted and explicit submissions of the same run
        share identity.  A fingerprint whose results are already stored is
        answered as an immediately-``done`` job served ``from_store``; a
        fingerprint with a failed (or crashed mid-flight) row is re-queued
        and resumes from its checkpoint shards.
        """
        scenario.scale(scale)  # validate the scale preset up front
        resolved_seed = seed if seed is not None else scenario.default_seed
        fingerprint = run_fingerprint(scenario, scale, resolved_seed)
        with self._lock:
            job = _Job(
                id=f"job-{next(self._ids):04d}",
                fingerprint=fingerprint,
                scenario=scenario,
                scale=scale,
                seed=resolved_seed,
                submitted_at=time.time(),
                points_total=max(1, _scenario_points(scenario, scale)),
            )
            self._jobs[job.id] = job

            existing = self._store.get_run(fingerprint, _count=False)
            if existing is not None and existing.done:
                job.state = "done"
                job.progress = 1.0
                job.from_store = True
                job.finished_at = job.submitted_at
                job.done_event.set()
                self._counter("service.store.hit")
                self._counter("service.jobs.store_hits")
                return job.to_payload()

            # Claim (or re-claim) the row, then queue the actual work.
            if existing is None:
                self._store.begin_run(
                    fingerprint,
                    scenario_name=scenario.name,
                    scale=scale,
                    seed=resolved_seed,
                    scenario_json=scenario.to_json(indent=None),
                )
            else:
                self._store.reset_run(fingerprint)
            self._counter("service.jobs.submitted")
            self._queue.put(job.id)
            return job.to_payload()

    def status(self, job_id: str) -> dict[str, Any] | None:
        """Snapshot of one job, or ``None`` for an unknown id."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.to_payload() if job is not None else None

    def jobs(self) -> list[dict[str, Any]]:
        """Snapshots of every job this manager has seen, in submission order."""
        with self._lock:
            return [job.to_payload() for job in self._jobs.values()]

    def counts(self) -> dict[str, int]:
        """Per-state job counts (the /stats payload)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cooperative cancellation (takes effect between shards)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
            if job.state in ("queued", "running"):
                job.cancel_requested = True
            return job.to_payload()

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until a job reaches a terminal state (or the timeout)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
        job.done_event.wait(timeout)
        with self._lock:
            return job.to_payload()

    def shutdown(self, *, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker after the current job (idempotent)."""
        self._queue.put(None)
        if wait and self._worker.is_alive():
            self._worker.join(timeout)

    # ------------------------------------------------------------------ #
    # the worker
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
            try:
                self._execute(job)
            except Exception:  # pragma: no cover - defensive: keep the worker alive
                _LOGGER.exception("job %s: unexpected worker error", job_id)

    def _progress_hook(self, job: _Job):
        def hook(completed: int, total: int, repetitions_done: int) -> None:
            del repetitions_done
            if job.cancel_requested:
                raise JobCancelled(job.id)
            with self._lock:
                fraction = completed / total if total else 1.0
                job.progress = min(
                    1.0, (job.points_done + fraction) / job.points_total
                )
                if completed >= total:
                    job.points_done += 1

        return hook

    def _execute(self, job: _Job) -> None:
        with self._lock:
            if job.cancel_requested:
                job.state = "cancelled"
                job.finished_at = time.time()
                job.done_event.set()
                self._counter("service.jobs.cancelled")
                return
            job.state = "running"
            job.started_at = time.time()

        checkpoint_dir: Path | None = None
        progress = None
        if job.scenario.mode == "montecarlo" and job.seed is not None:
            checkpoint_dir = self.checkpoint_dir(job.fingerprint)
            progress = self._progress_hook(job)
            if any(checkpoint_dir.glob("**/shard-*.json")):
                with self._lock:
                    job.resumed_from_checkpoint = True
                self._counter("service.jobs.resumed")

        start = time.perf_counter()
        try:
            with self._telemetry_scope():
                result = run_scenario(
                    job.scenario,
                    scale=job.scale,
                    seed=job.seed,
                    jobs=self._engine_jobs,
                    checkpoint_dir=checkpoint_dir,
                    progress=progress,
                )
            elapsed = time.perf_counter() - start
            self._store.complete_run(
                job.fingerprint,
                records=result.to_records(),
                timings={"run_s": elapsed},
            )
            with self._lock:
                job.state = "done"
                job.progress = 1.0
            self._counter("service.jobs.completed")
            if self._recorder is not None:
                self._recorder.observe_ms("service.job_run_ms", elapsed * 1e3)
        except JobCancelled:
            self._store.fail_run(job.fingerprint, "cancelled")
            with self._lock:
                job.state = "cancelled"
            self._counter("service.jobs.cancelled")
            _LOGGER.info("job %s: cancelled (checkpoint shards kept)", job.id)
        except Exception as exc:
            self._store.fail_run(job.fingerprint, f"{type(exc).__name__}: {exc}")
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            self._counter("service.jobs.failed")
            _LOGGER.exception("job %s: failed", job.id)
        finally:
            with self._lock:
                job.finished_at = time.time()
            job.done_event.set()

    def __repr__(self) -> str:
        with self._lock:
            return f"JobManager(jobs={len(self._jobs)}, queue={self._queue.qsize()})"
