"""Parallel Monte-Carlo execution engine.

The paper's headline quantities (expected temporal diameter, price of
randomness, ER connectivity probabilities) are all estimated by repeated
independent trials — an embarrassingly parallel workload.  This subpackage
executes such trial budgets in deterministic shards:

* :mod:`repro.engine.sharding` — shard planning and per-trial seed streams
  (the determinism contract lives here);
* :mod:`repro.engine.accumulators` — mergeable streaming aggregation
  (Welford moments, min/max/count, reservoir sampling);
* :mod:`repro.engine.executors` — the :class:`Executor` protocol with serial
  and process-pool implementations;
* :mod:`repro.engine.checkpoint` — crash/resume persistence of completed
  shards;
* :mod:`repro.engine.driver` — :func:`run_sharded`, the entry point that the
  Monte-Carlo runner delegates to.

See ``docs/parallel_engine.md`` for the architecture and the determinism
contract: for a fixed master seed the results are bit-identical across
``jobs`` counts, executors, and crash/resume boundaries.
"""

from .accumulators import (
    DEFAULT_RESERVOIR_CAPACITY,
    AccumulatorSet,
    MetricAccumulator,
    ReservoirSample,
    StreamingMoments,
)
from .checkpoint import CheckpointStore
from .driver import EngineResult, ProgressCallback, run_sharded
from .executors import (
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    ShardResult,
    ShardTask,
    ShardWork,
    execute_shard,
    resolve_executor,
)
from .sharding import DEFAULT_MAX_SHARDS, SeedPlan, Shard, plan_shards

__all__ = [
    "AccumulatorSet",
    "MetricAccumulator",
    "ReservoirSample",
    "StreamingMoments",
    "DEFAULT_RESERVOIR_CAPACITY",
    "CheckpointStore",
    "EngineResult",
    "ProgressCallback",
    "run_sharded",
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "resolve_executor",
    "ShardTask",
    "ShardWork",
    "ShardResult",
    "execute_shard",
    "DEFAULT_MAX_SHARDS",
    "Shard",
    "SeedPlan",
    "plan_shards",
]
