"""The engine driver: plan shards, execute them, merge the partials.

:func:`run_sharded` is the single entry point the Monte-Carlo layer calls.
It owns the determinism contract end to end:

1. the shard plan is a pure function of ``(budget, shard_size)``;
2. trial ``i`` draws from seed child ``i`` regardless of which shard or
   worker runs it;
3. partials are merged in ascending shard index with a dedicated merge
   stream, no matter in which order workers finish.

Together these make the result — raw per-trial values in ``full`` collection
mode, streamed moments/reservoirs always — bit-identical across executors,
worker counts and crash/resume boundaries.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from .. import telemetry
from ..core import blocked_sweeps, kernels
from ..exceptions import ConfigurationError
from ..utils.fingerprint import checkpoint_fingerprint
from ..utils.logging import get_logger
from ..utils.seeding import SeedLike
from ..utils.timing import Timer
from .accumulators import DEFAULT_RESERVOIR_CAPACITY, AccumulatorSet
from .checkpoint import CheckpointStore
from .executors import (
    Executor,
    ShardResult,
    ShardTask,
    ShardWork,
    resolve_executor,
)
from .sharding import SeedPlan, plan_shards

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..montecarlo.experiment import Experiment

__all__ = ["EngineResult", "ProgressCallback", "run_sharded"]

_LOGGER = get_logger("engine.driver")

#: Signature of the progress hook: ``(completed_shards, total_shards,
#: repetitions_done)``, called after every shard completion (and once up
#: front when a resume skips already-completed shards).
ProgressCallback = Callable[[int, int, int], None]


@dataclass(frozen=True)
class EngineResult:
    """Merged outcome of a sharded run.

    Attributes
    ----------
    repetitions:
        Total number of trials executed (always the full budget).
    values:
        Raw per-trial metric arrays in trial order, or ``None`` in streaming
        collection mode.
    accumulators:
        Streamed moments + reservoir per metric (always present).
    shards_total / shards_executed / shards_resumed:
        Shard accounting; ``shards_resumed`` counts shards loaded from a
        checkpoint instead of executed.
    """

    repetitions: int
    values: Mapping[str, tuple[float, ...]] | None
    accumulators: AccumulatorSet
    shards_total: int
    shards_executed: int
    shards_resumed: int


def run_sharded(
    experiment: "Experiment",
    *,
    budget: int,
    seed: SeedLike = None,
    executor: Executor | None = None,
    jobs: int | None = None,
    shard_size: int | None = None,
    collect_values: bool = True,
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    checkpoint_dir: str | os.PathLike[str] | None = None,
    progress: ProgressCallback | None = None,
) -> EngineResult:
    """Execute ``budget`` independent trials of ``experiment`` in shards.

    Parameters
    ----------
    experiment:
        The experiment whose trial function is run once per repetition.
    budget:
        Exact number of trials to run.
    seed:
        Master seed; see :class:`repro.engine.sharding.SeedPlan` for how the
        per-trial streams are derived from it.
    executor / jobs:
        Execution strategy (see :func:`repro.engine.executors.resolve_executor`).
    shard_size:
        Trials per shard; defaults to an even cut into at most
        :data:`repro.engine.sharding.DEFAULT_MAX_SHARDS` shards.  Part of the
        determinism fingerprint — change it and streamed statistics may differ
        in the last ulp (raw values never do).
    collect_values:
        When True (default) shards return the raw per-trial metric values and
        the merged result matches the sequential runner exactly; when False
        shards ship only O(1) accumulator partials.
    reservoir_capacity:
        Per-metric reservoir bound used by the streaming aggregation.
    checkpoint_dir:
        Optional directory for crash/resume persistence; completed shards
        found there (for the *same* run fingerprint) are not re-executed.
    progress:
        Optional :data:`ProgressCallback` hook.
    """
    if checkpoint_dir is not None and seed is None:
        raise ConfigurationError(
            "checkpoint_dir requires an explicit master seed: with seed=None "
            "every process start draws fresh OS entropy, so a resumed run "
            "could never reproduce the checkpointed trial streams"
        )
    shards = plan_shards(budget, shard_size=shard_size)
    seeds = SeedPlan(seed, budget, len(shards))
    chosen = resolve_executor(executor, jobs)
    recs = telemetry.active()
    task = ShardTask(
        experiment=experiment,
        collect_values=collect_values,
        reservoir_capacity=reservoir_capacity,
        # Snapshot of "is anyone recording" travels with the task so spawned
        # workers (which inherit no globals) still record their shards.
        telemetry=bool(recs),
        # Same for the effective kernel backend: resolved once here so every
        # worker — serial, forked or spawned — sweeps on the backend the
        # parent process would use.
        kernel_backend=kernels.default_backend(),
        # And the ambient blocked-sweep tile size (--tile-size): tiles run
        # within shards, so out-of-core streaming composes with --jobs.
        tile_size=blocked_sweeps.default_tile_size(),
    )

    completed: dict[int, ShardResult] = {}
    store: CheckpointStore | None = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        load_start = time.perf_counter()
        completed = store.initialize(
            checkpoint_fingerprint(
                experiment=experiment.name,
                parameters=experiment.parameters,
                budget=budget,
                shard_size=shards[0].size,
                num_shards=len(shards),
                collect_values=collect_values,
                reservoir_capacity=reservoir_capacity,
                seed=seeds.fingerprint(),
            )
        )
        if recs:
            load_ms = (time.perf_counter() - load_start) * 1e3
            for rec in recs:
                rec.observe_ms("engine.checkpoint_load_ms", load_ms)

    resumed = len(completed)
    pending = [
        ShardWork(
            task=task,
            shard=shard,
            master_entropy=seeds.entropy,
            master_spawn_key=seeds.spawn_key,
            budget=budget,
        )
        for shard in shards
        if shard.index not in completed
    ]

    done = resumed
    repetitions_done = sum(result.repetitions for result in completed.values())
    if resumed:
        if progress is not None:
            progress(done, len(shards), repetitions_done)
        for rec in recs:
            rec.counter("engine.shards_resumed", resumed)

    with Timer(experiment.name) as timer:
        for result in chosen.map_shards(pending):
            completed[result.index] = result
            if store is not None:
                save_start = time.perf_counter()
                store.save(result)
                if recs:
                    save_ms = (time.perf_counter() - save_start) * 1e3
                    for rec in recs:
                        rec.observe_ms("engine.checkpoint_save_ms", save_ms)
            done += 1
            repetitions_done += result.repetitions
            # The progress event, mirrored as a counter for recorders; the
            # callback itself is untouched.
            for rec in recs:
                rec.counter("engine.shards_completed")
            if progress is not None:
                progress(done, len(shards), repetitions_done)
    _LOGGER.debug(
        "experiment %s: %d shard(s) (%d resumed) on %r in %s",
        experiment.name,
        len(shards),
        resumed,
        chosen,
        timer,
    )
    for rec in recs:
        rec.observe_ms("engine.run_ms", timer.elapsed * 1e3)

    # Merge in ascending shard index — never in completion order.
    merge_rng = seeds.merge_rng()
    accumulators = AccumulatorSet(reservoir_capacity)
    values: dict[str, list[float]] | None = {} if collect_values else None
    repetitions = 0
    for shard in shards:
        result = completed[shard.index]
        accumulators.merge(AccumulatorSet.from_state(result.accumulator_state), merge_rng)
        if result.telemetry_state is not None:
            # Worker-side recorders fold into every recorder active *now*, in
            # the same ascending order as the accumulators (counter and
            # Welford merges are exact, so the order only matters for
            # reproducible float summation).
            for rec in recs:
                rec.merge_state(result.telemetry_state)
        repetitions += result.repetitions
        if values is not None:
            if result.values is None:
                raise ValueError(
                    f"shard {shard.index} carries no raw values; it was likely "
                    "checkpointed with collect_values=False"
                )
            for name, column in result.values.items():
                values.setdefault(name, []).extend(column)
    return EngineResult(
        repetitions=repetitions,
        values=(
            {name: tuple(column) for name, column in values.items()}
            if values is not None
            else None
        ),
        accumulators=accumulators,
        shards_total=len(shards),
        shards_executed=len(shards) - resumed,
        shards_resumed=resumed,
    )
