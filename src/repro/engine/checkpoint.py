"""Checkpoint/resume for sharded Monte-Carlo runs.

A checkpoint directory holds one JSON file per completed shard plus a
``meta.json`` describing the run it belongs to:

```text
checkpoint-dir/
  meta.json          run fingerprint: experiment, budget, shard plan, seed
  shard-0000.json    ShardResult payload (metrics and/or accumulator state)
  shard-0001.json
  ...
```

Shard files are written atomically (write to ``*.tmp``, then ``os.replace``)
so a crash mid-write never leaves a truncated shard that would poison a
resume.  On resume the store verifies the fingerprint — budget, shard size,
experiment name and master-seed identity must all match — and returns the
completed shards so the driver only executes the remainder.  Because trial
``i`` always draws from seed child ``i`` (see
:class:`repro.engine.sharding.SeedPlan`), a resumed run is bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..exceptions import CheckpointError
from ..utils.logging import get_logger
from .executors import ShardResult

__all__ = ["CheckpointStore"]

_LOGGER = get_logger("engine.checkpoint")

#: On-disk format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1


class CheckpointStore:
    """Persists completed shards of one engine run under a directory."""

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._directory

    def _meta_path(self) -> Path:
        return self._directory / "meta.json"

    def _shard_path(self, index: int) -> Path:
        return self._directory / f"shard-{index:04d}.json"

    def _write_json(self, path: Path, payload: dict[str, Any]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)

    def initialize(self, fingerprint: dict[str, Any]) -> dict[int, ShardResult]:
        """Bind the store to a run and load any shards completed earlier.

        A fresh directory is stamped with ``fingerprint``; an existing one is
        verified against it and its completed shards are returned.  A
        mismatched fingerprint (different budget, shard size, seed or
        experiment) raises :class:`repro.exceptions.CheckpointError` rather
        than silently mixing incompatible partials.
        """
        meta = dict(fingerprint)
        meta["format_version"] = FORMAT_VERSION
        meta_path = self._meta_path()
        if meta_path.exists():
            try:
                existing = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint metadata at {meta_path}"
                ) from exc
            if existing != meta:
                raise CheckpointError(
                    f"checkpoint at {self._directory} belongs to a different run: "
                    f"stored {existing!r}, requested {meta!r}"
                )
        else:
            self._write_json(meta_path, meta)
        return self._load_shards()

    def _load_shards(self) -> dict[int, ShardResult]:
        completed: dict[int, ShardResult] = {}
        for path in sorted(self._directory.glob("shard-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                result = ShardResult.from_payload(payload)
            except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
                raise CheckpointError(f"corrupt checkpoint shard at {path}") from exc
            completed[result.index] = result
        if completed:
            _LOGGER.info(
                "resuming %d completed shard(s) from %s",
                len(completed),
                self._directory,
            )
        return completed

    def save(self, result: ShardResult) -> None:
        """Persist one completed shard (atomic replace)."""
        self._write_json(self._shard_path(result.index), result.to_payload())

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self._directory)!r})"
