"""Mergeable streaming accumulators for sharded Monte-Carlo aggregation.

A shard of trials must be summarisable in O(1) space so that workers can ship
partial results back to the driver without serialising full trial arrays.
Three primitives cover everything the experiment reports need:

* :class:`StreamingMoments` — count / mean / variance via Welford's online
  algorithm, plus running min and max.  Two partials merge exactly with the
  Chan et al. parallel update, so the merged moments equal the single-pass
  moments over the concatenated stream (up to floating-point rounding, which
  is made deterministic by always merging in shard-index order).
* :class:`ReservoirSample` — a uniform sample of bounded size, used for the
  median and for bootstrap resampling when the raw trial array is not kept.
  Merging two reservoirs draws the split from a hypergeometric distribution,
  so the merged reservoir is again a uniform sample of the union.
* :class:`MetricAccumulator` / :class:`AccumulatorSet` — one moments+reservoir
  pair per metric, with dict-based ``state`` round-tripping used by both the
  multiprocess transport and the on-disk checkpoint format.

Every ``merge`` is deterministic given the RNG passed in and the order of the
operands; the engine driver always merges in ascending shard index with an
RNG spawned from the master seed, which is what makes streaming aggregation
independent of worker count and completion order.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping

import numpy as np

from ..montecarlo.statistics import SummaryStatistics, normal_interval_from_moments
from ..utils.validation import check_positive_int

__all__ = [
    "DEFAULT_RESERVOIR_CAPACITY",
    "StreamingMoments",
    "ReservoirSample",
    "MetricAccumulator",
    "AccumulatorSet",
]

#: Default bound on the per-metric reservoir.  Large enough that the median
#: is exact for every preset budget in the repository (the biggest is 60
#: repetitions) while keeping shard partials a few KiB per metric.
DEFAULT_RESERVOIR_CAPACITY = 1024


class StreamingMoments:
    """Welford online moments plus running min/max.

    ``add`` consumes one observation in O(1); ``merge`` combines two partials
    exactly (Chan et al. 1979), so sharded accumulation reproduces the
    sequential statistics without retaining the stream.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Consume one observation."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another partial into this one (exact parallel Welford update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Unbiased (``ddof=1``) sample variance; 0.0 with fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return max(self.m2 / (self.count - 1), 0.0)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def to_state(self) -> dict[str, float]:
        """JSON-serialisable snapshot."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "StreamingMoments":
        """Rebuild from a :meth:`to_state` snapshot."""
        moments = cls()
        moments.count = int(state["count"])
        moments.mean = float(state["mean"])
        moments.m2 = float(state["m2"])
        moments.minimum = float(state["min"])
        moments.maximum = float(state["max"])
        return moments

    def __repr__(self) -> str:
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class ReservoirSample:
    """Bounded uniform sample of a stream (Vitter's algorithm R).

    The reservoir is an exact copy of the stream while ``seen <= capacity``
    (so the median it yields is exact for every in-budget run) and a uniform
    random subset beyond that.  ``merge`` keeps uniformity: the number of
    survivors taken from each side is hypergeometric in the seen-counts, which
    is exactly the distribution of a uniform ``k``-subset of the union.
    """

    __slots__ = ("capacity", "seen", "items")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self.seen = 0
        self.items: list[float] = []

    def add(self, value: float, rng: np.random.Generator) -> None:
        """Offer one observation to the reservoir."""
        value = float(value)
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(value)
            return
        slot = int(rng.integers(0, self.seen))
        if slot < self.capacity:
            self.items[slot] = value

    def merge(self, other: "ReservoirSample", rng: np.random.Generator) -> None:
        """Fold another reservoir into this one, preserving uniformity."""
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge reservoirs of capacities {self.capacity} and "
                f"{other.capacity}"
            )
        if other.seen == 0:
            return
        if self.seen == 0:
            self.seen = other.seen
            self.items = list(other.items)
            return
        total = self.seen + other.seen
        size = min(self.capacity, total)
        take_self = int(rng.hypergeometric(self.seen, other.seen, size))
        take_self = min(take_self, len(self.items))
        take_other = min(size - take_self, len(other.items))
        picked_self = rng.choice(len(self.items), size=take_self, replace=False)
        picked_other = rng.choice(len(other.items), size=take_other, replace=False)
        merged = [self.items[i] for i in sorted(picked_self)]
        merged += [other.items[i] for i in sorted(picked_other)]
        self.items = merged
        self.seen = total

    @property
    def is_exact(self) -> bool:
        """Whether the reservoir still holds the entire stream."""
        return self.seen <= self.capacity

    def median(self) -> float:
        """Median of the reservoir (exact while :attr:`is_exact` holds)."""
        if not self.items:
            raise ValueError("cannot take the median of an empty reservoir")
        return float(np.median(np.asarray(self.items, dtype=np.float64)))

    def to_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot."""
        return {"capacity": self.capacity, "seen": self.seen, "items": list(self.items)}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ReservoirSample":
        """Rebuild from a :meth:`to_state` snapshot."""
        reservoir = cls(int(state["capacity"]))
        reservoir.seen = int(state["seen"])
        reservoir.items = [float(x) for x in state["items"]]
        return reservoir

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(capacity={self.capacity}, seen={self.seen}, "
            f"held={len(self.items)})"
        )


class MetricAccumulator:
    """Streaming moments plus a reservoir for one metric."""

    __slots__ = ("moments", "reservoir")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        self.moments = StreamingMoments()
        self.reservoir = ReservoirSample(capacity)

    def add(self, value: float, rng: np.random.Generator) -> None:
        """Consume one observation."""
        self.moments.add(value)
        self.reservoir.add(value, rng)

    def merge(self, other: "MetricAccumulator", rng: np.random.Generator) -> None:
        """Fold another partial into this one."""
        self.moments.merge(other.moments)
        self.reservoir.merge(other.reservoir, rng)

    def summary(self, *, confidence: float = 0.95) -> SummaryStatistics:
        """Build :class:`SummaryStatistics` from the streamed state.

        Count, mean, std, min and max are exact (Welford); the median comes
        from the reservoir (exact while the stream fits in it); the CI is the
        normal approximation from the exact mean/std/count, matching
        :func:`repro.montecarlo.statistics.normal_confidence_interval`.
        """
        moments = self.moments
        if moments.count == 0:
            raise ValueError("cannot summarise an empty accumulator")
        mean = min(max(moments.mean, moments.minimum), moments.maximum)
        ci_low, ci_high = normal_interval_from_moments(
            mean, moments.std, moments.count, confidence=confidence
        )
        return SummaryStatistics(
            count=moments.count,
            mean=mean,
            std=moments.std,
            minimum=moments.minimum,
            maximum=moments.maximum,
            median=self.reservoir.median(),
            ci_low=ci_low,
            ci_high=ci_high,
        )

    def to_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot."""
        return {"moments": self.moments.to_state(), "reservoir": self.reservoir.to_state()}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "MetricAccumulator":
        """Rebuild from a :meth:`to_state` snapshot."""
        accumulator = cls.__new__(cls)
        accumulator.moments = StreamingMoments.from_state(state["moments"])
        accumulator.reservoir = ReservoirSample.from_state(state["reservoir"])
        return accumulator


class AccumulatorSet:
    """One :class:`MetricAccumulator` per metric name."""

    __slots__ = ("capacity", "_metrics")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self._metrics: dict[str, MetricAccumulator] = {}

    def add_trial(
        self, metrics: Mapping[str, float], rng: np.random.Generator
    ) -> None:
        """Consume one trial's metric mapping."""
        for name, value in metrics.items():
            accumulator = self._metrics.get(name)
            if accumulator is None:
                accumulator = self._metrics[name] = MetricAccumulator(self.capacity)
            accumulator.add(value, rng)

    def merge(self, other: "AccumulatorSet", rng: np.random.Generator) -> None:
        """Fold another set into this one (union of metric names)."""
        for name, accumulator in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = MetricAccumulator.from_state(accumulator.to_state())
            else:
                mine.merge(accumulator, rng)

    def metric_names(self) -> list[str]:
        """Sorted metric names seen so far."""
        return sorted(self._metrics)

    def __getitem__(self, name: str) -> MetricAccumulator:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def summaries(self, *, confidence: float = 0.95) -> dict[str, SummaryStatistics]:
        """Per-metric :class:`SummaryStatistics` (insertion order)."""
        return {
            name: accumulator.summary(confidence=confidence)
            for name, accumulator in self._metrics.items()
        }

    def samples(self) -> dict[str, tuple[float, ...]]:
        """Per-metric reservoir contents (the full stream while in budget)."""
        return {
            name: tuple(accumulator.reservoir.items)
            for name, accumulator in self._metrics.items()
        }

    def to_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot."""
        return {
            "capacity": self.capacity,
            "metrics": {
                name: accumulator.to_state()
                for name, accumulator in self._metrics.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "AccumulatorSet":
        """Rebuild from a :meth:`to_state` snapshot."""
        accumulators = cls(int(state["capacity"]))
        for name, metric_state in state["metrics"].items():
            accumulators._metrics[name] = MetricAccumulator.from_state(metric_state)
        return accumulators
