"""Executors: where the shards of a Monte-Carlo run actually execute.

The engine driver plans shards and merges partials; *how* the shards run is
delegated to an :class:`Executor`:

* :class:`SerialExecutor` — runs shards in-process, in index order.  This is
  the cross-validation reference: every other executor must reproduce its
  results bit for bit (see ``docs/parallel_engine.md``).
* :class:`MultiprocessExecutor` — fans shards out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are yielded in
  completion order; determinism is preserved because the driver merges by
  shard index, not by arrival.

Workers receive a picklable :class:`ShardWork` (experiment + seed sequences)
and return a :class:`ShardResult` whose payload is plain JSON-able data —
the same representation the checkpoint store persists.
"""

from __future__ import annotations

import abc
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import time

import numpy as np

from .. import telemetry
from ..core import blocked_sweeps, kernels
from ..exceptions import ConfigurationError
from ..utils.validation import check_positive_int
from .accumulators import DEFAULT_RESERVOIR_CAPACITY, AccumulatorSet
from .sharding import Shard, spawned_child

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..montecarlo.experiment import Experiment

__all__ = [
    "ShardTask",
    "ShardWork",
    "ShardResult",
    "execute_shard",
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "resolve_executor",
]


@dataclass(frozen=True)
class ShardTask:
    """Run-wide work description shared by every shard.

    ``experiment.trial`` must be picklable (a module-level function) for the
    multiprocess executor; the synthetic closures used in unit tests only work
    with the serial executor.
    """

    experiment: "Experiment"
    collect_values: bool = True
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY
    #: Record per-shard telemetry in the worker and ship it home with the
    #: result.  An explicit flag (set by the driver from the state of the
    #: parent's recorders) rather than an inherited global, so it survives
    #: spawn-start-method workers, which re-import the world from scratch.
    telemetry: bool = False
    #: Kernel backend the shard's sweeps should run on (the driver snapshots
    #: the parent's effective default).  Shipped explicitly for the same
    #: reason as ``telemetry``: spawn-start-method workers inherit neither
    #: ``set_default_backend`` state nor (scrubbed) environment variables.
    #: Applied non-strictly in the worker — a worker that cannot use the
    #: named backend warns and falls back rather than killing the run.
    kernel_backend: str | None = None
    #: Ambient blocked-sweep tile size (the driver snapshots the parent's
    #: ``blocked_sweeps.default_tile_size()``), shipped explicitly for the
    #: same spawn-start-method reason.  ``None`` means no ambient default —
    #: metrics stay on their dense path unless asked for blocked mode.
    tile_size: int | None = None


@dataclass(frozen=True)
class ShardWork:
    """One schedulable unit: a shard plus the master-seed identity.

    Workers reconstruct their per-trial streams from ``(master_entropy,
    master_spawn_key)`` via :func:`repro.engine.sharding.spawned_child`, so
    the payload shipped per shard is O(1) in both the shard size and the
    total budget.
    """

    task: ShardTask
    shard: Shard
    master_entropy: object
    master_spawn_key: tuple[int, ...]
    budget: int


@dataclass(frozen=True)
class ShardResult:
    """O(1)-sized partial result of one shard.

    ``values`` holds the raw per-trial metric arrays only when the task asked
    for them (``collect_values=True``); the streaming path ships just the
    accumulator state.
    """

    index: int
    start: int
    stop: int
    repetitions: int
    values: Mapping[str, tuple[float, ...]] | None
    accumulator_state: Mapping[str, Any]
    #: The worker-side telemetry recorder's state (counters + timing moments),
    #: or ``None`` when the run had telemetry off.  Merged by the driver in
    #: ascending shard index, like the accumulator state.
    telemetry_state: Mapping[str, Any] | None = None

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable representation (the checkpoint on-disk format)."""
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "repetitions": self.repetitions,
            "values": (
                {name: list(column) for name, column in self.values.items()}
                if self.values is not None
                else None
            ),
            "accumulators": dict(self.accumulator_state),
            "telemetry": (
                dict(self.telemetry_state)
                if self.telemetry_state is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ShardResult":
        """Rebuild from a :meth:`to_payload` dictionary.

        Checkpoints written before telemetry existed lack the ``telemetry``
        key; they load as ``telemetry_state=None``.
        """
        raw_values = payload["values"]
        return cls(
            index=int(payload["index"]),
            start=int(payload["start"]),
            stop=int(payload["stop"]),
            repetitions=int(payload["repetitions"]),
            values=(
                {
                    name: tuple(float(x) for x in column)
                    for name, column in raw_values.items()
                }
                if raw_values is not None
                else None
            ),
            accumulator_state=payload["accumulators"],
            telemetry_state=payload.get("telemetry"),
        )


def execute_shard(work: ShardWork) -> ShardResult:
    """Run every trial of one shard and return its mergeable partial.

    This is the worker entry point for every executor; it is a module-level
    function so process pools can pickle it.

    When the task has telemetry on, the shard runs under a fresh *isolated*
    recorder — both in the serial executor and in every multiprocess worker —
    whose state ships home in :attr:`ShardResult.telemetry_state`.  One code
    path for both execution modes is what makes a ``jobs=N`` run's merged
    counters bit-identical to a serial run's.

    The task's ``kernel_backend`` is installed as the worker's process
    default for the duration of the shard (non-strict: unusable → warn and
    fall back), so every sweep inside the trials runs on the backend the
    parent selected — again identically across execution modes.  The task's
    ``tile_size`` is installed the same way, so a ``--tile-size`` run streams
    its distance summaries through the blocked engine inside every worker —
    tiles within shards, composing with ``--jobs``.
    """
    with kernels.backend_scope(work.task.kernel_backend, strict=False), \
            blocked_sweeps.tile_size_scope(work.task.tile_size):
        if not work.task.telemetry:
            return _execute_shard_inner(work, None)
        recorder = telemetry.TelemetryRecorder()
        with telemetry.isolated(recorder):
            return _execute_shard_inner(work, recorder)


def _execute_shard_inner(
    work: ShardWork, recorder: "telemetry.TelemetryRecorder | None"
) -> ShardResult:
    task = work.task
    experiment = task.experiment
    shard_start = time.perf_counter() if recorder is not None else 0.0
    reservoir_rng = np.random.default_rng(
        spawned_child(
            work.master_entropy, work.master_spawn_key, work.budget + work.shard.index
        )
    )
    accumulators = AccumulatorSet(task.reservoir_capacity)
    values: dict[str, list[float]] | None = {} if task.collect_values else None
    repetitions = 0
    for trial_index in range(work.shard.start, work.shard.stop):
        trial_seed = spawned_child(
            work.master_entropy, work.master_spawn_key, trial_index
        )
        metrics = experiment.run_single(np.random.default_rng(trial_seed))
        accumulators.add_trial(metrics, reservoir_rng)
        if values is not None:
            for name, value in metrics.items():
                values.setdefault(name, []).append(value)
        repetitions += 1
    telemetry_state: dict[str, Any] | None = None
    if recorder is not None:
        recorder.counter("engine.shards")
        recorder.counter("engine.trials", repetitions)
        recorder.observe_ms(
            "engine.shard_ms", (time.perf_counter() - shard_start) * 1e3
        )
        telemetry_state = recorder.to_state()
    return ShardResult(
        index=work.shard.index,
        start=work.shard.start,
        stop=work.shard.stop,
        repetitions=repetitions,
        values=(
            {name: tuple(column) for name, column in values.items()}
            if values is not None
            else None
        ),
        accumulator_state=accumulators.to_state(),
        telemetry_state=telemetry_state,
    )


class Executor(abc.ABC):
    """Strategy for executing a batch of shards."""

    @property
    @abc.abstractmethod
    def jobs(self) -> int:
        """Maximum number of shards in flight at once."""

    @abc.abstractmethod
    def map_shards(self, works: Sequence[ShardWork]) -> Iterator[ShardResult]:
        """Execute the shards, yielding results as they complete (any order)."""


class SerialExecutor(Executor):
    """In-process execution in shard-index order — the reference executor."""

    @property
    def jobs(self) -> int:
        return 1

    def map_shards(self, works: Sequence[ShardWork]) -> Iterator[ShardResult]:
        for work in works:
            yield execute_shard(work)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessExecutor(Executor):
    """Shard fan-out over a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``fork`` where
        available (Linux) because it avoids re-importing numpy/scipy in every
        worker; pass ``"spawn"`` explicitly for environments where forking a
        threaded parent is unsafe.
    """

    def __init__(self, jobs: int, *, start_method: str | None = None) -> None:
        self._jobs = check_positive_int(jobs, "jobs")
        if start_method is None:
            # fork only where it is actually safe: macOS lists it but forking
            # a parent with scipy/Accelerate state loaded can abort the child,
            # which is why CPython made spawn the macOS default.
            if sys.platform.startswith("linux") and (
                "fork" in multiprocessing.get_all_start_methods()
            ):
                start_method = "fork"
            else:
                start_method = multiprocessing.get_start_method()
        self._start_method = start_method

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def start_method(self) -> str:
        """The multiprocessing start method used for worker processes."""
        return self._start_method

    def map_shards(self, works: Sequence[ShardWork]) -> Iterator[ShardResult]:
        if not works:
            return
        if len(works) == 1 or self._jobs == 1:
            # No parallelism to exploit; skip the pool entirely.
            for work in works:
                yield execute_shard(work)
            return
        context = multiprocessing.get_context(self._start_method)
        workers = min(self._jobs, len(works))
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            futures = [pool.submit(execute_shard, work) for work in works]
            failure: BaseException | None = None
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                exc = future.exception()
                if exc is not None:
                    if failure is None:
                        failure = exc
                        # Stop scheduling queued shards; shards already running
                        # finish and are still yielded below, so the driver can
                        # checkpoint their work before the failure propagates.
                        pool.shutdown(wait=False, cancel_futures=True)
                    continue
                yield future.result()
            if failure is not None:
                raise failure
        finally:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"MultiprocessExecutor(jobs={self._jobs}, "
            f"start_method={self._start_method!r})"
        )


def resolve_executor(
    executor: Executor | None = None, jobs: int | None = None
) -> Executor:
    """Normalise the ``(executor, jobs)`` pair every engine entry point accepts.

    Exactly one of the two may be given: an explicit executor wins, ``jobs``
    larger than 1 builds a :class:`MultiprocessExecutor`, and everything else
    falls back to the serial reference executor.
    """
    if executor is not None:
        if jobs is not None and jobs != executor.jobs:
            raise ConfigurationError(
                f"jobs={jobs} conflicts with the explicit executor "
                f"({executor!r}); pass one or the other"
            )
        return executor
    if jobs is None:
        return SerialExecutor()
    try:
        jobs = check_positive_int(jobs, "jobs")
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"jobs must be a positive integer, got {jobs!r}") from exc
    if jobs == 1:
        return SerialExecutor()
    return MultiprocessExecutor(jobs)
