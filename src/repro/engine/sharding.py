"""Deterministic shard planning for the parallel Monte-Carlo engine.

The determinism contract of the engine rests on two facts that this module
owns:

1. **The shard plan is a pure function of ``(budget, shard_size)``.**  The
   number of worker processes never changes how the trial budget is cut, so
   ``jobs=1`` and ``jobs=64`` execute exactly the same shards.
2. **Trial *i* always draws from child *i* of the master seed.**
   :class:`SeedPlan` spawns one ``SeedSequence`` child per trial (the same
   prefix ``spawn_rngs`` would produce for a sequential run), followed by one
   reservoir stream per shard and one merge stream — so sharded execution is
   bit-identical to the sequential runner, and streaming aggregation is
   deterministic regardless of worker count or completion order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..utils.fingerprint import seed_fingerprint
from ..utils.seeding import SeedLike, derive_seed_sequence
from ..utils.validation import check_positive_int

__all__ = ["DEFAULT_MAX_SHARDS", "Shard", "plan_shards", "spawned_child", "SeedPlan"]

#: Default ceiling on the number of shards in a plan.  Small enough that the
#: per-shard scheduling overhead is negligible, large enough that a pool of
#: up to ~8 workers keeps busy with good load balance.
DEFAULT_MAX_SHARDS = 16


@dataclass(frozen=True, slots=True)
class Shard:
    """A contiguous block of trial indices ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of trials in the shard."""
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"shard {self.index} has an invalid trial range "
                f"[{self.start}, {self.stop})"
            )


def plan_shards(budget: int, *, shard_size: int | None = None) -> list[Shard]:
    """Partition ``budget`` trials into contiguous shards.

    The plan depends only on ``budget`` and ``shard_size`` — never on the
    number of workers.  With the default ``shard_size`` the plan has at most
    :data:`DEFAULT_MAX_SHARDS` shards, sized within one trial of each other.
    """
    budget = check_positive_int(budget, "budget")
    if shard_size is None:
        shard_size = max(1, math.ceil(budget / DEFAULT_MAX_SHARDS))
    else:
        shard_size = check_positive_int(shard_size, "shard_size")
    shards: list[Shard] = []
    start = 0
    while start < budget:
        stop = min(start + shard_size, budget)
        shards.append(Shard(index=len(shards), start=start, stop=stop))
        start = stop
    return shards


def spawned_child(
    entropy: object, spawn_key: tuple[int, ...], index: int
) -> np.random.SeedSequence:
    """Reconstruct child ``index`` of a master seed without spawning siblings.

    ``SeedSequence.spawn`` defines child ``i`` as the sequence with the
    parent's entropy and ``spawn_key + (i,)``; building it directly keeps both
    the driver and the workers O(1) in the trial budget — no million-entry
    child list is materialised, and a :class:`ShardWork` ships just the master
    identity instead of per-trial ``SeedSequence`` objects.
    """
    return np.random.SeedSequence(entropy, spawn_key=(*spawn_key, index))


class SeedPlan:
    """All RNG streams of one engine run, derived lazily from the master seed.

    Children of the master :class:`numpy.random.SeedSequence`, by index:

    * ``0 … budget-1`` — one stream per trial (identical to the prefix
      ``spawn_rngs(seed, budget)`` yields, so results match sequential runs);
    * ``budget … budget+num_shards-1`` — one reservoir stream per shard;
    * ``budget+num_shards`` — the driver's merge stream.
    """

    __slots__ = ("sequence", "budget", "num_shards")

    def __init__(self, seed: SeedLike, budget: int, num_shards: int) -> None:
        self.budget = check_positive_int(budget, "budget")
        self.num_shards = check_positive_int(num_shards, "num_shards")
        self.sequence = derive_seed_sequence(seed)

    @property
    def entropy(self) -> object:
        """Master entropy (together with :attr:`spawn_key`, the seed identity)."""
        return self.sequence.entropy

    @property
    def spawn_key(self) -> tuple[int, ...]:
        """Master spawn key."""
        return tuple(self.sequence.spawn_key)

    def child(self, index: int) -> np.random.SeedSequence:
        """Child ``index`` of the master seed (see the class docstring)."""
        return spawned_child(self.entropy, self.spawn_key, index)

    def trial_seeds(self, shard: Shard) -> tuple[np.random.SeedSequence, ...]:
        """Per-trial seed sequences of one shard (trial ``i`` → child ``i``)."""
        return tuple(self.child(i) for i in range(shard.start, shard.stop))

    def reservoir_seed(self, shard: Shard) -> np.random.SeedSequence:
        """The shard's dedicated reservoir-sampling stream."""
        return self.child(self.budget + shard.index)

    def merge_rng(self) -> np.random.Generator:
        """The driver-side stream used to merge shard partials in index order."""
        return np.random.default_rng(self.child(self.budget + self.num_shards))

    def fingerprint(self) -> str:
        """Stable identifier of the master seed, used by checkpoint metadata."""
        return seed_fingerprint(self.sequence.entropy, self.spawn_key)
