"""Label model registry: how a scenario's graph receives its time labels.

A :class:`~repro.scenarios.specs.LabelModelSpec` is resolved against the sweep
point (plus the implicit ``graph_n`` / ``graph_m`` parameters of the built
graph) and sampled with the trial's generator.  Sampling returns the network
and an *extras* mapping — side objects such as the resolved
:class:`~repro.randomness.distributions.LabelDistribution` that downstream
metrics may want (e.g. E8 reports the distribution's mean label).

The ``"uniform"`` model routes through
:func:`repro.core.labeling.uniform_random_labels`, which uses the vectorised
direct-to-CSR sampling fast path; the RNG consumption is exactly one
``(m, labels_per_edge)`` draw, identical to the historical per-experiment
trial functions.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from ..core.labeling import (
    box_assignment,
    tree_broadcast_assignment,
    uniform_random_labels,
)
from ..core.temporal_graph import TemporalGraph
from ..exceptions import ConfigurationError
from ..graphs.static_graph import StaticGraph
from ..randomness.distributions import LabelDistribution, distribution_from_name
from .specs import LabelModelSpec, eval_param_expr

__all__ = ["LABEL_MODELS", "register_label_model", "resolve_distribution", "sample_labels"]

#: Sampler signature: ``(spec, graph, params, rng) -> (network, extras)``.
LabelSampler = Callable[
    [LabelModelSpec, StaticGraph, Mapping[str, Any], np.random.Generator],
    tuple[TemporalGraph | None, dict[str, Any]],
]


def resolve_distribution(
    spec: Mapping[str, Any] | None,
    params: Mapping[str, Any],
    lifetime: int,
) -> LabelDistribution | None:
    """Resolve a label-model ``distribution`` entry to a concrete distribution.

    Two shapes are accepted:

    * ``{"name": "geometric", "kwargs": {"q": 0.05}}`` — a fixed distribution;
    * ``{"param": "distribution", "kwargs_by_name": {...}}`` — the sweep
      parameter named by ``param`` selects the distribution name, with
      per-name constructor kwargs (the E8 pattern).
    """
    if spec is None:
        return None
    if "param" in spec:
        name = str(params[str(spec["param"])])
        kwargs = dict(spec.get("kwargs_by_name", {}).get(name, {}))
    elif "name" in spec:
        name = str(spec["name"])
        kwargs = dict(spec.get("kwargs", {}))
    else:
        raise ConfigurationError(
            f"distribution spec needs a 'name' or a 'param' key, got {dict(spec)!r}"
        )
    return distribution_from_name(name, lifetime, **kwargs)


def _resolved_lifetime(
    spec: LabelModelSpec, graph: StaticGraph, params: Mapping[str, Any]
) -> int | None:
    merged = dict(params)
    merged["graph_n"] = graph.n
    merged["graph_m"] = graph.m
    if spec.lifetime is None:
        return None
    return int(eval_param_expr(spec.lifetime, merged))


def _sample_uniform(
    spec: LabelModelSpec,
    graph: StaticGraph,
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> tuple[TemporalGraph, dict[str, Any]]:
    r = int(eval_param_expr(spec.labels_per_edge, params))
    lifetime = _resolved_lifetime(spec, graph, params)
    effective = lifetime if lifetime is not None else graph.n
    distribution = resolve_distribution(spec.distribution, params, effective)
    network = uniform_random_labels(
        graph,
        labels_per_edge=r,
        lifetime=lifetime,
        distribution=distribution,
        seed=rng,
    )
    extras: dict[str, Any] = {}
    if distribution is not None:
        extras["distribution"] = distribution
    return network, extras


def _sample_box(
    spec: LabelModelSpec,
    graph: StaticGraph,
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> tuple[TemporalGraph, dict[str, Any]]:
    lifetime = _resolved_lifetime(spec, graph, params)
    mode = str(spec.options.get("mode", "first"))
    return (
        box_assignment(graph, lifetime=lifetime, mode=mode, seed=rng),
        {},
    )


def _sample_tree_broadcast(
    spec: LabelModelSpec,
    graph: StaticGraph,
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> tuple[TemporalGraph, dict[str, Any]]:
    del rng  # deterministic construction
    lifetime = _resolved_lifetime(spec, graph, params)
    root = int(spec.options.get("root", 0))
    return tree_broadcast_assignment(graph, root=root, lifetime=lifetime), {}


def _sample_none(
    spec: LabelModelSpec,
    graph: StaticGraph,
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> tuple[None, dict[str, Any]]:
    del spec, graph, params, rng
    return None, {}


LABEL_MODELS: dict[str, LabelSampler] = {
    "uniform": _sample_uniform,
    "box": _sample_box,
    "tree_broadcast": _sample_tree_broadcast,
    "none": _sample_none,
}


def register_label_model(name: str, sampler: LabelSampler) -> None:
    """Register a custom label model under ``name`` (must be unused)."""
    if name in LABEL_MODELS:
        raise ConfigurationError(f"label model {name!r} is already registered")
    LABEL_MODELS[name] = sampler


def sample_labels(
    spec: LabelModelSpec,
    graph: StaticGraph | None,
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> tuple[TemporalGraph | None, dict[str, Any]]:
    """Sample the label model over the built graph.

    Returns ``(network, extras)``; the network is ``None`` for the
    ``"none"`` model or when the scenario built no graph.
    """
    if spec.model not in LABEL_MODELS:
        raise ConfigurationError(
            f"unknown label model {spec.model!r}; available: {sorted(LABEL_MODELS)}"
        )
    if graph is None:
        if spec.model != "none":
            raise ConfigurationError(
                f"label model {spec.model!r} needs a graph, but the scenario's "
                "graph family is 'none'"
            )
        return None, {}
    return LABEL_MODELS[spec.model](spec, graph, params, rng)
