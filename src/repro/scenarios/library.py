"""The built-in scenario library.

Every workload the repository ships is declared here as data and registered
at import time:

* ``E1`` … ``E9`` — the scenarios behind the nine experiment entry points.
  The experiment modules (:mod:`repro.experiments`) are thin shims over these
  definitions: they run the scenario through the generic pipeline and build
  their paper-comparison reports from the result.  The scale presets
  (``*_SCALES``) live here too and are re-exported by the experiment modules
  for backwards compatibility.
* Registry-only scenarios (``hypercube-urtn-diameter``,
  ``er-fcase-reachability``) — brand-new workloads runnable purely from their
  registry definitions via ``repro-experiments scenario run``; no experiment
  module exists for them.

Adding a workload is a matter of composing one more :class:`Scenario` from
registered families, label models and metrics — see ``docs/scenarios.md``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .registry import register_scenario
from .specs import (
    GraphFamilySpec,
    LabelModelSpec,
    MetricSpec,
    MetricSuite,
    Scenario,
    ScenarioScale,
    SweepBlock,
)

__all__ = [
    "E1_SCALES",
    "E2_SCALES",
    "E3_SCALES",
    "E4_SCALES",
    "E5_SCALES",
    "E6_SCALES",
    "E7_SCALES",
    "E8_SCALES",
    "E9_SCALES",
    "FCASE_DISTRIBUTIONS",
    "star_label_grid",
]

# --------------------------------------------------------------------- #
# scale presets (formerly the SCALES dict of each experiment module)
# --------------------------------------------------------------------- #
E1_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": [16, 32, 64], "repetitions": 5, "directed": True},
    "default": {"sizes": [16, 32, 64, 128, 256], "repetitions": 15, "directed": True},
    "full": {"sizes": [16, 32, 64, 128, 256, 512], "repetitions": 25, "directed": True},
}

E2_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 32, "multipliers": [1, 2, 4], "repetitions": 5},
    "default": {"n": 64, "multipliers": [1, 2, 4, 8, 16], "repetitions": 12},
    "full": {"n": 128, "multipliers": [1, 2, 4, 8, 16, 32], "repetitions": 20},
}

E3_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": [64, 128], "repetitions": 5, "c1": 3.0, "c2": 8.0},
    "default": {"sizes": [64, 128, 256], "repetitions": 15, "c1": 3.0, "c2": 8.0},
    "full": {"sizes": [64, 128, 256, 512], "repetitions": 25, "c1": 3.0, "c2": 8.0},
}

E4_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": [16, 32, 64], "repetitions": 5, "directed": True},
    "default": {"sizes": [16, 32, 64, 128, 256], "repetitions": 15, "directed": True},
    "full": {"sizes": [32, 64, 128, 256, 512, 1024], "repetitions": 25, "directed": True},
}

E5_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": [32, 64], "repetitions": 20, "max_r_factor": 3.0},
    "default": {"sizes": [64, 128, 256], "repetitions": 40, "max_r_factor": 3.0},
    "full": {"sizes": [64, 128, 256, 512, 1024], "repetitions": 60, "max_r_factor": 3.0},
}

E6_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 16, "families": ["path", "cycle", "grid"], "trials": 10},
    "default": {
        "n": 32,
        "families": ["path", "cycle", "grid", "hypercube", "binary_tree", "erdos_renyi"],
        "trials": 20,
    },
    "full": {
        "n": 64,
        "families": ["path", "cycle", "grid", "hypercube", "binary_tree", "erdos_renyi"],
        "trials": 30,
    },
}

E7_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 64, "multipliers": [0.25, 0.5, 1.0, 1.5, 2.0], "repetitions": 20},
    "default": {
        "n": 256,
        "multipliers": [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0],
        "repetitions": 40,
    },
    "full": {
        "n": 1024,
        "multipliers": [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0],
        "repetitions": 60,
    },
}

E8_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 48, "repetitions": 5},
    "default": {"n": 128, "repetitions": 12},
    "full": {"n": 256, "repetitions": 20},
}

E9_SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 48, "labels": [1, 2, 4], "repetitions": 5},
    "default": {"n": 128, "labels": [1, 2, 4, 8], "repetitions": 12},
    "full": {"n": 256, "labels": [1, 2, 4, 8, 16], "repetitions": 20},
}

#: The F-CASE distributions compared by E8 (name → constructor kwargs).
FCASE_DISTRIBUTIONS: dict[str, dict[str, float]] = {
    "uniform": {},
    "geometric": {"q": 0.05},
    "zipf": {"exponent": 1.0},
}


def star_label_grid(n: int, max_r_factor: float) -> list[int]:
    """E5's label counts to probe: 1 … ≈ ``max_r_factor·log n`` (unique, increasing)."""
    upper = max(4, int(math.ceil(max_r_factor * math.log(n))))
    grid = sorted(set(list(range(1, min(upper, 8) + 1)) + list(
        np.unique(np.linspace(1, upper, num=min(upper, 12), dtype=int)).tolist()
    )))
    return [int(r) for r in grid]


# --------------------------------------------------------------------- #
# scenario constructors
# --------------------------------------------------------------------- #
def _normalized_clique_labels() -> LabelModelSpec:
    """One uniform label per arc from ``{1, …, n}`` — the normalized U-RTN."""
    return LabelModelSpec(model="uniform", labels_per_edge=1, lifetime="n")


def _e1() -> Scenario:
    return Scenario(
        name="E1",
        title="Temporal diameter of the normalized U-RT clique",
        description="Temporal diameter of the normalized U-RT clique (Theorem 4)",
        graph=GraphFamilySpec("clique", {"n": "n", "directed": "directed"}),
        labels=_normalized_clique_labels(),
        metrics=MetricSuite.of("distance_summary", "ratio_to_log_n", "direct_wait_baseline"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"n": list(cfg["sizes"])},
                        constants={"directed": cfg["directed"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E1_SCALES.items()
        },
        experiment_name="E1-temporal-diameter",
        default_seed=2014,
    )


def _e2() -> Scenario:
    return Scenario(
        name="E2",
        title="Temporal diameter vs. lifetime",
        description="Temporal diameter vs. lifetime (Theorem 5)",
        graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
        labels=LabelModelSpec(
            model="uniform", labels_per_edge=1, lifetime="multiplier * n"
        ),
        metrics=MetricSuite.of(
            "temporal_diameter", "theorem5_scaled_bound", "prefix_connectivity"
        ),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"multiplier": list(cfg["multipliers"])},
                        constants={"n": cfg["n"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E2_SCALES.items()
        },
        experiment_name="E2-lifetime",
        default_seed=2015,
    )


def _e3() -> Scenario:
    return Scenario(
        name="E3",
        title="Expansion Process (Algorithm 1)",
        description="Success probability and arrival time of Algorithm 1",
        graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
        labels=_normalized_clique_labels(),
        metrics=MetricSuite.of("expansion_process"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"n": list(cfg["sizes"])},
                        constants={"c1": cfg["c1"], "c2": cfg["c2"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E3_SCALES.items()
        },
        experiment_name="E3-expansion-process",
        default_seed=2016,
    )


def _e4() -> Scenario:
    return Scenario(
        name="E4",
        title="Flooding dissemination vs. the phone-call baseline",
        description="Flooding broadcast time on the hostile clique (§3.5)",
        graph=GraphFamilySpec("clique", {"n": "n", "directed": "directed"}),
        labels=_normalized_clique_labels(),
        metrics=MetricSuite.of("flood_vs_phone_call"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"n": list(cfg["sizes"])},
                        constants={"directed": cfg["directed"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E4_SCALES.items()
        },
        experiment_name="E4-dissemination",
        default_seed=2017,
    )


def _e5() -> Scenario:
    return Scenario(
        name="E5",
        title="Star graph: labels per edge and the Price of Randomness",
        description=(
            "Reachability probability of the star vs labels per edge (Theorem 6)"
        ),
        graph=GraphFamilySpec("star", {"n": "n"}),
        labels=LabelModelSpec(model="uniform", labels_per_edge="r", lifetime="n"),
        metrics=MetricSuite.of("strong_reachability"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                # The r grid depends on n, so each n is its own sweep block —
                # matching the historical per-n run_sweep calls exactly.
                blocks=tuple(
                    SweepBlock(
                        axes={"r": star_label_grid(int(n), cfg["max_r_factor"])},
                        constants={"n": int(n)},
                    )
                    for n in cfg["sizes"]
                ),
                extras=cfg,
            )
            for key, cfg in E5_SCALES.items()
        },
        experiment_name="E5-star-por",
        default_seed=2018,
    )


def _e6() -> Scenario:
    return Scenario(
        name="E6",
        title="General graphs: sufficient labels and the PoR upper bound",
        description=(
            "Theorems 7-8 audit and the box assignment across sized graph families"
        ),
        graph=GraphFamilySpec("none"),
        labels=LabelModelSpec(model="none"),
        metrics=MetricSuite.of("theorem7_por_audit"),
        scales={
            key: ScenarioScale(
                repetitions=1,
                blocks=(
                    SweepBlock(
                        axes={"family": list(cfg["families"])},
                        constants={"n": cfg["n"], "trials": cfg["trials"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E6_SCALES.items()
        },
        mode="direct",
        experiment_name="E6-general-por",
        default_seed=2019,
        rngs_per_point=4,
    )


def _e7() -> Scenario:
    return Scenario(
        name="E7",
        title="Erdős–Rényi connectivity threshold (substrate)",
        description="Connectivity of G(n, p) around the log n / n threshold",
        graph=GraphFamilySpec("none"),
        labels=LabelModelSpec(model="none"),
        metrics=MetricSuite.of("er_connectivity"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"multiplier": [float(m) for m in cfg["multipliers"]]},
                        constants={"n": cfg["n"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E7_SCALES.items()
        },
        experiment_name="E7-er-connectivity",
        default_seed=2020,
    )


def _e8() -> Scenario:
    return Scenario(
        name="E8",
        title="F-CASE: non-uniform label distributions (extension)",
        description=(
            "Temporal diameter of the clique under non-uniform label distributions"
        ),
        graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
        labels=LabelModelSpec(
            model="uniform",
            labels_per_edge=1,
            lifetime="n",
            distribution={
                "param": "distribution",
                "kwargs_by_name": FCASE_DISTRIBUTIONS,
            },
        ),
        metrics=MetricSuite.of("temporal_diameter", "flood_time", "mean_label"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"distribution": list(FCASE_DISTRIBUTIONS)},
                        constants={"n": cfg["n"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E8_SCALES.items()
        },
        experiment_name="E8-fcase",
        default_seed=2021,
    )


def _e9() -> Scenario:
    return Scenario(
        name="E9",
        title="Multi-label random cliques (extension)",
        description="Temporal diameter of the clique vs labels per edge",
        graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
        labels=LabelModelSpec(model="uniform", labels_per_edge="r", lifetime="n"),
        metrics=MetricSuite.of("distance_summary", "total_labels"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(
                    SweepBlock(
                        axes={"r": list(cfg["labels"])},
                        constants={"n": cfg["n"]},
                    ),
                ),
                extras=cfg,
            )
            for key, cfg in E9_SCALES.items()
        },
        experiment_name="E9-multilabel",
        default_seed=2022,
    )


def _hypercube_urtn_diameter() -> Scenario:
    """Registry-only workload: U-RTN temporal diameter on hypercubes.

    A brand-new grid point — high-diameter sparse family × the paper's
    normalized single-label model × the distance metric suite — assembled
    entirely from registered parts.
    """
    sizes = {"quick": [3, 4], "default": [3, 4, 5, 6], "full": [4, 5, 6, 7, 8]}
    reps = {"quick": 4, "default": 10, "full": 20}
    return Scenario(
        name="hypercube-urtn-diameter",
        title="U-RTN temporal diameter on hypercubes",
        description=(
            "Mean temporal distance, reachable fraction and connectivity rate "
            "of the hypercube Q_d under one uniform label per edge from "
            "{1, …, 2^d}"
        ),
        graph=GraphFamilySpec("hypercube", {"dimension": "dimension"}),
        labels=LabelModelSpec(model="uniform", labels_per_edge=1, lifetime="graph_n"),
        # A single label rarely connects a sparse graph (that is Theorem 6's
        # point), so the suite reads reachability-aware statistics rather than
        # the (often infinite) diameter.
        metrics=MetricSuite.of(
            MetricSpec(
                "distance_summary",
                {
                    "fields": [
                        "mean_temporal_distance",
                        "reachable_fraction",
                        "temporally_connected",
                    ]
                },
            )
        ),
        scales={
            key: ScenarioScale(
                repetitions=reps[key],
                blocks=(SweepBlock(axes={"dimension": sizes[key]}),),
            )
            for key in sizes
        },
        default_seed=2030,
    )


def _er_fcase_reachability() -> Scenario:
    """Registry-only workload: F-CASE reachability on supercritical G(n, p).

    Sparse random substrate × front-loaded geometric label distribution ×
    strong-reachability metric — the second no-new-module grid point.
    """
    grids = {
        "quick": {"n": [24, 48], "r": [1, 2, 4], "repetitions": 6},
        "default": {"n": [32, 64, 128], "r": [1, 2, 4, 8], "repetitions": 15},
        "full": {"n": [64, 128, 256], "r": [1, 2, 4, 8, 16], "repetitions": 30},
    }
    return Scenario(
        name="er-fcase-reachability",
        title="F-CASE reachability on supercritical Erdős–Rényi graphs",
        description=(
            "Probability that r geometric (q=0.05) labels per edge preserve "
            "reachability on G(n, 3·log n / n)"
        ),
        graph=GraphFamilySpec(
            "gnp_supercritical", {"n": "n", "factor": 3.0, "seed": 7}
        ),
        labels=LabelModelSpec(
            model="uniform",
            labels_per_edge="r",
            lifetime="graph_n",
            distribution={"name": "geometric", "kwargs": {"q": 0.05}},
        ),
        metrics=MetricSuite.of("strong_reachability"),
        scales={
            key: ScenarioScale(
                repetitions=cfg["repetitions"],
                blocks=(SweepBlock(axes={"n": cfg["n"], "r": cfg["r"]}),),
            )
            for key, cfg in grids.items()
        },
        default_seed=2031,
    )


def _clique_temporal_centrality() -> Scenario:
    """Registry-only workload: temporal centrality of the normalized clique.

    The paper's flagship model × the new centrality metric family — the whole
    suite is served from the one batched sweep each trial already pays for, so
    the workload exists entirely as registry data; no experiment module.
    """
    sizes = {"quick": [16, 32], "default": [16, 32, 64], "full": [32, 64, 128]}
    reps = {"quick": 4, "default": 10, "full": 20}
    return Scenario(
        name="clique-temporal-centrality",
        title="Temporal centrality of the normalized U-RT clique",
        description=(
            "Closeness, harmonic closeness and influence/reach fractions of "
            "the directed clique under one uniform label per arc from "
            "{1, …, n}"
        ),
        graph=GraphFamilySpec("clique", {"n": "n", "directed": True}),
        labels=_normalized_clique_labels(),
        metrics=MetricSuite.of(
            MetricSpec(
                "temporal_centrality",
                {
                    "fields": [
                        "mean_closeness",
                        "max_closeness",
                        "mean_harmonic_closeness",
                        "mean_influence",
                        "mean_reach",
                    ]
                },
            )
        ),
        scales={
            key: ScenarioScale(
                repetitions=reps[key],
                blocks=(SweepBlock(axes={"n": sizes[key]}),),
            )
            for key in sizes
        },
        default_seed=2032,
    )


for _factory in (
    _e1,
    _e2,
    _e3,
    _e4,
    _e5,
    _e6,
    _e7,
    _e8,
    _e9,
    _hypercube_urtn_diameter,
    _er_fcase_reachability,
    _clique_temporal_centrality,
):
    register_scenario(_factory())
