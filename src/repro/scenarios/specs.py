"""Declarative scenario specifications.

A *scenario* is one point (or sweep) on the paper's workload grid: an
underlying **graph family** × a **label model** × a **metric suite**, plus the
parameter sweep and the trial budget per scale preset.  Scenarios are plain
data — every field is built from JSON-compatible values and round-trips
through :meth:`Scenario.to_json` / :meth:`Scenario.from_json` — so a new
workload is a registry entry (or a JSON file), not a new experiment module.

Parameter expressions
---------------------
Spec fields that depend on the sweep point (a lifetime of ``"multiplier * n"``,
a label count of ``"r"``) are written as *parameter expressions*: a product of
integer literals and parameter names separated by ``*``.  They are evaluated
against the sweep point's parameters by :func:`eval_param_expr`; label models
additionally see the implicit parameters ``graph_n`` / ``graph_m`` (the built
graph's vertex / edge count), which is how a scenario says "normalized
lifetime" for families whose size is not itself a sweep parameter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "eval_param_expr",
    "normalize_param_expr",
    "GraphFamilySpec",
    "LabelModelSpec",
    "MetricSpec",
    "MetricSuite",
    "SweepBlock",
    "ScenarioScale",
    "Scenario",
]

#: Execution modes of the generic pipeline (see ``pipeline.run_scenario``).
SCENARIO_MODES = ("montecarlo", "direct")


def eval_param_expr(expr: Any, params: Mapping[str, Any]) -> Any:
    """Evaluate a parameter expression against a sweep point.

    Non-string values pass through unchanged.  Strings are interpreted as a
    ``*``-separated product whose factors are integer/float literals or
    parameter names; a single bare name resolves to the parameter value
    itself (preserving its type).

    >>> eval_param_expr("multiplier * n", {"multiplier": 4, "n": 64})
    256
    """
    if not isinstance(expr, str):
        return expr
    tokens = [token.strip() for token in expr.split("*")]
    if not tokens or any(not token for token in tokens):
        raise ConfigurationError(f"malformed parameter expression {expr!r}")
    values = []
    for token in tokens:
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            pass
        if token not in params:
            raise ConfigurationError(
                f"parameter expression {expr!r} references {token!r}, which is "
                f"not a sweep parameter; available: {sorted(map(str, params))}"
            )
        values.append(params[token])
    if len(values) == 1:
        return values[0]
    product: Any = 1
    for value in values:
        product = product * value
    return product


def normalize_param_expr(expr: Any) -> Any:
    """Canonical form of a parameter expression (for fingerprinting).

    ``"multiplier*n"``, ``"multiplier * n"`` and ``" multiplier  *  n "``
    evaluate identically, so they must fingerprint identically too.  Factor
    *order* is preserved — float products are evaluated left to right and
    reordering could change the last ulp.  Non-string values pass through
    unchanged; numeric literal tokens are normalised through ``int``/``float``
    round-trips (``"04"`` → ``"4"``).
    """
    if not isinstance(expr, str):
        return expr
    tokens = [token.strip() for token in expr.split("*")]
    if not tokens or any(not token for token in tokens):
        raise ConfigurationError(f"malformed parameter expression {expr!r}")
    canonical = []
    for token in tokens:
        try:
            canonical.append(repr(int(token)))
            continue
        except ValueError:
            pass
        try:
            canonical.append(repr(float(token)))
            continue
        except ValueError:
            pass
        canonical.append(token)
    return " * ".join(canonical)


def _plain(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Defensive shallow copy used by the ``to_dict`` serialisers."""
    return {str(key): value for key, value in mapping.items()}


@dataclass(frozen=True)
class GraphFamilySpec:
    """Which underlying static graph a scenario builds, and from what.

    ``family`` names an entry of the family registry
    (:data:`repro.scenarios.families.GRAPH_FAMILIES`); ``params`` maps the
    builder's keyword arguments to literals or parameter expressions.  The
    special family ``"none"`` skips graph construction entirely (for
    scenarios whose metric samples its own substrate, e.g. raw G(n, p)
    connectivity).
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"family": self.family, "params": _plain(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphFamilySpec":
        return cls(family=str(data["family"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class LabelModelSpec:
    """How the built graph's edges receive time labels.

    Models (see :mod:`repro.scenarios.labelmodels`):

    * ``"uniform"`` — the paper's random model: ``labels_per_edge``
      independent draws per edge, uniform over ``{1, …, lifetime}`` unless a
      ``distribution`` is given (F-CASE).  Uses the vectorised direct-to-CSR
      sampling fast path automatically.
    * ``"box"`` / ``"tree_broadcast"`` — the deterministic Section 5
      constructions.
    * ``"none"`` — no labelling stage.

    ``labels_per_edge`` and ``lifetime`` are parameter expressions;
    ``distribution`` is ``None`` or a mapping with either a fixed ``name``
    (plus ``kwargs``) or a ``param`` whose sweep value selects the name, with
    per-name ``kwargs_by_name``.
    """

    model: str = "uniform"
    labels_per_edge: Any = 1
    lifetime: Any = None
    distribution: Mapping[str, Any] | None = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "labels_per_edge": self.labels_per_edge,
            "lifetime": self.lifetime,
            "distribution": (
                _plain(self.distribution) if self.distribution is not None else None
            ),
            "options": _plain(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LabelModelSpec":
        distribution = data.get("distribution")
        return cls(
            model=str(data.get("model", "uniform")),
            labels_per_edge=data.get("labels_per_edge", 1),
            lifetime=data.get("lifetime"),
            distribution=dict(distribution) if distribution is not None else None,
            options=dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class MetricSpec:
    """One named metric of a suite, with free-form options."""

    metric: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"metric": self.metric, "options": _plain(self.options)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricSpec":
        return cls(metric=str(data["metric"]), options=dict(data.get("options", {})))


@dataclass(frozen=True)
class MetricSuite:
    """An ordered collection of metrics evaluated per trial.

    Order matters twice: metrics may consume the trial's RNG (so reordering
    changes the stream) and later metrics may read the values earlier ones
    produced (derived metrics such as ``ratio_to_log_n``).
    """

    metrics: tuple[MetricSpec, ...] = ()

    @classmethod
    def of(cls, *metrics: str | MetricSpec) -> "MetricSuite":
        """Build a suite from metric names and/or fully-specified entries."""
        return cls(
            tuple(
                metric if isinstance(metric, MetricSpec) else MetricSpec(metric)
                for metric in metrics
            )
        )

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self.metrics)

    def __len__(self) -> int:
        return len(self.metrics)

    def to_list(self) -> list[dict[str, Any]]:
        return [spec.to_dict() for spec in self.metrics]

    @classmethod
    def from_list(cls, data: Sequence[Mapping[str, Any]]) -> "MetricSuite":
        return cls(tuple(MetricSpec.from_dict(item) for item in data))


@dataclass(frozen=True)
class SweepBlock:
    """One cartesian sub-sweep: axes × constants.

    Most scenarios have a single block; scenarios whose grid depends on
    another parameter (E5's per-``n`` label-count grid) enumerate one block
    per group.  Each block becomes one
    :class:`~repro.montecarlo.sweep.ParameterSweep` run.
    """

    axes: Mapping[str, Sequence[Any]]
    constants: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "axes": {str(key): list(values) for key, values in self.axes.items()},
            "constants": _plain(self.constants),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepBlock":
        return cls(
            axes={str(k): list(v) for k, v in dict(data["axes"]).items()},
            constants=dict(data.get("constants", {})),
        )

    def points(self) -> list[dict[str, Any]]:
        """Enumerate the block's parameter points (axes product × constants)."""
        from itertools import product

        names = list(self.axes)
        out = []
        for combo in product(*(self.axes[name] for name in names)):
            point = dict(self.constants)
            point.update(zip(names, combo))
            out.append(point)
        return out


@dataclass(frozen=True)
class ScenarioScale:
    """The sweep and trial budget of one scale preset (quick/default/full).

    ``extras`` carries scale-level values that are not sweep parameters but
    that report builders want (e.g. E3's layer-trace size or E5's threshold
    target); the pipeline itself never reads them.
    """

    repetitions: int
    blocks: tuple[SweepBlock, ...]
    extras: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "repetitions": self.repetitions,
            "blocks": [block.to_dict() for block in self.blocks],
            "extras": _plain(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioScale":
        return cls(
            repetitions=int(data["repetitions"]),
            blocks=tuple(SweepBlock.from_dict(b) for b in data["blocks"]),
            extras=dict(data.get("extras", {})),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete declarative workload: graph × labels × metrics × sweep.

    Attributes
    ----------
    name:
        Registry key (``"E1"`` … ``"E9"`` for the experiment-backed
        scenarios, free-form slugs for registry-only workloads).
    title / description:
        Human-readable one-liners for listings and reports.
    graph / labels / metrics:
        The three grid coordinates.
    scales:
        Scale preset → :class:`ScenarioScale`.
    mode:
        ``"montecarlo"`` (default — trials through the parallel engine) or
        ``"direct"`` (one evaluation per sweep point with a fixed quota of
        pre-spawned RNG streams; for audit-style workloads like E6).
    experiment_name:
        Name given to the :class:`~repro.montecarlo.experiment.Experiment`
        (defaults to ``name``).
    default_seed:
        Seed used when the caller passes none.
    rngs_per_point:
        Direct mode only: independent generators handed to each point.
    """

    name: str
    title: str
    description: str
    graph: GraphFamilySpec
    labels: LabelModelSpec
    metrics: MetricSuite
    scales: Mapping[str, ScenarioScale]
    mode: str = "montecarlo"
    experiment_name: str = ""
    default_seed: int | None = None
    rngs_per_point: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.mode not in SCENARIO_MODES:
            raise ConfigurationError(
                f"scenario {self.name!r}: mode must be one of {SCENARIO_MODES}, "
                f"got {self.mode!r}"
            )
        if not self.scales:
            raise ConfigurationError(
                f"scenario {self.name!r} declares no scale presets"
            )
        if not self.metrics:
            raise ConfigurationError(
                f"scenario {self.name!r} declares no metrics"
            )
        if self.mode == "direct" and len(self.metrics) != 1:
            raise ConfigurationError(
                f"direct-mode scenario {self.name!r} must declare exactly one "
                f"metric (it owns the point's whole RNG quota), got "
                f"{len(self.metrics)}"
            )

    @property
    def scale_names(self) -> list[str]:
        """Available scale presets, sorted."""
        return sorted(self.scales)

    def scale(self, name: str) -> ScenarioScale:
        """Look up one scale preset, with a helpful error."""
        if name not in self.scales:
            raise ConfigurationError(
                f"scenario {self.name!r} has no scale {name!r}; "
                f"available: {self.scale_names}"
            )
        return self.scales[name]

    def with_axes(self, overrides: Mapping[str, Sequence[Any]], *, scale: str) -> "Scenario":
        """Return a copy whose ``scale`` preset sweeps the given axis values.

        Existing axes are replaced; names currently held constant move into
        the axes; unknown names become new axes.  This is what backs the
        ``repro-experiments scenario sweep --set axis=v1,v2`` CLI.
        """
        base = self.scale(scale)
        new_blocks = []
        for block in base.blocks:
            axes = {k: list(v) for k, v in block.axes.items()}
            constants = dict(block.constants)
            for key, values in overrides.items():
                constants.pop(key, None)
                axes[str(key)] = list(values)
            new_blocks.append(SweepBlock(axes=axes, constants=constants))
        scales = dict(self.scales)
        scales[scale] = ScenarioScale(
            repetitions=base.repetitions, blocks=tuple(new_blocks), extras=base.extras
        )
        return Scenario(
            name=self.name,
            title=self.title,
            description=self.description,
            graph=self.graph,
            labels=self.labels,
            metrics=self.metrics,
            scales=scales,
            mode=self.mode,
            experiment_name=self.experiment_name,
            default_seed=self.default_seed,
            rngs_per_point=self.rngs_per_point,
        )

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def fingerprint_payload(self) -> dict[str, Any]:
        """The pure-data identity this scenario fingerprints over.

        Covers everything that shapes the *results*: the effective experiment
        name, the three grid coordinates (with parameter expressions
        normalised via :func:`normalize_param_expr`), the scale presets, the
        mode, the default seed and the direct-mode RNG quota.  ``title`` and
        ``description`` are cosmetic and deliberately excluded — rewording a
        docstring must not orphan stored results.
        """
        return {
            "kind": "scenario-v1",
            "experiment": self.experiment_name or self.name,
            "graph": {
                "family": self.graph.family,
                "params": {
                    str(key): normalize_param_expr(value)
                    for key, value in self.graph.params.items()
                },
            },
            "labels": {
                "model": self.labels.model,
                "labels_per_edge": normalize_param_expr(self.labels.labels_per_edge),
                "lifetime": normalize_param_expr(self.labels.lifetime),
                "distribution": (
                    _plain(self.labels.distribution)
                    if self.labels.distribution is not None
                    else None
                ),
                "options": _plain(self.labels.options),
            },
            "metrics": self.metrics.to_list(),
            "scales": {key: value.to_dict() for key, value in self.scales.items()},
            "mode": self.mode,
            "default_seed": self.default_seed,
            "rngs_per_point": self.rngs_per_point,
        }

    def fingerprint(self) -> str:
        """Canonical hex digest of this workload (see :meth:`fingerprint_payload`).

        Stable across dict-key insertion order, JSON round-trips and parameter
        -expression whitespace — the artifact-store/cache key primitive.
        """
        from ..utils.fingerprint import fingerprint as _digest

        return _digest(self.fingerprint_payload())

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "graph": self.graph.to_dict(),
            "labels": self.labels.to_dict(),
            "metrics": self.metrics.to_list(),
            "scales": {key: value.to_dict() for key, value in self.scales.items()},
            "mode": self.mode,
            "experiment_name": self.experiment_name,
            "default_seed": self.default_seed,
            "rngs_per_point": self.rngs_per_point,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        return cls(
            name=str(data["name"]),
            title=str(data.get("title", data["name"])),
            description=str(data.get("description", "")),
            graph=GraphFamilySpec.from_dict(data["graph"]),
            labels=LabelModelSpec.from_dict(data["labels"]),
            metrics=MetricSuite.from_list(data["metrics"]),
            scales={
                str(key): ScenarioScale.from_dict(value)
                for key, value in dict(data["scales"]).items()
            },
            mode=str(data.get("mode", "montecarlo")),
            experiment_name=str(data.get("experiment_name", "")),
            default_seed=data.get("default_seed"),
            rngs_per_point=int(data.get("rngs_per_point", 1)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)
