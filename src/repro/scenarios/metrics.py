"""Metric registry: what a scenario measures on each sampled instance.

Two kinds of metrics exist:

* **Trial metrics** (:data:`METRICS`) run inside a Monte-Carlo trial.  They
  receive a :class:`TrialContext` — the built graph, the sampled network, the
  sweep parameters, the trial generator, the metrics accumulated so far and
  the label model's extras — and return a flat mapping of metric name to
  float.  Metrics run in suite order and may consume the trial RNG, so the
  order is part of a scenario's reproducibility contract.
* **Direct metrics** (:data:`DIRECT_METRICS`) evaluate one sweep *point* of a
  ``mode="direct"`` scenario.  They receive the point parameters plus a fixed
  quota of pre-spawned generators and return one record (values need not be
  floats); E6's Theorem 7/8 audit is the canonical example.

The trial metrics reproduce the historical per-experiment trial functions
exactly — same computations, same RNG consumption order — which is what makes
the scenario pipeline bit-identical to the legacy ``run()`` entry points
(``tests/test_scenario_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..analysis.bounds import expected_direct_wait
from ..analysis_api import NetworkAnalysis
from ..core.dissemination import flood_broadcast, push_phone_call_broadcast
from ..core.expansion import ExpansionParameters
from ..core.guarantees import (
    minimal_labels_for_reachability,
    reachability_probability,
)
from ..core.labeling import box_assignment
from ..core.lifetime import (
    prefix_connectivity_time,
    temporal_diameter_lower_bound_theorem5,
)
from ..core.price_of_randomness import (
    opt_labels_upper_bound,
    por_upper_bound_theorem8,
    price_of_randomness,
    r_sufficient_theorem7,
)
from ..core.reachability import preserves_reachability
from ..core.temporal_graph import TemporalGraph
from ..erdosrenyi.gnp import (
    giant_component_fraction,
    is_gnp_connected,
    sample_gnp_edges,
)
from ..erdosrenyi.thresholds import critical_probability
from ..exceptions import ConfigurationError
from ..graphs.properties import diameter
from ..graphs.static_graph import StaticGraph
from ..types import UNREACHABLE
from .families import build_sized_family

__all__ = [
    "TrialContext",
    "METRICS",
    "DIRECT_METRICS",
    "register_metric",
    "register_direct_metric",
]


@dataclass
class TrialContext:
    """Everything a trial metric may read (and the RNG it may consume).

    ``analysis`` is the trial's shared :class:`~repro.analysis_api.NetworkAnalysis`
    handle, built lazily by :meth:`require_analysis`: every metric of a suite
    reads the same memoized arrival structure, so a multi-metric suite costs
    one batched sweep instead of one per metric.
    """

    graph: StaticGraph | None
    network: TemporalGraph | None
    params: Mapping[str, Any]
    rng: np.random.Generator
    metrics: dict[str, float] = field(default_factory=dict)
    extras: Mapping[str, Any] = field(default_factory=dict)
    analysis: NetworkAnalysis | None = None

    def require_network(self, metric: str) -> TemporalGraph:
        """The sampled network, or a clear error for metric/model mismatches."""
        if self.network is None:
            raise ConfigurationError(
                f"metric {metric!r} needs a sampled temporal network, but the "
                "scenario's label model produced none"
            )
        return self.network

    def require_analysis(self, metric: str) -> NetworkAnalysis:
        """The trial's shared analysis handle over the sampled network.

        Built on first use and reused by every later metric of the suite, so
        shared artifacts (the batched arrival sweep above all) are computed at
        most once per trial.  Raises the same
        :class:`~repro.exceptions.ConfigurationError` as
        :meth:`require_network` when the label model produced no network.
        """
        network = self.require_network(metric)
        if self.analysis is None:
            self.analysis = NetworkAnalysis(network)
        return self.analysis


MetricFunction = Callable[[TrialContext, Mapping[str, Any]], Mapping[str, float]]
DirectMetricFunction = Callable[
    [Mapping[str, Any], Sequence[np.random.Generator], Mapping[str, Any]],
    dict[str, Any],
]


# --------------------------------------------------------------------- #
# trial metrics
# --------------------------------------------------------------------- #
#: Fields the ``distance_summary`` metric can emit, as name → extractor.
_DISTANCE_FIELDS = {
    "temporal_diameter": lambda s: float(s.diameter),
    "mean_temporal_distance": lambda s: s.average_distance,
    "temporal_radius": lambda s: float(s.radius),
    "reachable_fraction": lambda s: s.reachable_fraction,
    "temporally_connected": lambda s: 1.0 if s.diameter < UNREACHABLE else 0.0,
}


def _metric_distance_summary(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """All-pairs distance statistics from one batched sweep.

    ``options["fields"]`` selects which statistics to emit (default: the
    temporal diameter and the mean distance over reachable pairs); all come
    from the trial's shared :class:`~repro.analysis_api.NetworkAnalysis`
    handle, i.e. from one memoized batched sweep.

    ``options["mode"]`` picks the compute path: ``"dense"`` (the memoized
    full-matrix sweep), ``"blocked"`` (the out-of-core tiled engine of
    :mod:`repro.core.blocked_sweeps`, ``O(n · tile_size)`` memory), or the
    default ``"auto"`` — dense unless an ambient tile size is installed (the
    CLI's ``--tile-size`` flag), in which case blocked.  The two paths are
    bit-identical, so the mode only changes the memory profile.
    ``options["tile_size"]`` overrides the tile width in blocked mode.
    """
    from ..core import blocked_sweeps

    mode = options.get("mode", "auto")
    if mode not in ("auto", "dense", "blocked"):
        raise ConfigurationError(
            f"distance_summary mode must be 'auto', 'dense' or 'blocked', "
            f"got {mode!r}"
        )
    tile_size = options.get("tile_size")
    if mode == "blocked" or (
        mode == "auto"
        and (tile_size is not None or blocked_sweeps.default_tile_size() is not None)
    ):
        summary = ctx.require_analysis("distance_summary").streamed_distance_summary(
            tile_size=None if tile_size is None else int(tile_size)
        )
    else:
        summary = ctx.require_analysis("distance_summary").summary
    fields = options.get("fields", ["temporal_diameter", "mean_temporal_distance"])
    out: dict[str, float] = {}
    for name in fields:
        if name not in _DISTANCE_FIELDS:
            raise ConfigurationError(
                f"distance_summary has no field {name!r}; "
                f"available: {sorted(_DISTANCE_FIELDS)}"
            )
        out[name] = _DISTANCE_FIELDS[name](summary)
    return out


#: Fields the ``temporal_centrality`` metric can emit, as name → extractor.
#: Each extractor receives the trial's shared analysis handle; influence and
#: reach counts are normalised to fractions of the ``n − 1`` possible partners
#: so the statistics are comparable across scales.
_CENTRALITY_FIELDS = {
    "mean_closeness": lambda a: float(a.closeness().mean()),
    "max_closeness": lambda a: float(a.closeness().max()),
    "mean_harmonic_closeness": lambda a: float(a.harmonic_closeness().mean()),
    "max_harmonic_closeness": lambda a: float(a.harmonic_closeness().max()),
    "mean_influence": lambda a: float(
        a.influence_counts().mean() / max(a.n - 1, 1)
    ),
    "min_influence": lambda a: float(
        a.influence_counts().min() / max(a.n - 1, 1)
    ),
    "mean_reach": lambda a: float(a.reach_counts().mean() / max(a.n - 1, 1)),
    "min_reach": lambda a: float(a.reach_counts().min() / max(a.n - 1, 1)),
}


def _metric_temporal_centrality(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Per-vertex temporal-centrality statistics from one shared pass.

    ``options["fields"]`` selects which statistics to emit (default: the mean
    closeness, harmonic closeness and influence fraction); the whole family is
    derived together from the trial's shared analysis handle, so adding more
    fields never costs another sweep.
    """
    analysis = ctx.require_analysis("temporal_centrality")
    fields = options.get(
        "fields", ["mean_closeness", "mean_harmonic_closeness", "mean_influence"]
    )
    out: dict[str, float] = {}
    for name in fields:
        if name not in _CENTRALITY_FIELDS:
            raise ConfigurationError(
                f"temporal_centrality has no field {name!r}; "
                f"available: {sorted(_CENTRALITY_FIELDS)}"
            )
        out[name] = _CENTRALITY_FIELDS[name](analysis)
    return out


def _metric_temporal_diameter(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Just the exact temporal diameter of the instance."""
    del options
    return {
        "temporal_diameter": float(
            ctx.require_analysis("temporal_diameter").diameter
        )
    }


def _metric_ratio_to_log_n(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """``temporal_diameter / log n`` — the Theorem 4 constant-γ check."""
    source = str(options.get("of", "temporal_diameter"))
    n = ctx.require_network("ratio_to_log_n").n
    return {"ratio_to_log_n": ctx.metrics[source] / math.log(n)}


def _metric_direct_wait_baseline(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """The ≈ n/2 expected wait of a single direct edge (the paper's foil)."""
    del options
    return {
        "direct_wait_baseline": expected_direct_wait(
            ctx.require_network("direct_wait_baseline").n
        )
    }


def _metric_theorem5_bound(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """The ``(a/n)·log n`` scale of the Theorem 5 lower bound."""
    del options
    network = ctx.require_network("theorem5_scaled_bound")
    return {
        "scaled_bound": temporal_diameter_lower_bound_theorem5(
            network.n, network.lifetime
        )
    }


def _metric_prefix_connectivity(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Per-instance certified TD lower bound (emitted only when finite)."""
    del options
    prefix = prefix_connectivity_time(ctx.require_network("prefix_connectivity"))
    if prefix < UNREACHABLE:
        return {"prefix_connectivity_time": float(prefix)}
    return {}


def _metric_expansion_process(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Algorithm 1 between a random pair, plus the exact foremost arrival."""
    del options
    analysis = ctx.require_analysis("expansion_process")
    n = analysis.n
    parameters = ExpansionParameters.suggest(
        n,
        c1=float(ctx.params.get("c1", 3.0)),
        c2=float(ctx.params.get("c2", 8.0)),
    )
    source, target = ctx.rng.choice(n, size=2, replace=False)
    result = analysis.expansion(int(source), int(target), parameters)
    metrics: dict[str, float] = {
        "success": 1.0 if result.success else 0.0,
        "time_bound": result.time_bound,
        "final_forward_layer": float(result.forward_layer_sizes[-1]),
        "final_backward_layer": float(result.backward_layer_sizes[-1]),
        "sqrt_n": math.sqrt(n),
    }
    if result.success and result.journey is not None:
        metrics["arrival_time"] = float(result.arrival_time)
        metrics["journey_hops"] = float(result.journey.hops)
        metrics["optimal_arrival"] = float(
            analysis.distance(int(source), int(target))
        )
    return metrics


def _metric_flood_vs_phone_call(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """§3.5 flooding from a random source next to the phone-call push baseline."""
    del options
    network = ctx.require_network("flood_vs_phone_call")
    n = network.n
    source = int(ctx.rng.integers(0, n))
    flood = flood_broadcast(network, source)
    phone = push_phone_call_broadcast(n, source=source, seed=ctx.rng)
    metrics: dict[str, float] = {
        "flood_completed": 1.0 if flood.completed else 0.0,
        "flood_transmissions": float(flood.num_transmissions),
        "phone_rounds": float(phone.broadcast_time if phone.completed else UNREACHABLE),
        "phone_transmissions": float(phone.num_transmissions),
    }
    if flood.completed:
        metrics["flood_broadcast_time"] = float(flood.broadcast_time)
    return metrics


def _metric_flood_time(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Flooding broadcast time from a random source (no baseline run)."""
    del options
    network = ctx.require_network("flood_time")
    broadcast = flood_broadcast(network, source=int(ctx.rng.integers(0, network.n)))
    return {"broadcast_time": float(broadcast.broadcast_time)}


def _metric_strong_reachability(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Does the sampled assignment preserve the graph's reachability?"""
    del options
    return {
        "reachable": 1.0
        if ctx.require_analysis("strong_reachability").preserves_reachability()
        else 0.0
    }


def _metric_mean_label(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """Expected label of the resolved F-CASE distribution (a constant per point)."""
    del options
    distribution = ctx.extras.get("distribution")
    if distribution is None:
        raise ConfigurationError(
            "metric 'mean_label' needs a label model with an explicit "
            "distribution (the F-CASE)"
        )
    return {"mean_label": distribution.mean()}


def _metric_total_labels(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """The paper's cost measure ``Σ_e |L_e|`` of the sampled instance."""
    del options
    return {"total_labels": float(ctx.require_network("total_labels").total_labels)}


def _metric_er_connectivity(
    ctx: TrialContext, options: Mapping[str, Any]
) -> dict[str, float]:
    """One G(n, p) draw at ``p = multiplier·log n / n``: connectivity + giant.

    Samples its own substrate (raw edge arrays, no ``StaticGraph``), so it is
    used with the ``"none"`` graph family and label model.
    """
    del options
    n = int(ctx.params["n"])
    multiplier = float(ctx.params["multiplier"])
    p = min(1.0, multiplier * critical_probability(n))
    edges_u, edges_v = sample_gnp_edges(n, p, seed=ctx.rng)
    return {
        "connected": 1.0 if is_gnp_connected(n, edges_u, edges_v) else 0.0,
        "giant_fraction": giant_component_fraction(n, edges_u, edges_v),
        "p": p,
    }


METRICS: dict[str, MetricFunction] = {
    "distance_summary": _metric_distance_summary,
    "temporal_centrality": _metric_temporal_centrality,
    "temporal_diameter": _metric_temporal_diameter,
    "ratio_to_log_n": _metric_ratio_to_log_n,
    "direct_wait_baseline": _metric_direct_wait_baseline,
    "theorem5_scaled_bound": _metric_theorem5_bound,
    "prefix_connectivity": _metric_prefix_connectivity,
    "expansion_process": _metric_expansion_process,
    "flood_vs_phone_call": _metric_flood_vs_phone_call,
    "flood_time": _metric_flood_time,
    "strong_reachability": _metric_strong_reachability,
    "mean_label": _metric_mean_label,
    "total_labels": _metric_total_labels,
    "er_connectivity": _metric_er_connectivity,
}


# --------------------------------------------------------------------- #
# direct metrics (one evaluation per sweep point)
# --------------------------------------------------------------------- #
def _direct_theorem7_por_audit(
    params: Mapping[str, Any],
    rngs: Sequence[np.random.Generator],
    options: Mapping[str, Any],
) -> dict[str, Any]:
    """The E6 audit of Theorems 7–8 and Claim 1 on one sized graph family.

    Consumes exactly four generators, in order: sufficient-``r`` reachability
    probe, quarter-``r`` probe, empirical threshold search, randomized box
    assignment.
    """
    del options
    if len(rngs) != 4:
        raise ConfigurationError(
            f"theorem7_por_audit needs exactly 4 RNG streams, got {len(rngs)}"
        )
    rng_iter = iter(rngs)
    family = str(params["family"])
    n_target = int(params["n"])
    trials = int(params["trials"])

    graph = build_sized_family(family, n_target)
    n = graph.n
    m = graph.m
    d = diameter(graph)
    r_theorem7 = r_sufficient_theorem7(n, d)
    r_sufficient = max(1, int(math.ceil(r_theorem7)) + 1)
    lifetime = n

    prob_at_sufficient = reachability_probability(
        graph, r_sufficient, lifetime=lifetime, trials=trials, seed=next(rng_iter)
    )
    r_quarter = max(1, r_sufficient // 4)
    prob_at_quarter = reachability_probability(
        graph, r_quarter, lifetime=lifetime, trials=trials, seed=next(rng_iter)
    )
    r_hat = minimal_labels_for_reachability(
        graph,
        target_probability=0.9,
        lifetime=lifetime,
        trials=trials,
        r_max=4 * r_sufficient,
        seed=next(rng_iter),
    )
    opt_bound = opt_labels_upper_bound(graph)
    measured_por = price_of_randomness(graph, r_hat, opt=opt_bound)
    theorem8_bound = por_upper_bound_theorem8(n, m, d)

    # Claim 1 / Figure 3: the deterministic box assignment, randomized reading.
    box_network = box_assignment(
        graph, lifetime=max(n, d), mode="random", seed=next(rng_iter)
    )
    box_ok = preserves_reachability(box_network)

    return {
        "family": family,
        "n": n,
        "m": m,
        "diameter": d,
        "r_theorem7_=2d·log n": r_theorem7,
        "P[T_reach]_at_r_sufficient": prob_at_sufficient,
        "P[T_reach]_at_r/4": prob_at_quarter,
        "empirical_r_hat": r_hat,
        "measured_PoR": measured_por,
        "theorem8_PoR_bound": theorem8_bound,
        "box_assignment_preserves_reachability": box_ok,
    }


DIRECT_METRICS: dict[str, DirectMetricFunction] = {
    "theorem7_por_audit": _direct_theorem7_por_audit,
}


def register_metric(name: str, fn: MetricFunction) -> None:
    """Register a custom trial metric under ``name`` (must be unused)."""
    if name in METRICS:
        raise ConfigurationError(f"metric {name!r} is already registered")
    METRICS[name] = fn


def register_direct_metric(name: str, fn: DirectMetricFunction) -> None:
    """Register a custom direct (per-point) metric under ``name``."""
    if name in DIRECT_METRICS:
        raise ConfigurationError(f"direct metric {name!r} is already registered")
    DIRECT_METRICS[name] = fn
