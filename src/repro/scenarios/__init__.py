"""Declarative scenario subsystem: one pipeline for every workload.

The paper's results live on a grid — a graph family × a random label model ×
a temporal metric.  This subpackage makes that grid first-class:

* :mod:`repro.scenarios.specs` — :class:`GraphFamilySpec`,
  :class:`LabelModelSpec`, :class:`MetricSuite` and the composable
  :class:`Scenario` dataclass with JSON round-trip serialisation;
* :mod:`repro.scenarios.families` / :mod:`~repro.scenarios.labelmodels` /
  :mod:`~repro.scenarios.metrics` — the three registries a scenario composes;
* :mod:`repro.scenarios.pipeline` — :func:`run_scenario`, the single generic
  execution path (Monte-Carlo runner + parallel engine + batched kernels);
* :mod:`repro.scenarios.registry` — the named-scenario catalogue;
* :mod:`repro.scenarios.library` — the built-in definitions: the nine
  experiment-backed scenarios ``E1`` … ``E9`` plus registry-only workloads.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario
    result = run_scenario(get_scenario("hypercube-urtn-diameter"),
                          scale="quick", seed=7, jobs=2)
    for record in result.to_records():
        print(record)
"""

from .specs import (
    GraphFamilySpec,
    LabelModelSpec,
    MetricSpec,
    MetricSuite,
    Scenario,
    ScenarioScale,
    SweepBlock,
    eval_param_expr,
    normalize_param_expr,
)
from .families import GRAPH_FAMILIES, SIZED_FAMILIES, register_family
from .labelmodels import LABEL_MODELS, register_label_model
from .metrics import (
    DIRECT_METRICS,
    METRICS,
    TrialContext,
    register_direct_metric,
    register_metric,
)
from .pipeline import ScenarioRun, ScenarioTrial, run_scenario
from .registry import (
    experiment_scenarios,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from . import library  # noqa: F401  (registers the built-in scenarios)

__all__ = [
    # specs
    "GraphFamilySpec",
    "LabelModelSpec",
    "MetricSpec",
    "MetricSuite",
    "Scenario",
    "ScenarioScale",
    "SweepBlock",
    "eval_param_expr",
    "normalize_param_expr",
    # registries
    "GRAPH_FAMILIES",
    "SIZED_FAMILIES",
    "LABEL_MODELS",
    "METRICS",
    "DIRECT_METRICS",
    "TrialContext",
    "register_family",
    "register_label_model",
    "register_metric",
    "register_direct_metric",
    "register_scenario",
    # pipeline
    "ScenarioRun",
    "ScenarioTrial",
    "run_scenario",
    # registry
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "experiment_scenarios",
]
