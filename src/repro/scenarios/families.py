"""Graph family registry for the declarative scenario layer.

Each entry maps a family name to a builder taking keyword arguments; a
:class:`~repro.scenarios.specs.GraphFamilySpec` resolves its ``params``
(literals or parameter expressions) against the sweep point and calls the
builder.  Graph construction never consumes trial randomness — families that
sample (Erdős–Rényi) take an explicit structural ``seed`` parameter — so the
built graphs are cached per resolved parameter tuple across trials.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Any, Callable, Mapping

from ..exceptions import ConfigurationError
from ..graphs.generators import (
    barbell_graph,
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    star_graph,
    supercritical_erdos_renyi,
    wheel_graph,
)
from ..graphs.static_graph import StaticGraph
from .specs import GraphFamilySpec, eval_param_expr

__all__ = [
    "GRAPH_FAMILIES",
    "SIZED_FAMILIES",
    "register_family",
    "build_family",
    "build_sized_family",
    "build_graph",
]

#: Family name → builder.  Builders accept keyword arguments only.
GRAPH_FAMILIES: dict[str, Callable[..., StaticGraph]] = {
    "clique": lambda n, directed=False: complete_graph(int(n), directed=bool(directed)),
    "star": lambda n: star_graph(int(n)),
    "path": lambda n: path_graph(int(n)),
    "cycle": lambda n: cycle_graph(int(n)),
    "grid": lambda rows, cols: grid_graph(int(rows), int(cols)),
    "hypercube": lambda dimension: hypercube_graph(int(dimension)),
    "complete_bipartite": lambda a, b: complete_bipartite_graph(int(a), int(b)),
    "binary_tree": lambda depth: binary_tree(int(depth)),
    "wheel": lambda n: wheel_graph(int(n)),
    "barbell": lambda clique_size, bridge_length=0: barbell_graph(
        int(clique_size), int(bridge_length)
    ),
    "lollipop": lambda clique_size, path_length: lollipop_graph(
        int(clique_size), int(path_length)
    ),
    # Sampling families default to a fixed structural seed: graph construction
    # must be a deterministic function of the resolved params (the cache and
    # the cross-worker bit-identity contract both depend on it).  Scenarios
    # wanting a different substrate pass an explicit integer seed.
    "erdos_renyi": lambda n, p, directed=False, seed=7: erdos_renyi_graph(
        int(n), float(p), directed=bool(directed), seed=int(seed)
    ),
    "gnp_supercritical": lambda n, factor=3.0, seed=7: supercritical_erdos_renyi(
        int(n), factor=float(factor), seed=int(seed)
    ),
}

#: Families addressable by a single approximate size ``n`` — the E6 grid.
#: Non-rectangular families round ``n`` to the nearest feasible shape.
SIZED_FAMILIES: dict[str, Callable[[int], StaticGraph]] = {
    "path": lambda n: path_graph(n),
    "cycle": lambda n: cycle_graph(n),
    "grid": lambda n: grid_graph(
        max(2, int(round(math.sqrt(n)))), max(2, int(round(math.sqrt(n))))
    ),
    "hypercube": lambda n: hypercube_graph(max(2, int(round(math.log2(n))))),
    "binary_tree": lambda n: binary_tree(max(2, int(math.floor(math.log2(n + 1))) - 1)),
    "erdos_renyi": lambda n: erdos_renyi_graph(n, min(1.0, 3.0 * math.log(n) / n), seed=7),
}


def register_family(name: str, builder: Callable[..., StaticGraph]) -> None:
    """Register a custom graph family under ``name`` (must be unused)."""
    if name in GRAPH_FAMILIES or name == "none":
        raise ConfigurationError(f"graph family {name!r} is already registered")
    GRAPH_FAMILIES[name] = builder


def build_family(family: str, **params: Any) -> StaticGraph:
    """Build a registered family with already-resolved parameters."""
    if family not in GRAPH_FAMILIES:
        raise ConfigurationError(
            f"unknown graph family {family!r}; available: {sorted(GRAPH_FAMILIES)}"
        )
    return GRAPH_FAMILIES[family](**params)


def build_sized_family(family: str, n: int) -> StaticGraph:
    """Build a :data:`SIZED_FAMILIES` member at approximate size ``n``."""
    if family not in SIZED_FAMILIES:
        raise ConfigurationError(
            f"unknown sized family {family!r}; available: {sorted(SIZED_FAMILIES)}"
        )
    return SIZED_FAMILIES[family](int(n))


@lru_cache(maxsize=128)
def _cached_build(family: str, frozen_params: tuple[tuple[str, Any], ...]) -> StaticGraph:
    return build_family(family, **dict(frozen_params))


def build_graph(spec: GraphFamilySpec, params: Mapping[str, Any]) -> StaticGraph | None:
    """Resolve a family spec against a sweep point and build (or reuse) the graph.

    Returns ``None`` for the ``"none"`` family.  Because builders are
    deterministic functions of their resolved parameters, results are cached —
    Monte-Carlo trials at the same sweep point share one immutable
    :class:`~repro.graphs.static_graph.StaticGraph` instead of rebuilding it
    per trial.
    """
    if spec.family == "none":
        return None
    resolved = {
        key: eval_param_expr(value, params) for key, value in spec.params.items()
    }
    try:
        frozen = tuple(sorted(resolved.items()))
        return _cached_build(spec.family, frozen)
    except TypeError:
        # Unhashable parameter values: build without the cache.
        return build_family(spec.family, **resolved)
