"""The generic scenario pipeline: one runner for every declarative workload.

:func:`run_scenario` is the single execution path behind all nine experiment
entry points *and* every registry-only scenario:

* **montecarlo mode** — each sweep block becomes a
  :class:`~repro.montecarlo.sweep.ParameterSweep` executed by a
  :class:`~repro.montecarlo.runner.MonteCarloRunner`, which delegates fixed
  budgets to the parallel engine.  All engine options pass straight through:
  ``jobs``/``executor`` fan trials out over worker processes,
  ``checkpoint_dir`` enables crash/resume, ``aggregation="streaming"`` ships
  O(1) accumulators — with results bit-identical across all of them.
* **direct mode** — each sweep point is evaluated once by the scenario's
  single direct metric with a fixed quota of pre-spawned generators; points
  are independent, so ``jobs=N`` maps them over a process pool with results
  identical to the serial order.

The per-trial work is :class:`ScenarioTrial` — a picklable callable built
from the scenario's declarative specs: build (or reuse) the graph, sample the
label model with the trial generator, evaluate the metric suite in order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .. import telemetry
from ..engine.accumulators import DEFAULT_RESERVOIR_CAPACITY
from ..engine.driver import ProgressCallback
from ..engine.executors import Executor, MultiprocessExecutor, resolve_executor
from ..exceptions import ConfigurationError
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.experiment import Experiment
from ..montecarlo.results import SweepResult, TrialResult
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.sweep import ParameterSweep
from ..utils.logging import get_logger
from ..utils.seeding import SeedLike, spawn_rngs
from .families import build_graph
from .labelmodels import sample_labels
from .metrics import DIRECT_METRICS, METRICS, TrialContext
from .specs import MetricSpec, Scenario

__all__ = ["ScenarioTrial", "ScenarioRun", "run_scenario"]

_LOGGER = get_logger("scenarios.pipeline")


class ScenarioTrial:
    """Picklable trial callable generated from a scenario's declarative specs.

    Instances satisfy the :data:`~repro.montecarlo.experiment.TrialFunction`
    protocol, so they can be handed to :class:`Experiment` directly — the
    multiprocess executor pickles the scenario (plain data) rather than a
    closure.
    """

    __slots__ = ("scenario",)

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario

    def __call__(
        self, params: Mapping[str, Any], rng: np.random.Generator
    ) -> dict[str, float]:
        with telemetry.span("scenario.trial", scenario=self.scenario.name):
            recs = telemetry.active()
            stamp = time.perf_counter() if recs else 0.0
            graph = build_graph(self.scenario.graph, params)
            if recs:
                now = time.perf_counter()
                for rec in recs:
                    rec.counter("scenario.trials")
                    rec.observe_ms("scenario.graph_build_ms", (now - stamp) * 1e3)
                stamp = now
            network, extras = sample_labels(self.scenario.labels, graph, params, rng)
            if recs:
                now = time.perf_counter()
                for rec in recs:
                    rec.observe_ms("scenario.label_sampling_ms", (now - stamp) * 1e3)
            ctx = TrialContext(
                graph=graph, network=network, params=params, rng=rng, extras=extras
            )
            for spec in self.scenario.metrics:
                fn = METRICS.get(spec.metric)
                if fn is None:
                    raise ConfigurationError(
                        f"scenario {self.scenario.name!r} references unknown metric "
                        f"{spec.metric!r}; available: {sorted(METRICS)}"
                    )
                with telemetry.span(f"scenario.metric.{spec.metric}"):
                    ctx.metrics.update(fn(ctx, spec.options))
            return dict(ctx.metrics)

    def __getstate__(self) -> Scenario:
        return self.scenario

    def __setstate__(self, state: Scenario) -> None:
        self.scenario = state

    def __repr__(self) -> str:
        return f"ScenarioTrial({self.scenario.name!r})"


@dataclass
class ScenarioRun:
    """Everything one :func:`run_scenario` call produced.

    ``sweeps`` holds one :class:`~repro.montecarlo.results.SweepResult` per
    sweep block in montecarlo mode; ``records`` holds one mapping per sweep
    point in direct mode.  :meth:`to_records` flattens either shape into the
    flat-record form the :mod:`repro.io` serialisers and the CLI table
    renderer consume.
    """

    scenario: Scenario
    scale: str
    seed: SeedLike
    sweeps: list[SweepResult] = field(default_factory=list)
    records: list[dict[str, Any]] = field(default_factory=list)

    @property
    def sweep(self) -> SweepResult:
        """The single sweep result of a one-block montecarlo scenario."""
        if len(self.sweeps) != 1:
            raise ConfigurationError(
                f"scenario {self.scenario.name!r} produced {len(self.sweeps)} "
                "sweep blocks; index .sweeps explicitly"
            )
        return self.sweeps[0]

    def points(self) -> Iterator[TrialResult]:
        """Iterate every trial result across all sweep blocks, in order."""
        for sweep in self.sweeps:
            yield from sweep

    def to_records(self) -> list[dict[str, Any]]:
        """Flat records: parameters plus per-metric summary statistics."""
        if self.scenario.mode == "direct":
            return [dict(record) for record in self.records]
        return [point.as_record() for point in self.points()]


def _block_checkpoint_dir(
    checkpoint_dir: str | os.PathLike[str] | None, index: int, total: int
) -> str | os.PathLike[str] | None:
    if checkpoint_dir is None or total == 1:
        return checkpoint_dir
    return os.path.join(os.fspath(checkpoint_dir), f"block-{index:02d}")


def _evaluate_direct_point(
    args: tuple[MetricSpec, dict[str, Any], list[np.random.Generator]],
) -> dict[str, Any]:
    """Worker entry point for direct-mode points (module-level: picklable)."""
    spec, point, rngs = args
    with telemetry.span(f"scenario.metric.{spec.metric}"):
        return DIRECT_METRICS[spec.metric](point, rngs, spec.options)


def _run_direct(
    scenario: Scenario,
    scale: str,
    seed: SeedLike,
    jobs: int | None,
    executor: Executor | None,
) -> ScenarioRun:
    scale_cfg = scenario.scale(scale)
    points: list[dict[str, Any]] = []
    for block in scale_cfg.blocks:
        points.extend(block.points())
    spec = scenario.metrics.metrics[0]
    if spec.metric not in DIRECT_METRICS:
        raise ConfigurationError(
            f"scenario {scenario.name!r} references unknown direct metric "
            f"{spec.metric!r}; available: {sorted(DIRECT_METRICS)}"
        )
    quota = scenario.rngs_per_point
    rngs = spawn_rngs(seed, quota * len(points))
    work = [
        (spec, point, rngs[index * quota : (index + 1) * quota])
        for index, point in enumerate(points)
    ]
    chosen = resolve_executor(executor, jobs)
    workers = chosen.jobs
    with telemetry.span(
        "scenario.run", scenario=scenario.name, scale=scale, mode="direct"
    ):
        if workers > 1 and len(work) > 1:
            # Points own pre-spawned generator slices, so farming them out cannot
            # change any stream; map() preserves point order.  An explicit
            # MultiprocessExecutor's start-method choice is honoured (a caller who
            # picked "spawn" because forking their parent is unsafe must get
            # spawn); otherwise default to MultiprocessExecutor's own platform
            # logic rather than re-deriving it here.
            # Telemetry caveat: these pooled workers record into fork-inherited
            # recorder copies (or none under spawn) that are never shipped
            # back, so direct-mode points parallelised this way contribute no
            # per-point telemetry — unlike the engine's shard transport.
            if isinstance(chosen, MultiprocessExecutor):
                start_method = chosen.start_method
            else:
                start_method = MultiprocessExecutor(workers).start_method
            context = multiprocessing.get_context(start_method)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(work)), mp_context=context
            ) as pool:
                records = list(pool.map(_evaluate_direct_point, work))
        else:
            records = [_evaluate_direct_point(item) for item in work]
        for rec in telemetry.active():
            rec.counter("scenario.direct_points", len(work))
    return ScenarioRun(scenario=scenario, scale=scale, seed=seed, records=records)


def run_scenario(
    scenario: Scenario,
    *,
    scale: str = "default",
    seed: SeedLike = None,
    jobs: int | None = None,
    executor: Executor | None = None,
    shard_size: int | None = None,
    checkpoint_dir: str | os.PathLike[str] | None = None,
    progress: ProgressCallback | None = None,
    aggregation: str = "full",
    reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
) -> ScenarioRun:
    """Run a scenario at a scale preset through the generic pipeline.

    Parameters mirror :class:`~repro.montecarlo.runner.MonteCarloRunner`:
    ``jobs=N`` (or an explicit ``executor``) fans work out over worker
    processes with bit-identical results, ``checkpoint_dir`` persists
    completed shards for crash/resume, ``aggregation="streaming"`` keeps O(1)
    state per metric.  ``seed=None`` falls back to the scenario's
    ``default_seed``.

    Returns
    -------
    ScenarioRun
        Sweep results (montecarlo mode) or point records (direct mode).
    """
    if seed is None:
        seed = scenario.default_seed
    if scenario.mode == "direct":
        montecarlo_only = []
        if shard_size is not None:
            montecarlo_only.append("shard_size")
        if checkpoint_dir is not None:
            montecarlo_only.append("checkpoint_dir")
        if progress is not None:
            montecarlo_only.append("progress")
        if aggregation != "full":
            montecarlo_only.append("aggregation")
        if reservoir_capacity != DEFAULT_RESERVOIR_CAPACITY:
            montecarlo_only.append("reservoir_capacity")
        if montecarlo_only:
            raise ConfigurationError(
                f"{', '.join(montecarlo_only)} apply to montecarlo-mode "
                f"scenarios; {scenario.name!r} runs in direct mode"
            )
        return _run_direct(scenario, scale, seed, jobs, executor)

    scale_cfg = scenario.scale(scale)
    experiment = Experiment(
        name=scenario.experiment_name or scenario.name,
        trial=ScenarioTrial(scenario),
        description=scenario.description,
    )
    shared_executor = resolve_executor(executor, jobs)
    run = ScenarioRun(scenario=scenario, scale=scale, seed=seed)
    total_blocks = len(scale_cfg.blocks)
    with telemetry.span(
        "scenario.run", scenario=scenario.name, scale=scale, mode="montecarlo"
    ):
        for index, block in enumerate(scale_cfg.blocks):
            runner = MonteCarloRunner(
                stopping=FixedBudgetStopping(scale_cfg.repetitions),
                seed=seed,
                executor=shared_executor,
                shard_size=shard_size,
                checkpoint_dir=_block_checkpoint_dir(
                    checkpoint_dir, index, total_blocks
                ),
                progress=progress,
                aggregation=aggregation,
                reservoir_capacity=reservoir_capacity,
            )
            sweep = ParameterSweep(
                {key: list(values) for key, values in block.axes.items()},
                constants=dict(block.constants),
            )
            with telemetry.span("scenario.block", index=index):
                run.sweeps.append(runner.run_sweep(experiment, sweep))
            _LOGGER.debug(
                "scenario %s: finished block %d/%d",
                scenario.name,
                index + 1,
                total_blocks,
            )
    return run
