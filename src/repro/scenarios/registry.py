"""The scenario registry: name → :class:`~repro.scenarios.specs.Scenario`.

The registry is the single catalogue of runnable workloads.  The nine
experiment-backed scenarios (``E1`` … ``E9``) are registered by
:mod:`repro.scenarios.library` at import time, alongside the registry-only
scenarios that have no experiment module at all; user code can add more with
:func:`register_scenario` (see ``examples/custom_scenario.py``).
"""

from __future__ import annotations

import re

from ..exceptions import ConfigurationError
from .specs import Scenario

__all__ = [
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "experiment_scenarios",
]

_REGISTRY: dict[str, Scenario] = {}

#: Names of the scenarios that back a DESIGN.md experiment id.
_EXPERIMENT_ID = re.compile(r"^E\d+$")


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (and return it, for chaining).

    Names are case-sensitive as stored but looked up case-insensitively, so
    two scenarios may not differ only in case.
    """
    key = scenario.name
    clash = _lookup_key(key)
    if clash is not None and not replace:
        raise ConfigurationError(
            f"scenario {key!r} is already registered (as {clash!r}); "
            "pass replace=True to override"
        )
    if clash is not None and clash != key:
        del _REGISTRY[clash]
    _REGISTRY[key] = scenario
    return scenario


def _lookup_key(name: str) -> str | None:
    if name in _REGISTRY:
        return name
    folded = name.strip().lower()
    for key in _REGISTRY:
        if key.lower() == folded:
            return key
    return None


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (case-insensitive)."""
    key = _lookup_key(name)
    if key is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return _REGISTRY[key]


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def experiment_scenarios() -> dict[str, Scenario]:
    """The experiment-backed subset: scenarios named like ``E<number>``."""
    return {
        name: scenario
        for name, scenario in sorted(_REGISTRY.items())
        if _EXPERIMENT_ID.match(name)
    }
