"""Persist experiment records — and scenario definitions — as CSV or JSON.

Records are flat mappings (the output of
:func:`repro.montecarlo.results_to_records` or
:meth:`repro.scenarios.ScenarioRun.to_records`); round-tripping through these
helpers is lossless up to the usual CSV string/number ambiguity, which the
reader resolves by attempting numeric conversion.

Scenario definitions (:class:`repro.scenarios.Scenario`) are pure data and
round-trip losslessly: :func:`write_scenario_json` /
:func:`read_scenario_json` let a workload live in a versioned JSON file
instead of Python code.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..exceptions import SerializationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..scenarios.specs import Scenario

__all__ = [
    "write_records_csv",
    "read_records_csv",
    "write_records_json",
    "read_records_json",
    "write_scenario_json",
    "read_scenario_json",
]


def _union_columns(records: Sequence[Mapping[str, Any]]) -> list[str]:
    columns: dict[str, None] = {}
    for record in records:
        for key in record:
            columns.setdefault(str(key), None)
    return list(columns)


def write_records_csv(records: Sequence[Mapping[str, Any]], path: str | Path) -> Path:
    """Write records to a CSV file and return the path."""
    path = Path(path)
    if not records:
        raise SerializationError("refusing to write an empty record list")
    columns = _union_columns(records)
    try:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for record in records:
                writer.writerow({key: record.get(key, "") for key in columns})
    except OSError as exc:
        raise SerializationError(f"could not write CSV to {path}: {exc}") from exc
    return path


def _coerce(value: str) -> Any:
    if value == "":
        return None
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    if value.lower() in {"true", "false"}:
        return value.lower() == "true"
    return value


def read_records_csv(path: str | Path) -> list[dict[str, Any]]:
    """Read records from a CSV file, converting numeric-looking strings back."""
    path = Path(path)
    try:
        with path.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            return [
                {key: _coerce(value) for key, value in row.items()} for row in reader
            ]
    except OSError as exc:
        raise SerializationError(f"could not read CSV from {path}: {exc}") from exc


def write_records_json(records: Sequence[Mapping[str, Any]], path: str | Path) -> Path:
    """Write records to a JSON file (a list of objects) and return the path."""
    path = Path(path)
    try:
        with path.open("w", encoding="utf-8") as handle:
            json.dump([dict(record) for record in records], handle, indent=2, sort_keys=True)
            handle.write("\n")
    except (OSError, TypeError) as exc:
        raise SerializationError(f"could not write JSON to {path}: {exc}") from exc
    return path


def read_records_json(path: str | Path) -> list[dict[str, Any]]:
    """Read records from a JSON file written by :func:`write_records_json`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"could not read JSON from {path}: {exc}") from exc
    if not isinstance(data, list):
        raise SerializationError(f"expected a list of records in {path}, got {type(data).__name__}")
    return [dict(record) for record in data]


def write_scenario_json(scenario: "Scenario", path: str | Path) -> Path:
    """Serialise a scenario definition to a JSON file and return the path."""
    path = Path(path)
    try:
        path.write_text(scenario.to_json() + "\n", encoding="utf-8")
    except OSError as exc:
        raise SerializationError(f"could not write scenario to {path}: {exc}") from exc
    return path


def read_scenario_json(path: str | Path) -> "Scenario":
    """Rebuild a scenario definition from a :func:`write_scenario_json` file."""
    from ..scenarios.specs import Scenario

    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SerializationError(f"could not read scenario from {path}: {exc}") from exc
    try:
        return Scenario.from_json(text)
    except Exception as exc:
        raise SerializationError(
            f"{path} does not contain a valid scenario definition: {exc}"
        ) from exc
