"""ASCII / markdown table rendering for experiment reports.

The benchmark harness prints, for every experiment, the rows the paper's
claims predict — these helpers keep the formatting consistent between the
console reports, the example scripts and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _format_value(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def _normalise(
    records: Sequence[Mapping[str, Any]], columns: Sequence[str] | None
) -> tuple[list[str], list[list[str]]]:
    if not records:
        return list(columns or []), []
    if columns is None:
        seen: dict[str, None] = {}
        for record in records:
            for key in record:
                seen.setdefault(str(key), None)
        columns = list(seen)
    return list(columns), records  # type: ignore[return-value]


def format_table(
    records: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = ".3f",
    title: str = "",
) -> str:
    """Render records as a fixed-width ASCII table.

    Parameters
    ----------
    records:
        One mapping per row.
    columns:
        Column order; defaults to the union of keys in first-seen order.
    float_format:
        Format spec applied to float values.
    title:
        Optional title printed above the table.
    """
    column_names, rows = _normalise(records, columns)
    cells = [
        [_format_value(row.get(col, ""), float_format) for col in column_names]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(column_names)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(column_names, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(row, widths))
        for row in cells
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def format_markdown_table(
    records: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = ".3f",
) -> str:
    """Render records as a GitHub-flavoured markdown table."""
    column_names, rows = _normalise(records, columns)
    if not column_names:
        return ""
    header = "| " + " | ".join(column_names) + " |"
    separator = "|" + "|".join("---" for _ in column_names) + "|"
    body = [
        "| "
        + " | ".join(_format_value(row.get(col, ""), float_format) for col in column_names)
        + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])
