"""Input/output helpers: table rendering and result persistence."""

from .tables import format_table, format_markdown_table
from .serialization import (
    read_records_csv,
    read_records_json,
    read_scenario_json,
    write_records_csv,
    write_records_json,
    write_scenario_json,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "write_records_csv",
    "read_records_csv",
    "write_records_json",
    "read_records_json",
    "write_scenario_json",
    "read_scenario_json",
]
