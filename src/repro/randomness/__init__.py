"""Probability substrate: label distributions and tail-bound calculators.

The paper's UNI-CASE draws each label uniformly from ``{1, …, a}``; the
F-CASE generalisation allows an arbitrary distribution ``F`` over the same
support.  :class:`LabelDistribution` and its concrete subclasses implement
both, and :mod:`repro.randomness.chernoff` provides the Chernoff/union-bound
calculators that appear in the paper's proofs (used by the analysis layer to
compute the theoretical failure probabilities next to the measured ones).
"""

from .distributions import (
    GeometricLabelDistribution,
    LabelDistribution,
    TruncatedZipfLabelDistribution,
    UniformLabelDistribution,
    distribution_from_name,
)
from .chernoff import (
    binomial_chernoff_lower_tail,
    binomial_chernoff_two_sided,
    binomial_chernoff_upper_tail,
    union_bound,
)
from ..utils.seeding import SeedLike, normalize_rng, spawn_rngs

__all__ = [
    "LabelDistribution",
    "UniformLabelDistribution",
    "GeometricLabelDistribution",
    "TruncatedZipfLabelDistribution",
    "distribution_from_name",
    "binomial_chernoff_lower_tail",
    "binomial_chernoff_upper_tail",
    "binomial_chernoff_two_sided",
    "union_bound",
    "SeedLike",
    "normalize_rng",
    "spawn_rngs",
]
