"""Label distributions over the discrete lifetime ``{1, …, a}``.

Definition 4 of the paper (UNI-CASE) assigns each edge a single label drawn
uniformly from ``{1, …, a}``; the Note after Definition 4 sketches the F-CASE
where labels follow an arbitrary distribution ``F`` over the same support.
:class:`LabelDistribution` is the abstract interface for ``F``; the uniform
case is :class:`UniformLabelDistribution`, and two non-uniform examples
(geometric-like and Zipf-like, both truncated to the lifetime) are provided to
exercise the F-RTN code path in experiments and tests.
"""

from __future__ import annotations

import abc

import numpy as np

from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_fraction, check_positive_int

__all__ = [
    "LabelDistribution",
    "UniformLabelDistribution",
    "GeometricLabelDistribution",
    "TruncatedZipfLabelDistribution",
    "distribution_from_name",
]


class LabelDistribution(abc.ABC):
    """A probability distribution over the label set ``{1, …, lifetime}``."""

    def __init__(self, lifetime: int) -> None:
        self._lifetime = check_positive_int(lifetime, "lifetime")

    @property
    def lifetime(self) -> int:
        """The largest label ``a``; labels are drawn from ``{1, …, a}``."""
        return self._lifetime

    @abc.abstractmethod
    def probabilities(self) -> np.ndarray:
        """Return the probability mass of each label ``1 … a`` (length ``a``)."""

    def sample(self, size: int | tuple[int, ...], *, seed: SeedLike = None) -> np.ndarray:
        """Draw labels of the requested shape (values in ``1 … a``)."""
        rng = normalize_rng(seed)
        pmf = self.probabilities()
        return rng.choice(np.arange(1, self._lifetime + 1), size=size, p=pmf)

    def mean(self) -> float:
        """Expected label value."""
        labels = np.arange(1, self._lifetime + 1)
        return float(np.dot(labels, self.probabilities()))

    def cdf(self) -> np.ndarray:
        """Cumulative distribution over the labels ``1 … a``."""
        return np.cumsum(self.probabilities())

    def probability_in_interval(self, low: float, high: float) -> float:
        """Probability that a label falls in the half-open interval ``(low, high]``.

        The paper's expansion-process analysis repeatedly computes the
        probability that a uniform label falls inside an interval ``∆_i``;
        this helper generalises that to any distribution.
        """
        labels = np.arange(1, self._lifetime + 1)
        mask = (labels > low) & (labels <= high)
        return float(self.probabilities()[mask].sum())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lifetime={self._lifetime})"


class UniformLabelDistribution(LabelDistribution):
    """The UNI-CASE distribution: every label in ``{1, …, a}`` equally likely."""

    def probabilities(self) -> np.ndarray:
        return np.full(self.lifetime, 1.0 / self.lifetime)

    def sample(self, size: int | tuple[int, ...], *, seed: SeedLike = None) -> np.ndarray:
        # Direct integer sampling avoids building the pmf for the common case.
        rng = normalize_rng(seed)
        return rng.integers(1, self.lifetime + 1, size=size, dtype=np.int64)

    def mean(self) -> float:
        return (self.lifetime + 1) / 2.0


class GeometricLabelDistribution(LabelDistribution):
    """A truncated geometric distribution favouring early labels.

    ``P(label = i) ∝ (1 − q)^(i−1) · q`` for ``i ∈ {1, …, a}``, renormalised
    over the finite support.  Models links that are more likely to be
    "unguarded" early in the lifetime.
    """

    def __init__(self, lifetime: int, q: float = 0.1) -> None:
        super().__init__(lifetime)
        q = check_fraction(q, "q")
        if q >= 1.0:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        self._q = q

    @property
    def q(self) -> float:
        """Per-step success probability of the underlying geometric law."""
        return self._q

    def probabilities(self) -> np.ndarray:
        i = np.arange(1, self.lifetime + 1)
        raw = (1.0 - self._q) ** (i - 1) * self._q
        return raw / raw.sum()

    def __repr__(self) -> str:
        return f"GeometricLabelDistribution(lifetime={self.lifetime}, q={self._q})"


class TruncatedZipfLabelDistribution(LabelDistribution):
    """A Zipf-like distribution ``P(label = i) ∝ i^{−exponent}`` over ``{1, …, a}``."""

    def __init__(self, lifetime: int, exponent: float = 1.0) -> None:
        super().__init__(lifetime)
        self._exponent = check_fraction(exponent, "exponent")

    @property
    def exponent(self) -> float:
        """The Zipf exponent (larger means more mass on early labels)."""
        return self._exponent

    def probabilities(self) -> np.ndarray:
        i = np.arange(1, self.lifetime + 1, dtype=np.float64)
        raw = i ** (-self._exponent)
        return raw / raw.sum()

    def __repr__(self) -> str:
        return (
            f"TruncatedZipfLabelDistribution(lifetime={self.lifetime}, "
            f"exponent={self._exponent})"
        )


def distribution_from_name(
    name: str, lifetime: int, **kwargs: float
) -> LabelDistribution:
    """Construct a label distribution from a short string name.

    Supported names: ``"uniform"``, ``"geometric"``, ``"zipf"``.  Extra keyword
    arguments are forwarded to the distribution constructor.  Used by the
    experiment CLI so distributions can be selected from the command line.
    """
    registry = {
        "uniform": UniformLabelDistribution,
        "geometric": GeometricLabelDistribution,
        "zipf": TruncatedZipfLabelDistribution,
    }
    key = name.strip().lower()
    if key not in registry:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(registry)}"
        )
    return registry[key](lifetime, **kwargs)
