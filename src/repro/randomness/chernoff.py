"""Chernoff and union-bound calculators used in the paper's proofs.

The analysis of the Expansion Process (Section 3) repeatedly applies the
multiplicative Chernoff bound to binomial random variables (the sizes of the
expansion layers ``Γ_i(s)``) and then a union bound over ``Θ(log n)`` events.
These helpers compute the same analytic quantities so the experiment reports
can show the theoretical failure probability next to the measured one.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_fraction, check_non_negative_int, check_probability

__all__ = [
    "binomial_chernoff_lower_tail",
    "binomial_chernoff_upper_tail",
    "binomial_chernoff_two_sided",
    "union_bound",
]


def binomial_chernoff_lower_tail(trials: int, p: float, beta: float) -> float:
    """Upper bound on ``P[X <= (1 − β)·N·p]`` for ``X ~ Binomial(N, p)``.

    Uses the standard multiplicative form ``exp(−β²·N·p / 2)`` — the same
    bound the paper applies (with ``β = 1/2``) in Lemma 1 and the expansion
    step analysis.
    """
    trials = check_non_negative_int(trials, "trials")
    p = check_probability(p, "p")
    beta = check_fraction(beta, "beta")
    if beta > 1.0:
        raise ValueError(f"beta must lie in (0, 1], got {beta}")
    return float(np.exp(-(beta**2) * trials * p / 2.0))


def binomial_chernoff_upper_tail(trials: int, p: float, beta: float) -> float:
    """Upper bound on ``P[X >= (1 + β)·N·p]`` for ``X ~ Binomial(N, p)``.

    Uses ``exp(−β²·N·p / 3)``, valid for ``β ∈ (0, 1]``.
    """
    trials = check_non_negative_int(trials, "trials")
    p = check_probability(p, "p")
    beta = check_fraction(beta, "beta")
    if beta > 1.0:
        raise ValueError(f"beta must lie in (0, 1], got {beta}")
    return float(np.exp(-(beta**2) * trials * p / 3.0))


def binomial_chernoff_two_sided(trials: int, p: float, beta: float) -> float:
    """Upper bound on ``P[|X − N·p| >= β·N·p]`` (sum of the two one-sided bounds).

    The paper states the two-sided event
    ``#successes ∈ (1 ± β)·N·p`` holds with probability at least
    ``1 − exp(−β²·N·p / 2)``; this helper returns the (slightly looser but
    standard) sum of both tails, clipped to 1.
    """
    total = binomial_chernoff_lower_tail(trials, p, beta) + binomial_chernoff_upper_tail(
        trials, p, beta
    )
    return float(min(1.0, total))


def union_bound(*failure_probabilities: float) -> float:
    """Union bound over failure events, clipped to 1.

    Accepts either separate float arguments or any mix of floats and
    iterables of floats.
    """
    total = 0.0
    for item in failure_probabilities:
        if np.isscalar(item):
            values = [float(item)]  # type: ignore[arg-type]
        else:
            values = [float(x) for x in item]  # type: ignore[union-attr]
        for value in values:
            if value < 0.0:
                raise ValueError(f"probabilities must be non-negative, got {value}")
            total += value
    return float(min(1.0, total))
