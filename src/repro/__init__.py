"""repro — reproduction of *Ephemeral Networks with Random Availability of Links*.

A production-quality Python library reproducing Akrida, Gąsieniec, Mertzios &
Spirakis (SPAA 2014): random ephemeral temporal networks, their temporal
diameter, the Expansion Process algorithm, reachability guarantees and the
Price of Randomness — together with the Monte-Carlo experiment harness that
regenerates every quantitative claim of the paper.

Quickstart
----------
>>> from repro import NetworkAnalysis, complete_graph, normalized_urtn
>>> clique = complete_graph(64, directed=True)
>>> analysis = NetworkAnalysis(normalized_urtn(clique, seed=0))
>>> analysis.diameter <= 64 and analysis.is_temporally_connected
True

The public API re-exports the most commonly used pieces; the subpackages
(:mod:`repro.core`, :mod:`repro.graphs`, :mod:`repro.montecarlo`,
:mod:`repro.engine`, :mod:`repro.scenarios`, :mod:`repro.analysis`,
:mod:`repro.experiments`, …) expose the full surface.
"""

from ._version import __version__
from .exceptions import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    GraphError,
    InvalidEdgeError,
    InvalidVertexError,
    JourneyError,
    LabelingError,
    LifetimeError,
    ReproError,
    SerializationError,
    UnreachableVertexError,
)
from .types import NEVER, UNREACHABLE, Journey, TimeEdge
from .graphs import (
    StaticGraph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from .graphs.properties import diameter, is_connected
from .core import (
    BroadcastResult,
    ExpansionParameters,
    ExpansionResult,
    FastestJourneyResult,
    TemporalGraph,
    box_assignment,
    earliest_arrival_matrix,
    earliest_arrival_times,
    expansion_process,
    fastest_journey,
    flood_broadcast,
    foremost_journey,
    shortest_journey,
    is_temporally_connected,
    latest_departure,
    latest_departure_matrix,
    latest_departure_times,
    minimal_labels_for_reachability,
    normalized_urtn,
    opt_labels_star,
    por_upper_bound_theorem8,
    preserves_reachability,
    price_of_randomness,
    push_phone_call_broadcast,
    reachability_probability,
    reverse_reachable_set,
    temporal_closeness,
    temporal_diameter,
    temporal_distance,
    temporal_distance_matrix,
    temporal_distance_summary,
    temporal_harmonic_closeness,
    temporal_influence_counts,
    temporal_reach_counts,
    tree_broadcast_assignment,
    uniform_random_labels,
    BlockedSweepResult,
    blocked_sweep_summary,
    streamed_distance_summary,
    streamed_reachable_fraction,
)
from . import telemetry
from .core import kernels
from .analysis_api import (
    ComputeEvents,
    DistanceSummary,
    NetworkAnalysis,
    PorAudit,
    compute_events,
)
from .montecarlo import (
    Experiment,
    MonteCarloRunner,
    ParameterSweep,
    run_trials,
    summarize,
)
from .engine import MultiprocessExecutor, SerialExecutor, run_sharded
from .scenarios import (
    GraphFamilySpec,
    LabelModelSpec,
    MetricSuite,
    Scenario,
    ScenarioRun,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .experiments import run_experiments, write_experiments_markdown

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "InvalidVertexError",
    "InvalidEdgeError",
    "LabelingError",
    "LifetimeError",
    "JourneyError",
    "UnreachableVertexError",
    "ExperimentError",
    "ConfigurationError",
    "ConvergenceError",
    "SerializationError",
    "CheckpointError",
    # value types
    "UNREACHABLE",
    "NEVER",
    "TimeEdge",
    "Journey",
    # static graphs
    "StaticGraph",
    "complete_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "erdos_renyi_graph",
    "diameter",
    "is_connected",
    # temporal core
    "TemporalGraph",
    "uniform_random_labels",
    "normalized_urtn",
    "box_assignment",
    "tree_broadcast_assignment",
    "earliest_arrival_matrix",
    "earliest_arrival_times",
    "foremost_journey",
    "shortest_journey",
    "fastest_journey",
    "FastestJourneyResult",
    "temporal_distance",
    "temporal_distance_matrix",
    "temporal_distance_summary",
    "temporal_diameter",
    "is_temporally_connected",
    "preserves_reachability",
    # reverse (target-side) sweeps and temporal centrality
    "latest_departure_times",
    "latest_departure_matrix",
    "latest_departure",
    "reverse_reachable_set",
    "temporal_closeness",
    "temporal_harmonic_closeness",
    "temporal_influence_counts",
    "temporal_reach_counts",
    # out-of-core blocked sweeps (O(n·tile) memory, bit-identical to dense)
    "BlockedSweepResult",
    "blocked_sweep_summary",
    "streamed_distance_summary",
    "streamed_reachable_fraction",
    "ExpansionParameters",
    "ExpansionResult",
    "expansion_process",
    "BroadcastResult",
    "flood_broadcast",
    "push_phone_call_broadcast",
    "reachability_probability",
    "minimal_labels_for_reachability",
    "price_of_randomness",
    "opt_labels_star",
    "por_upper_bound_theorem8",
    # the per-instance analysis handle
    "ComputeEvents",
    "DistanceSummary",
    "NetworkAnalysis",
    "PorAudit",
    "compute_events",
    # telemetry (spans, counters, sinks, the layered profile report)
    "telemetry",
    # pluggable sweep kernel backends (numpy / numba / cython / python)
    "kernels",
    # monte carlo
    "Experiment",
    "MonteCarloRunner",
    "ParameterSweep",
    "run_trials",
    "summarize",
    # parallel execution engine
    "SerialExecutor",
    "MultiprocessExecutor",
    "run_sharded",
    # declarative scenarios
    "GraphFamilySpec",
    "LabelModelSpec",
    "MetricSuite",
    "Scenario",
    "ScenarioRun",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    # experiments
    "run_experiments",
    "write_experiments_markdown",
]
