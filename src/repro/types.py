"""Common value types used across the library.

The paper's objects map onto these types as follows:

* a *time edge* ``(u, v, l)`` (Definition in §2.1) is :class:`TimeEdge`;
* a *journey* (Definition 2) is :class:`Journey` — a sequence of time edges
  with strictly increasing labels;
* a *temporal distance* δ(u, v) (Definition 3) is an ``int`` arrival time, or
  :data:`UNREACHABLE` when no journey exists;
* a label assignment ``L`` (Definition 1) is represented per-edge as a sorted
  tuple of integers inside :class:`repro.core.temporal_graph.TemporalGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import JourneyError

__all__ = [
    "UNREACHABLE",
    "NEVER",
    "Label",
    "TimeEdge",
    "Journey",
    "VertexPair",
    "as_vertex_array",
]

#: Sentinel arrival time used for temporally unreachable vertex pairs.  The
#: value is chosen so it can live inside integer NumPy arrays (``np.iinfo``
#: max would overflow on additions performed by some reductions).
UNREACHABLE: int = np.iinfo(np.int64).max // 4

#: Sentinel *departure* time used by the reverse (latest-departure) kernels
#: for vertices that cannot reach the target at all.  Real departures are
#: labels ``>= 1`` (the target itself reports ``deadline + 1``), so 0 plays
#: the same role below the departure scale that :data:`UNREACHABLE` plays
#: above the arrival scale.
NEVER: int = 0

#: A discrete time label, an element of ``{1, …, a}``.
Label = int

#: A pair of vertex indices ``(u, v)``.
VertexPair = tuple[int, int]


def as_vertex_array(vertices: Iterable[int], n: int) -> np.ndarray:
    """Normalise an iterable of vertex indices into a validated int64 array.

    Parameters
    ----------
    vertices:
        Iterable of integer vertex indices.
    n:
        Number of vertices in the graph; indices must lie in ``[0, n)``.

    Returns
    -------
    numpy.ndarray
        One-dimensional ``int64`` array of the given vertices.

    Raises
    ------
    ValueError
        If any index falls outside ``[0, n)``.
    """
    arr = np.asarray(list(vertices), dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("vertices must be a one-dimensional sequence")
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ValueError(
            f"vertex indices must lie in [0, {n - 1}], got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


@dataclass(frozen=True, slots=True)
class TimeEdge:
    """A single availability of an edge: the triplet ``(u, v, label)``.

    Attributes
    ----------
    u:
        Tail vertex (the vertex the message leaves from).
    v:
        Head vertex (the vertex the message arrives at).
    label:
        The discrete time at which the edge ``(u, v)`` is available.
    """

    u: int
    v: int
    label: Label

    def __post_init__(self) -> None:
        if self.label < 1:
            raise JourneyError(
                f"time labels are positive integers, got {self.label!r}"
            )

    def reversed(self) -> "TimeEdge":
        """Return the time edge traversed in the opposite direction."""
        return TimeEdge(self.v, self.u, self.label)

    def as_tuple(self) -> tuple[int, int, Label]:
        """Return the plain ``(u, v, label)`` tuple."""
        return (self.u, self.v, self.label)


@dataclass(frozen=True, slots=True)
class Journey:
    """A temporal path: time edges with strictly increasing labels.

    Mirrors Definition 2 of the paper.  The journey from ``u`` to ``v`` is a
    sequence of time edges
    ``(u, u1, l1), (u1, u2, l2), …, (u_{k−1}, v, l_k)`` with ``l_i < l_{i+1}``.

    The empty journey (``edges == ()``) represents the trivial journey from a
    vertex to itself with arrival time 0.
    """

    source: int
    target: int
    edges: tuple[TimeEdge, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.edges:
            if self.source != self.target:
                raise JourneyError(
                    "an empty journey must start and end at the same vertex"
                )
            return
        if self.edges[0].u != self.source:
            raise JourneyError(
                f"journey starts at vertex {self.edges[0].u}, expected "
                f"{self.source}"
            )
        if self.edges[-1].v != self.target:
            raise JourneyError(
                f"journey ends at vertex {self.edges[-1].v}, expected "
                f"{self.target}"
            )
        for first, second in zip(self.edges, self.edges[1:]):
            if first.v != second.u:
                raise JourneyError(
                    f"consecutive time edges {first.as_tuple()} and "
                    f"{second.as_tuple()} are not incident"
                )
            if not first.label < second.label:
                raise JourneyError(
                    "journey labels must be strictly increasing, got "
                    f"{first.label} followed by {second.label}"
                )

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[TimeEdge]:
        return iter(self.edges)

    @property
    def arrival_time(self) -> int:
        """Arrival time of the journey: the label of its last time edge.

        The empty journey arrives at time 0 (the message is already at the
        target before the network starts).
        """
        return self.edges[-1].label if self.edges else 0

    @property
    def departure_time(self) -> int:
        """Label of the first time edge (0 for the empty journey)."""
        return self.edges[0].label if self.edges else 0

    @property
    def hops(self) -> int:
        """Number of edges traversed (the journey's *length*)."""
        return len(self.edges)

    def vertices(self) -> tuple[int, ...]:
        """Return the sequence of visited vertices, source first."""
        if not self.edges:
            return (self.source,)
        return (self.source,) + tuple(edge.v for edge in self.edges)

    def labels(self) -> tuple[Label, ...]:
        """Return the sequence of labels used, in traversal order."""
        return tuple(edge.label for edge in self.edges)

    @classmethod
    def from_sequence(
        cls, hops: Sequence[tuple[int, int, Label]]
    ) -> "Journey":
        """Build a journey from ``(u, v, label)`` triples.

        Raises
        ------
        JourneyError
            If the sequence is empty or does not form a valid journey.
        """
        if not hops:
            raise JourneyError(
                "from_sequence requires at least one hop; use "
                "Journey(source, source) for the trivial journey"
            )
        edges = tuple(TimeEdge(u, v, label) for u, v, label in hops)
        return cls(source=edges[0].u, target=edges[-1].v, edges=edges)
