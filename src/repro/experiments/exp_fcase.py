"""E8 (extension) — F-CASE: non-uniform label distributions.

The Note after Definition 4 flags the *F-CASE* — labels drawn from an
arbitrary distribution ``F`` over ``{1, …, a}`` — as prospective study, and
the conclusions list "designing the availability of a net" as ongoing work.
The workload is the declarative scenario ``"E8"`` (clique × single-label
model whose distribution is *selected by a sweep parameter* × diameter and
flooding metrics); this module runs it through the generic pipeline,
comparing the paper's UNI-CASE against a front-loaded geometric distribution
and a Zipf-like distribution.

Expected shape: front-loaded distributions compress the label range actually
used, so *reachability is still guaranteed* (the clique always has the direct
edge) but the temporal diameter is governed by the effective spread of labels
rather than by ``n`` — the uniform case remains the hardest of the three.
"""

from __future__ import annotations

import math
from typing import Any

from ..analysis.comparison import ComparisonRow
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E8_SCALES as SCALES, FCASE_DISTRIBUTIONS as DISTRIBUTIONS
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_fcase", "run", "build_report", "SCALES", "DISTRIBUTIONS"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_fcase = ScenarioTrial(get_scenario("E8"))


def run(
    scale: str = "default", *, seed: SeedLike = 2021, jobs: int | None = None
) -> ExperimentReport:
    """Run E8 through the scenario pipeline and build its report.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E8"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E8 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    n = int(config["n"])
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    by_name: dict[str, float] = {}
    for point in sweep_result:
        name = str(point.parameters["distribution"])
        td = point.mean("temporal_diameter")
        records.append(
            {
                "distribution": name,
                "n": n,
                "mean_temporal_diameter": td,
                "mean_broadcast_time": point.mean("broadcast_time"),
                "mean_label_of_F": point.mean("mean_label"),
                "log_n": math.log(n),
            }
        )
        by_name[name] = td

    comparison = [
        ComparisonRow(
            quantity="all distributions keep the clique temporally connected",
            paper="one label per clique edge always preserves reachability (any distribution)",
            measured="temporal diameter finite in every sampled instance",
            matches=all(record["mean_temporal_diameter"] < n for record in records),
            note="the direct edge is the fallback journey regardless of F",
        ),
        ComparisonRow(
            quantity="the uniform case is the slowest of the three",
            paper="front-loaded F compresses the used label range (F-CASE note, §2)",
            measured=(
                f"TD uniform={by_name.get('uniform', float('nan')):.1f}, "
                f"geometric={by_name.get('geometric', float('nan')):.1f}, "
                f"zipf={by_name.get('zipf', float('nan')):.1f}"
            ),
            matches=by_name.get("uniform", 0.0)
            >= max(by_name.get("geometric", 0.0), by_name.get("zipf", 0.0)) - 1.0,
            note="expected ordering; the paper leaves the quantitative F-CASE open",
        ),
        ComparisonRow(
            quantity="uniform case still Θ(log n)",
            paper="Theorem 4 (the UNI-CASE row doubles as an E1 spot check)",
            measured=f"TD(uniform) / log n = {by_name.get('uniform', 0.0) / math.log(n):.2f}",
            matches=1.0 <= by_name.get("uniform", 0.0) / math.log(n) <= 10.0,
            note="constant-factor corridor around log n",
        ),
    ]
    return ExperimentReport(
        experiment_id="E8",
        title="F-CASE: non-uniform label distributions (extension)",
        claim=(
            "Extension of the paper's F-CASE note: the clique stays temporally "
            "connected under any single-label distribution, and the temporal diameter "
            "depends on how the distribution spreads labels over the lifetime; the "
            "uniform UNI-CASE of the paper is the slowest of the compared families."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "This experiment goes beyond the paper (listed as prospective study in §2 "
            "and §6); it is included as the 'extension/future work' item of the "
            "reproduction and makes no claim about matching published numbers."
        ),
        scale=scale,
    )
