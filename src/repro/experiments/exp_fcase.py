"""E8 (extension) — F-CASE: non-uniform label distributions.

The Note after Definition 4 flags the *F-CASE* — labels drawn from an
arbitrary distribution ``F`` over ``{1, …, a}`` — as prospective study, and
the conclusions list "designing the availability of a net" as ongoing work.
This extension experiment explores that direction empirically: it compares the
temporal diameter and flooding broadcast time of the random clique under the
uniform distribution (the paper's UNI-CASE), a front-loaded geometric
distribution and a Zipf-like distribution.

Expected shape: front-loaded distributions compress the label range actually
used, so *reachability is still guaranteed* (the clique always has the direct
edge) but the temporal diameter is governed by the effective spread of labels
rather than by ``n`` — the uniform case remains the hardest of the three.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..core.dissemination import flood_broadcast
from ..core.distances import temporal_diameter
from ..core.labeling import uniform_random_labels
from ..graphs.generators import complete_graph
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.sweep import ParameterSweep
from ..randomness.distributions import distribution_from_name
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_fcase", "run", "SCALES", "DISTRIBUTIONS"]

#: The distributions compared by the experiment (name → constructor kwargs).
DISTRIBUTIONS: dict[str, dict[str, float]] = {
    "uniform": {},
    "geometric": {"q": 0.05},
    "zipf": {"exponent": 1.0},
}

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 48, "repetitions": 5},
    "default": {"n": 128, "repetitions": 12},
    "full": {"n": 256, "repetitions": 20},
}


def trial_fcase(params: Mapping[str, Any], rng: np.random.Generator) -> dict[str, float]:
    """One trial: sample an F-RTN clique under the named distribution."""
    n = int(params["n"])
    name = str(params["distribution"])
    distribution = distribution_from_name(name, n, **DISTRIBUTIONS[name])
    clique = complete_graph(n, directed=True)
    network = uniform_random_labels(
        clique, labels_per_edge=1, lifetime=n, distribution=distribution, seed=rng
    )
    td = temporal_diameter(network)
    broadcast = flood_broadcast(network, source=int(rng.integers(0, n)))
    return {
        "temporal_diameter": float(td),
        "broadcast_time": float(broadcast.broadcast_time),
        "mean_label": distribution.mean(),
    }


def run(scale: str = "default", *, seed: SeedLike = 2021) -> ExperimentReport:
    """Run E8 and build its report."""
    config = SCALES[scale]
    n = int(config["n"])
    sweep = ParameterSweep({"distribution": list(DISTRIBUTIONS)}, constants={"n": n})
    experiment = Experiment(
        name="E8-fcase",
        trial=trial_fcase,
        description="Temporal diameter of the clique under non-uniform label distributions",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed
    )
    sweep_result = runner.run_sweep(experiment, sweep)

    records: list[dict[str, Any]] = []
    by_name: dict[str, float] = {}
    for point in sweep_result:
        name = str(point.parameters["distribution"])
        td = point.mean("temporal_diameter")
        records.append(
            {
                "distribution": name,
                "n": n,
                "mean_temporal_diameter": td,
                "mean_broadcast_time": point.mean("broadcast_time"),
                "mean_label_of_F": point.mean("mean_label"),
                "log_n": math.log(n),
            }
        )
        by_name[name] = td

    comparison = [
        ComparisonRow(
            quantity="all distributions keep the clique temporally connected",
            paper="one label per clique edge always preserves reachability (any distribution)",
            measured="temporal diameter finite in every sampled instance",
            matches=all(record["mean_temporal_diameter"] < n for record in records),
            note="the direct edge is the fallback journey regardless of F",
        ),
        ComparisonRow(
            quantity="the uniform case is the slowest of the three",
            paper="front-loaded F compresses the used label range (F-CASE note, §2)",
            measured=(
                f"TD uniform={by_name.get('uniform', float('nan')):.1f}, "
                f"geometric={by_name.get('geometric', float('nan')):.1f}, "
                f"zipf={by_name.get('zipf', float('nan')):.1f}"
            ),
            matches=by_name.get("uniform", 0.0)
            >= max(by_name.get("geometric", 0.0), by_name.get("zipf", 0.0)) - 1.0,
            note="expected ordering; the paper leaves the quantitative F-CASE open",
        ),
        ComparisonRow(
            quantity="uniform case still Θ(log n)",
            paper="Theorem 4 (the UNI-CASE row doubles as an E1 spot check)",
            measured=f"TD(uniform) / log n = {by_name.get('uniform', 0.0) / math.log(n):.2f}",
            matches=1.0 <= by_name.get("uniform", 0.0) / math.log(n) <= 10.0,
            note="constant-factor corridor around log n",
        ),
    ]
    return ExperimentReport(
        experiment_id="E8",
        title="F-CASE: non-uniform label distributions (extension)",
        claim=(
            "Extension of the paper's F-CASE note: the clique stays temporally "
            "connected under any single-label distribution, and the temporal diameter "
            "depends on how the distribution spreads labels over the lifetime; the "
            "uniform UNI-CASE of the paper is the slowest of the compared families."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "This experiment goes beyond the paper (listed as prospective study in §2 "
            "and §6); it is included as the 'extension/future work' item of the "
            "reproduction and makes no claim about matching published numbers."
        ),
        scale=scale,
    )
