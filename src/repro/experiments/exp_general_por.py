"""E6 / F3 — Guaranteeing reachability on general graphs (Theorems 7–8).

Theorem 7: assigning more than ``2·d(G)·log n`` uniform random labels to every
edge of any connected graph ``G`` guarantees temporal reachability whp — the
proof splits the lifetime into ``d(G)`` boxes (Figure 3) and shows every box
of every edge receives a label whp, after which Claim 1 turns any static
shortest path into a journey.  Theorem 8 converts this into the upper bound
``PoR(G) ≤ (2·d(G)·log n + ε)·m/(n−1)``.

The workload is the declarative scenario ``"E6"`` — a *direct-mode* scenario
whose per-point audit (the ``theorem7_por_audit`` metric) runs, for each
sized graph family (path, cycle, grid, hypercube, tree, Erdős–Rényi):

* the measured reachability probability at ``r = ⌈2·d·log n⌉`` (should be ≈ 1)
  and at a fraction of it,
* the empirical threshold ``r̂`` and the measured PoR against the Theorem 8
  bound,
* a direct verification of Claim 1: the deterministic box assignment preserves
  reachability on every family (the F3 check).

``jobs=N`` maps the per-family audits over a process pool; each point owns a
pre-spawned slice of RNG streams, so results are identical to the serial run.
"""

from __future__ import annotations

from ..analysis.comparison import ComparisonRow
from ..scenarios import ScenarioRun, get_scenario, run_scenario
from ..scenarios.families import SIZED_FAMILIES as GRAPH_FAMILIES
from ..scenarios.library import E6_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["GRAPH_FAMILIES", "run", "build_report", "SCALES"]


def run(
    scale: str = "default", *, seed: SeedLike = 2019, jobs: int | None = None
) -> ExperimentReport:
    """Run E6 (and the F3 box-assignment check) through the scenario pipeline."""
    return build_report(
        run_scenario(get_scenario("E6"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E6 scenario run into the paper-vs-measured report."""
    records = result.to_records()
    box_checks = [bool(r["box_assignment_preserves_reachability"]) for r in records]
    sufficient_checks = [r["P[T_reach]_at_r_sufficient"] >= 0.95 for r in records]
    por_within_bound = [
        r["measured_PoR"] <= r["theorem8_PoR_bound"] + 1e-9 for r in records
    ]

    comparison = [
        ComparisonRow(
            quantity="r > 2·d(G)·log n labels per edge suffice",
            paper="Theorem 7: such r guarantees temporal reachability whp on any connected G",
            measured=(
                "P[T_reach] at r=⌈2d·log n⌉+1: "
                + ", ".join(
                    f"{r['family']}={r['P[T_reach]_at_r_sufficient']:.2f}" for r in records
                )
            ),
            matches=all(sufficient_checks),
            note="every family reaches (near-)certain reachability at the Theorem 7 value",
        ),
        ComparisonRow(
            quantity="measured PoR is below the Theorem 8 bound",
            paper="PoR(G) ≤ (2·d·log n + ε)·m/(n−1) (Theorem 8)",
            measured=(
                ", ".join(
                    f"{r['family']}: {r['measured_PoR']:.1f} ≤ {r['theorem8_PoR_bound']:.1f}"
                    for r in records
                )
            ),
            matches=all(por_within_bound),
            note="measured PoR uses the empirical r̂ and the constructive OPT upper bound",
        ),
        ComparisonRow(
            quantity="box assignment preserves reachability (Figure 3, Claim 1)",
            paper="one label per box per edge makes every shortest path a journey",
            measured=f"verified on {sum(box_checks)}/{len(box_checks)} families",
            matches=all(box_checks),
            note="deterministic construction checked exactly on each instance",
        ),
        ComparisonRow(
            quantity="empirical thresholds sit below the sufficient value",
            paper="Theorem 7 is an upper bound on r(n), not tight for every graph",
            measured=(
                ", ".join(
                    f"{r['family']}: r̂={r['empirical_r_hat']} vs 2d·log n={r['r_theorem7_=2d·log n']:.0f}"
                    for r in records
                )
            ),
            matches=all(
                r["empirical_r_hat"] <= r["r_theorem7_=2d·log n"] + 1 for r in records
            ),
            note="r̂ ≤ sufficient value everywhere, as the theory requires",
        ),
    ]
    return ExperimentReport(
        experiment_id="E6",
        title="General graphs: sufficient labels and the PoR upper bound",
        claim=(
            "For every connected graph, assigning more than 2·d(G)·log n uniform random "
            "labels per edge guarantees temporal reachability whp (Theorem 7), and the "
            "Price of Randomness is at most (2·d(G)·log n + ε)·m/(n−1) (Theorem 8); the "
            "deterministic box structure of Figure 3 preserves reachability (Claim 1)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "Graph sizes are matched approximately per family (grids and hypercubes "
            "round n to the nearest feasible size). The empirical r̂ targets 90% "
            "reachability probability rather than the paper's 1 − n^{-a}."
        ),
        scale=result.scale,
    )
