"""E6 / F3 — Guaranteeing reachability on general graphs (Theorems 7–8).

Theorem 7: assigning more than ``2·d(G)·log n`` uniform random labels to every
edge of any connected graph ``G`` guarantees temporal reachability whp — the
proof splits the lifetime into ``d(G)`` boxes (Figure 3) and shows every box
of every edge receives a label whp, after which Claim 1 turns any static
shortest path into a journey.  Theorem 8 converts this into the upper bound
``PoR(G) ≤ (2·d(G)·log n + ε)·m/(n−1)``.

The experiment runs, for several graph families (path, cycle, grid, hypercube,
tree, Erdős–Rényi):

* the measured reachability probability at ``r = ⌈2·d·log n⌉`` (should be ≈ 1)
  and at a fraction of it,
* the empirical threshold ``r̂`` and the measured PoR against the Theorem 8
  bound,
* a direct verification of Claim 1: the deterministic box assignment preserves
  reachability on every family (the F3 check).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..core.guarantees import minimal_labels_for_reachability, reachability_probability
from ..core.labeling import box_assignment, uniform_random_labels
from ..core.price_of_randomness import (
    opt_labels_upper_bound,
    por_upper_bound_theorem8,
    price_of_randomness,
    r_sufficient_theorem7,
)
from ..core.reachability import preserves_reachability
from ..graphs.generators import (
    binary_tree,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
)
from ..graphs.properties import diameter
from ..graphs.static_graph import StaticGraph
from ..utils.seeding import SeedLike, spawn_rngs
from .reporting import ExperimentReport

__all__ = ["GRAPH_FAMILIES", "run", "SCALES"]

#: Graph families exercised by the experiment, as name → constructor.
GRAPH_FAMILIES: dict[str, Callable[[int], StaticGraph]] = {
    "path": lambda n: path_graph(n),
    "cycle": lambda n: cycle_graph(n),
    "grid": lambda n: grid_graph(max(2, int(round(math.sqrt(n)))), max(2, int(round(math.sqrt(n))))),
    "hypercube": lambda n: hypercube_graph(max(2, int(round(math.log2(n))))),
    "binary_tree": lambda n: binary_tree(max(2, int(math.floor(math.log2(n + 1))) - 1)),
    "erdos_renyi": lambda n: erdos_renyi_graph(n, min(1.0, 3.0 * math.log(n) / n), seed=7),
}

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 16, "families": ("path", "cycle", "grid"), "trials": 10},
    "default": {
        "n": 32,
        "families": ("path", "cycle", "grid", "hypercube", "binary_tree", "erdos_renyi"),
        "trials": 20,
    },
    "full": {
        "n": 64,
        "families": ("path", "cycle", "grid", "hypercube", "binary_tree", "erdos_renyi"),
        "trials": 30,
    },
}


def _family_graph(name: str, n: int) -> StaticGraph:
    graph = GRAPH_FAMILIES[name](n)
    return graph


def run(scale: str = "default", *, seed: SeedLike = 2019) -> ExperimentReport:
    """Run E6 (and the F3 box-assignment check) and build the report."""
    config = SCALES[scale]
    n_target = int(config["n"])
    trials = int(config["trials"])
    families = list(config["families"])
    rngs = spawn_rngs(seed, 4 * len(families))
    rng_iter = iter(rngs)

    records: list[dict[str, Any]] = []
    box_checks: list[bool] = []
    sufficient_checks: list[bool] = []
    por_within_bound: list[bool] = []
    for family in families:
        graph = _family_graph(family, n_target)
        n = graph.n
        m = graph.m
        d = diameter(graph)
        log_n = math.log(n)
        r_theorem7 = r_sufficient_theorem7(n, d)
        r_sufficient = max(1, int(math.ceil(r_theorem7)) + 1)
        lifetime = n

        prob_at_sufficient = reachability_probability(
            graph, r_sufficient, lifetime=lifetime, trials=trials, seed=next(rng_iter)
        )
        r_quarter = max(1, r_sufficient // 4)
        prob_at_quarter = reachability_probability(
            graph, r_quarter, lifetime=lifetime, trials=trials, seed=next(rng_iter)
        )
        r_hat = minimal_labels_for_reachability(
            graph,
            target_probability=0.9,
            lifetime=lifetime,
            trials=trials,
            r_max=4 * r_sufficient,
            seed=next(rng_iter),
        )
        opt_bound = opt_labels_upper_bound(graph)
        measured_por = price_of_randomness(graph, r_hat, opt=opt_bound)
        theorem8_bound = por_upper_bound_theorem8(n, m, d)

        # F3: the deterministic box assignment (Figure 3 / Claim 1).
        box_network = box_assignment(graph, lifetime=max(n, d), mode="random", seed=next(rng_iter))
        box_ok = preserves_reachability(box_network)

        records.append(
            {
                "family": family,
                "n": n,
                "m": m,
                "diameter": d,
                "r_theorem7_=2d·log n": r_theorem7,
                "P[T_reach]_at_r_sufficient": prob_at_sufficient,
                "P[T_reach]_at_r/4": prob_at_quarter,
                "empirical_r_hat": r_hat,
                "measured_PoR": measured_por,
                "theorem8_PoR_bound": theorem8_bound,
                "box_assignment_preserves_reachability": box_ok,
            }
        )
        box_checks.append(box_ok)
        sufficient_checks.append(prob_at_sufficient >= 0.95)
        por_within_bound.append(measured_por <= theorem8_bound + 1e-9)

    comparison = [
        ComparisonRow(
            quantity="r > 2·d(G)·log n labels per edge suffice",
            paper="Theorem 7: such r guarantees temporal reachability whp on any connected G",
            measured=(
                "P[T_reach] at r=⌈2d·log n⌉+1: "
                + ", ".join(
                    f"{r['family']}={r['P[T_reach]_at_r_sufficient']:.2f}" for r in records
                )
            ),
            matches=all(sufficient_checks),
            note="every family reaches (near-)certain reachability at the Theorem 7 value",
        ),
        ComparisonRow(
            quantity="measured PoR is below the Theorem 8 bound",
            paper="PoR(G) ≤ (2·d·log n + ε)·m/(n−1) (Theorem 8)",
            measured=(
                ", ".join(
                    f"{r['family']}: {r['measured_PoR']:.1f} ≤ {r['theorem8_PoR_bound']:.1f}"
                    for r in records
                )
            ),
            matches=all(por_within_bound),
            note="measured PoR uses the empirical r̂ and the constructive OPT upper bound",
        ),
        ComparisonRow(
            quantity="box assignment preserves reachability (Figure 3, Claim 1)",
            paper="one label per box per edge makes every shortest path a journey",
            measured=f"verified on {sum(box_checks)}/{len(box_checks)} families",
            matches=all(box_checks),
            note="deterministic construction checked exactly on each instance",
        ),
        ComparisonRow(
            quantity="empirical thresholds sit below the sufficient value",
            paper="Theorem 7 is an upper bound on r(n), not tight for every graph",
            measured=(
                ", ".join(
                    f"{r['family']}: r̂={r['empirical_r_hat']} vs 2d·log n={r['r_theorem7_=2d·log n']:.0f}"
                    for r in records
                )
            ),
            matches=all(
                r["empirical_r_hat"] <= r["r_theorem7_=2d·log n"] + 1 for r in records
            ),
            note="r̂ ≤ sufficient value everywhere, as the theory requires",
        ),
    ]
    return ExperimentReport(
        experiment_id="E6",
        title="General graphs: sufficient labels and the PoR upper bound",
        claim=(
            "For every connected graph, assigning more than 2·d(G)·log n uniform random "
            "labels per edge guarantees temporal reachability whp (Theorem 7), and the "
            "Price of Randomness is at most (2·d(G)·log n + ε)·m/(n−1) (Theorem 8); the "
            "deterministic box structure of Figure 3 preserves reachability (Claim 1)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "Graph sizes are matched approximately per family (grids and hypercubes "
            "round n to the nearest feasible size). The empirical r̂ targets 90% "
            "reachability probability rather than the paper's 1 − n^{-a}."
        ),
        scale=scale,
    )
