"""E2 — Dependence of the temporal diameter on the lifetime (Theorem 5).

When each arc of the clique receives one uniform label from ``{1, …, a}`` with
``a`` larger than ``n``, the temporal diameter must grow like
``Ω((a/n)·log n)``: the arcs labelled at most ``k`` form an Erdős–Rényi graph
``G(n, k/a)`` which is disconnected below the ``log n / n`` threshold, so no
instance can have all pairs communicate before ``k ≈ (a/n)·log n``.

The experiment sweeps the lifetime multiplier ``a/n``, measures the exact
temporal diameter and the certified per-instance lower bound
(:func:`~repro.core.lifetime.prefix_connectivity_time`), and checks that the
measured diameters scale linearly in ``(a/n)·log n``.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..analysis.fitting import fit_scaled_log_model
from ..core.distances import temporal_diameter
from ..core.labeling import uniform_random_labels
from ..core.lifetime import prefix_connectivity_time, temporal_diameter_lower_bound_theorem5
from ..graphs.generators import complete_graph
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.sweep import ParameterSweep
from ..types import UNREACHABLE
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_lifetime", "run", "SCALES"]

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 32, "multipliers": (1, 2, 4), "repetitions": 5},
    "default": {"n": 64, "multipliers": (1, 2, 4, 8, 16), "repetitions": 12},
    "full": {"n": 128, "multipliers": (1, 2, 4, 8, 16, 32), "repetitions": 20},
}


def trial_lifetime(params: Mapping[str, Any], rng: np.random.Generator) -> dict[str, float]:
    """One trial: clique with lifetime ``multiplier·n``; measure TD and its certificate."""
    n = int(params["n"])
    multiplier = int(params["multiplier"])
    lifetime = multiplier * n
    clique = complete_graph(n, directed=True)
    network = uniform_random_labels(
        clique, labels_per_edge=1, lifetime=lifetime, seed=rng
    )
    td = temporal_diameter(network)
    prefix = prefix_connectivity_time(network)
    metrics = {
        "temporal_diameter": float(td),
        "scaled_bound": temporal_diameter_lower_bound_theorem5(n, lifetime),
    }
    if prefix < UNREACHABLE:
        metrics["prefix_connectivity_time"] = float(prefix)
    return metrics


def run(scale: str = "default", *, seed: SeedLike = 2015) -> ExperimentReport:
    """Run E2 and build its report."""
    config = SCALES[scale]
    n = int(config["n"])
    sweep = ParameterSweep({"multiplier": list(config["multipliers"])}, constants={"n": n})
    experiment = Experiment(
        name="E2-lifetime",
        trial=trial_lifetime,
        description="Temporal diameter vs. lifetime (Theorem 5)",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed
    )
    sweep_result = runner.run_sweep(experiment, sweep)

    records: list[dict[str, Any]] = []
    scaled_x: list[float] = []
    measured_td: list[float] = []
    for point in sweep_result:
        multiplier = int(point.parameters["multiplier"])
        lifetime = multiplier * n
        td_stats = point.summary("temporal_diameter")
        bound = temporal_diameter_lower_bound_theorem5(n, lifetime)
        record = {
            "n": n,
            "lifetime_over_n": multiplier,
            "lifetime": lifetime,
            "mean_temporal_diameter": td_stats.mean,
            "theorem5_scale_(a/n)log_n": bound,
            "TD_over_scale": td_stats.mean / bound,
        }
        if "prefix_connectivity_time" in point.metric_names():
            record["mean_prefix_connectivity_time"] = point.mean("prefix_connectivity_time")
        records.append(record)
        scaled_x.append(bound)
        measured_td.append(td_stats.mean)

    fit = fit_scaled_log_model(scaled_x, measured_td)
    slope = fit.coefficients[0]
    ratios = [record["TD_over_scale"] for record in records]
    base_td = measured_td[0]
    largest_td = measured_td[-1]
    largest_multiplier = int(config["multipliers"][-1])

    comparison = [
        ComparisonRow(
            quantity="TD grows linearly in (a/n)·log n",
            paper="TD = Ω((a/n)·log n) when a ≫ n (Theorem 5)",
            measured=f"fit TD ≈ {slope:.2f}·(a/n)·log n + {fit.coefficients[1]:.2f} (R²={fit.r_squared:.3f})",
            matches=slope > 0.5 and fit.r_squared > 0.9,
            note="linear response to the lifetime scale, as predicted",
        ),
        ComparisonRow(
            quantity="longer lifetimes slow dissemination",
            paper="the dependence on the lifetime is not captured by static models",
            measured=(
                f"TD rises from {base_td:.1f} (a=n) to {largest_td:.1f} "
                f"(a={largest_multiplier}·n)"
            ),
            matches=largest_td > 2 * base_td,
            note="monotone increase across the sweep",
        ),
        ComparisonRow(
            quantity="TD / ((a/n)·log n) stays bounded",
            paper="matching O((a/n)·log n) behaviour expected from the upper-bound argument",
            measured=f"ratios in [{min(ratios):.2f}, {max(ratios):.2f}]",
            matches=max(ratios) < 10 * max(min(ratios), 1e-9),
            note="constant-factor corridor around the predicted scale",
        ),
    ]
    return ExperimentReport(
        experiment_id="E2",
        title="Temporal diameter vs. lifetime",
        claim=(
            "If the lifetime a is asymptotically larger than n, the temporal diameter "
            "of the uniform random temporal clique must be Ω((a/n)·log n) (Theorem 5)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "prefix_connectivity_time is the per-instance certified lower bound used "
            "by the Theorem 5 argument (first time at which the labelled-so-far edges "
            "connect the clique)."
        ),
        scale=scale,
    )
