"""E2 — Dependence of the temporal diameter on the lifetime (Theorem 5).

When each arc of the clique receives one uniform label from ``{1, …, a}`` with
``a`` larger than ``n``, the temporal diameter must grow like
``Ω((a/n)·log n)``: the arcs labelled at most ``k`` form an Erdős–Rényi graph
``G(n, k/a)`` which is disconnected below the ``log n / n`` threshold, so no
instance can have all pairs communicate before ``k ≈ (a/n)·log n``.

The workload is the declarative scenario ``"E2"`` (clique × single uniform
label with lifetime ``multiplier·n`` × diameter/bound/certificate suite);
this module runs it through the generic pipeline and checks that the measured
diameters scale linearly in ``(a/n)·log n``.
"""

from __future__ import annotations

from typing import Any

from ..analysis.comparison import ComparisonRow
from ..analysis.fitting import fit_scaled_log_model
from ..core.lifetime import temporal_diameter_lower_bound_theorem5
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E2_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_lifetime", "run", "build_report", "SCALES"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_lifetime = ScenarioTrial(get_scenario("E2"))


def run(
    scale: str = "default", *, seed: SeedLike = 2015, jobs: int | None = None
) -> ExperimentReport:
    """Run E2 through the scenario pipeline and build its report.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E2"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E2 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    n = int(config["n"])
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    scaled_x: list[float] = []
    measured_td: list[float] = []
    for point in sweep_result:
        multiplier = int(point.parameters["multiplier"])
        lifetime = multiplier * n
        td_stats = point.summary("temporal_diameter")
        bound = temporal_diameter_lower_bound_theorem5(n, lifetime)
        record = {
            "n": n,
            "lifetime_over_n": multiplier,
            "lifetime": lifetime,
            "mean_temporal_diameter": td_stats.mean,
            "theorem5_scale_(a/n)log_n": bound,
            "TD_over_scale": td_stats.mean / bound,
        }
        if "prefix_connectivity_time" in point.metric_names():
            record["mean_prefix_connectivity_time"] = point.mean("prefix_connectivity_time")
        records.append(record)
        scaled_x.append(bound)
        measured_td.append(td_stats.mean)

    fit = fit_scaled_log_model(scaled_x, measured_td)
    slope = fit.coefficients[0]
    ratios = [record["TD_over_scale"] for record in records]
    base_td = measured_td[0]
    largest_td = measured_td[-1]
    largest_multiplier = int(config["multipliers"][-1])

    comparison = [
        ComparisonRow(
            quantity="TD grows linearly in (a/n)·log n",
            paper="TD = Ω((a/n)·log n) when a ≫ n (Theorem 5)",
            measured=f"fit TD ≈ {slope:.2f}·(a/n)·log n + {fit.coefficients[1]:.2f} (R²={fit.r_squared:.3f})",
            matches=slope > 0.5 and fit.r_squared > 0.9,
            note="linear response to the lifetime scale, as predicted",
        ),
        ComparisonRow(
            quantity="longer lifetimes slow dissemination",
            paper="the dependence on the lifetime is not captured by static models",
            measured=(
                f"TD rises from {base_td:.1f} (a=n) to {largest_td:.1f} "
                f"(a={largest_multiplier}·n)"
            ),
            matches=largest_td > 2 * base_td,
            note="monotone increase across the sweep",
        ),
        ComparisonRow(
            quantity="TD / ((a/n)·log n) stays bounded",
            paper="matching O((a/n)·log n) behaviour expected from the upper-bound argument",
            measured=f"ratios in [{min(ratios):.2f}, {max(ratios):.2f}]",
            matches=max(ratios) < 10 * max(min(ratios), 1e-9),
            note="constant-factor corridor around the predicted scale",
        ),
    ]
    return ExperimentReport(
        experiment_id="E2",
        title="Temporal diameter vs. lifetime",
        claim=(
            "If the lifetime a is asymptotically larger than n, the temporal diameter "
            "of the uniform random temporal clique must be Ω((a/n)·log n) (Theorem 5)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "prefix_connectivity_time is the per-instance certified lower bound used "
            "by the Theorem 5 argument (first time at which the labelled-so-far edges "
            "connect the clique)."
        ),
        scale=scale,
    )
