"""E3 / F1 — The Expansion Process algorithm (Algorithm 1, Theorem 3).

The constructive heart of the paper: the expansion process grows layered
frontiers out of ``s`` and into ``t`` and links them with a single matching
edge, giving an explicit journey of arrival time ``≤ 3c₁·log n + 2d·c₂``.
Theorem 3 says the construction succeeds with probability ``1 − O(n⁻³)``.

The workload is the declarative scenario ``"E3"`` (clique × normalized U-RTN
× expansion-process metric); this module runs it through the generic
pipeline and reports, per ``n``:

* the success probability of the construction,
* the arrival time of the constructed journey versus the analytic time bound
  and versus the exact temporal distance (foremost journey) for the same pair,
* the layer-size trace ``|Γ_i(s)|, |Γ'_i(t)|`` — the measured counterpart of
  the paper's Figure 1 (reported for the largest ``n`` in the sweep).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..core.expansion import ExpansionParameters, expansion_process
from ..core.labeling import normalized_urtn
from ..graphs.generators import complete_graph
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E3_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_expansion", "run", "build_report", "SCALES"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_expansion = ScenarioTrial(get_scenario("E3"))


def _layer_trace(n: int, c1: float, c2: float, seed: SeedLike) -> list[dict[str, Any]]:
    """Single-instance layer-size trace (the measured Figure 1)."""
    rng = np.random.default_rng(seed if not isinstance(seed, np.random.Generator) else None)
    parameters = ExpansionParameters.suggest(n, c1=c1, c2=c2)
    clique = complete_graph(n, directed=True)
    network = normalized_urtn(clique, seed=rng)
    result = expansion_process(network, 0, 1, parameters)
    trace = []
    for i, (forward, backward) in enumerate(
        zip(result.forward_layer_sizes, result.backward_layer_sizes), start=1
    ):
        trace.append({"layer": i, "forward_size": forward, "backward_size": backward})
    return trace


def run(
    scale: str = "default", *, seed: SeedLike = 2016, jobs: int | None = None
) -> ExperimentReport:
    """Run E3 (and the F1 layer trace) through the scenario pipeline.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E3"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E3 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    success_rates: list[float] = []
    for point in sweep_result:
        n = int(point.parameters["n"])
        success = point.mean("success")
        record: dict[str, Any] = {
            "n": n,
            "success_probability": success,
            "time_bound_3c1logn+2dc2": point.mean("time_bound"),
            "log_n": math.log(n),
            "final_forward_layer": point.mean("final_forward_layer"),
            "sqrt_n_target": math.sqrt(n),
        }
        if "arrival_time" in point.metric_names():
            record["mean_arrival_time"] = point.mean("arrival_time")
            record["mean_exact_temporal_distance"] = point.mean("optimal_arrival")
            record["mean_journey_hops"] = point.mean("journey_hops")
        records.append(record)
        success_rates.append(success)

    layer_trace = _layer_trace(
        int(config["sizes"][-1]), config["c1"], config["c2"], result.seed
    )

    largest = records[-1]
    arrival_ok = (
        "mean_arrival_time" in largest
        and largest["mean_arrival_time"] <= largest["time_bound_3c1logn+2dc2"] + 1e-9
    )
    comparison = [
        ComparisonRow(
            quantity="Algorithm 1 succeeds with high probability",
            paper="success probability ≥ 1 − 3/n³ (Theorem 3)",
            measured=f"measured success rates {['%.2f' % s for s in success_rates]} over the n sweep",
            matches=min(success_rates) >= 0.8,
            note="practical constants c1/c2 (DESIGN.md §5); success should not degrade with n",
        ),
        ComparisonRow(
            quantity="constructed journey arrives within 3c₁·log n + 2d·c₂",
            paper="arrival ≤ 3c₁ log n + 2dc₂ = Θ(log n) by construction",
            measured=(
                f"mean arrival {largest.get('mean_arrival_time', float('nan')):.1f} vs bound "
                f"{largest['time_bound_3c1logn+2dc2']:.1f} at n={largest['n']}"
            ),
            matches=bool(arrival_ok),
            note="interval bookkeeping enforces the bound whenever the algorithm succeeds",
        ),
        ComparisonRow(
            quantity="frontiers reach ≈√n vertices (Theorems 1–2)",
            paper="|Γ_{d+1}(s)|, |Γ'_{d+1}(t)| = Θ(√n) whp",
            measured=(
                f"final forward layer ≈ {largest['final_forward_layer']:.1f} vs √n = "
                f"{largest['sqrt_n_target']:.1f} at n={largest['n']}"
            ),
            matches=largest["final_forward_layer"] >= 0.5 * largest["sqrt_n_target"],
            note="layer sizes of the last expansion step",
        ),
    ]
    trace_text = "; ".join(
        "layer {layer}: forward={forward_size}, backward={backward_size}".format(**row)
        for row in layer_trace
    )
    notes = (
        "F1 (Figure 1 counterpart) — layer-size trace of a single instance at "
        f"n={config['sizes'][-1]}: {trace_text}"
    )
    return ExperimentReport(
        experiment_id="E3",
        title="Expansion Process (Algorithm 1)",
        claim=(
            "The expansion process finds an s→t journey of arrival time Θ(log n) with "
            "probability at least 1 − 3/n³ on the directed normalized U-RT clique "
            "(Theorem 3); its frontiers grow to Θ(√n) vertices (Theorems 1–2)."
        ),
        records=records,
        comparison=comparison,
        notes=notes,
        scale=scale,
    )
