"""E4 — Message dissemination in the hostile clique (§3.5) vs. the phone-call model.

The flooding protocol of §3.5 ("send the moment an out-arc becomes available")
broadcasts from any source in ``O(log n)`` time whp on the normalized U-RT
clique.  The paper's §1.1 contrasts this with the classic random phone-call
push protocol, which also takes ``Θ(log n)`` rounds but relies on *protocol*
randomness, whereas here randomness lives entirely in the input labels.

The experiment sweeps ``n`` and reports the flooding broadcast time next to
``log n``, the direct-wait baseline ``n/2`` and the phone-call push rounds.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..analysis.bounds import expected_direct_wait, phone_call_rounds_prediction
from ..analysis.comparison import ComparisonRow
from ..analysis.fitting import fit_log_model
from ..core.dissemination import flood_broadcast, push_phone_call_broadcast
from ..core.labeling import normalized_urtn
from ..graphs.generators import complete_graph
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.sweep import ParameterSweep
from ..types import UNREACHABLE
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_dissemination", "run", "SCALES"]

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": (16, 32, 64), "repetitions": 5, "directed": True},
    "default": {"sizes": (16, 32, 64, 128, 256), "repetitions": 15, "directed": True},
    "full": {"sizes": (32, 64, 128, 256, 512, 1024), "repetitions": 25, "directed": True},
}


def trial_dissemination(
    params: Mapping[str, Any], rng: np.random.Generator
) -> dict[str, float]:
    """One trial: flooding on a fresh U-RT clique plus the phone-call baseline."""
    n = int(params["n"])
    directed = bool(params.get("directed", True))
    clique = complete_graph(n, directed=directed)
    network = normalized_urtn(clique, seed=rng)
    source = int(rng.integers(0, n))
    flood = flood_broadcast(network, source)
    phone = push_phone_call_broadcast(n, source=source, seed=rng)
    metrics: dict[str, float] = {
        "flood_completed": 1.0 if flood.completed else 0.0,
        "flood_transmissions": float(flood.num_transmissions),
        "phone_rounds": float(phone.broadcast_time if phone.completed else UNREACHABLE),
        "phone_transmissions": float(phone.num_transmissions),
    }
    if flood.completed:
        metrics["flood_broadcast_time"] = float(flood.broadcast_time)
    return metrics


def run(scale: str = "default", *, seed: SeedLike = 2017) -> ExperimentReport:
    """Run E4 and build its report."""
    config = SCALES[scale]
    sweep = ParameterSweep(
        {"n": list(config["sizes"])}, constants={"directed": config["directed"]}
    )
    experiment = Experiment(
        name="E4-dissemination",
        trial=trial_dissemination,
        description="Flooding broadcast time on the hostile clique (§3.5)",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed
    )
    sweep_result = runner.run_sweep(experiment, sweep)

    records: list[dict[str, Any]] = []
    sizes: list[float] = []
    broadcast_times: list[float] = []
    for point in sweep_result:
        n = int(point.parameters["n"])
        completed = point.mean("flood_completed")
        record: dict[str, Any] = {
            "n": n,
            "flood_completion_rate": completed,
            "log_n": math.log(n),
            "direct_wait_baseline": expected_direct_wait(n),
            "phone_call_rounds": point.mean("phone_rounds"),
            "phone_call_prediction": phone_call_rounds_prediction(n),
            "flood_transmissions": point.mean("flood_transmissions"),
        }
        if "flood_broadcast_time" in point.metric_names():
            record["flood_broadcast_time"] = point.mean("flood_broadcast_time")
            sizes.append(float(n))
            broadcast_times.append(record["flood_broadcast_time"])
        records.append(record)

    fit = fit_log_model(sizes, broadcast_times)
    largest = records[-1]
    comparison = [
        ComparisonRow(
            quantity="flooding informs everyone",
            paper="the protocol disseminates to all vertices whp (§3.5)",
            measured=f"completion rates {[round(r['flood_completion_rate'], 2) for r in records]}",
            matches=all(r["flood_completion_rate"] >= 0.99 for r in records),
            note="the clique always provides the direct fallback edge",
        ),
        ComparisonRow(
            quantity="broadcast time is O(log n)",
            paper="dissemination completes in O(log n) time (§3.5 via Theorem 4)",
            measured=(
                f"fit time ≈ {fit.coefficients[0]:.2f}·log n + {fit.coefficients[1]:.2f} "
                f"(R²={fit.r_squared:.3f})"
            ),
            matches=fit.r_squared > 0.8,
            note="logarithmic growth of the measured broadcast time",
        ),
        ComparisonRow(
            quantity="comparable to the random phone-call model",
            paper="phone-call push also needs Θ(log n) rounds, but with protocol randomness (§1.1)",
            measured=(
                f"at n={largest['n']}: flooding {largest.get('flood_broadcast_time', float('nan')):.1f} "
                f"time steps vs phone-call {largest['phone_call_rounds']:.1f} rounds"
            ),
            matches=largest.get("flood_broadcast_time", float("inf"))
            < expected_direct_wait(int(largest["n"])) / 2,
            note="both are exponentially below the n/2 direct-wait baseline",
        ),
    ]
    return ExperimentReport(
        experiment_id="E4",
        title="Flooding dissemination vs. the phone-call baseline",
        claim=(
            "A vertex can spread a message to all others in O(log n) time on the hostile "
            "clique using the natural flooding protocol (§3.5); the random phone-call "
            "push baseline achieves the same order using protocol randomness (§1.1)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "Flood time is measured in temporal-label units, phone-call time in "
            "synchronous rounds; the comparison is about growth order, not units."
        ),
        scale=scale,
    )
