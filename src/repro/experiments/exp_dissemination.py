"""E4 — Message dissemination in the hostile clique (§3.5) vs. the phone-call model.

The flooding protocol of §3.5 ("send the moment an out-arc becomes available")
broadcasts from any source in ``O(log n)`` time whp on the normalized U-RT
clique.  The paper's §1.1 contrasts this with the classic random phone-call
push protocol, which also takes ``Θ(log n)`` rounds but relies on *protocol*
randomness, whereas here randomness lives entirely in the input labels.

The workload is the declarative scenario ``"E4"`` (clique × normalized U-RTN
× flood-vs-phone-call metric); this module runs it through the generic
pipeline and reports the flooding broadcast time next to ``log n``, the
direct-wait baseline ``n/2`` and the phone-call push rounds.
"""

from __future__ import annotations

import math
from typing import Any

from ..analysis.bounds import expected_direct_wait, phone_call_rounds_prediction
from ..analysis.comparison import ComparisonRow
from ..analysis.fitting import fit_log_model
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E4_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_dissemination", "run", "build_report", "SCALES"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_dissemination = ScenarioTrial(get_scenario("E4"))


def run(
    scale: str = "default", *, seed: SeedLike = 2017, jobs: int | None = None
) -> ExperimentReport:
    """Run E4 through the scenario pipeline and build its report.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E4"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E4 scenario run into the paper-vs-measured report."""
    scale = result.scale
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    sizes: list[float] = []
    broadcast_times: list[float] = []
    for point in sweep_result:
        n = int(point.parameters["n"])
        completed = point.mean("flood_completed")
        record: dict[str, Any] = {
            "n": n,
            "flood_completion_rate": completed,
            "log_n": math.log(n),
            "direct_wait_baseline": expected_direct_wait(n),
            "phone_call_rounds": point.mean("phone_rounds"),
            "phone_call_prediction": phone_call_rounds_prediction(n),
            "flood_transmissions": point.mean("flood_transmissions"),
        }
        if "flood_broadcast_time" in point.metric_names():
            record["flood_broadcast_time"] = point.mean("flood_broadcast_time")
            sizes.append(float(n))
            broadcast_times.append(record["flood_broadcast_time"])
        records.append(record)

    fit = fit_log_model(sizes, broadcast_times)
    largest = records[-1]
    comparison = [
        ComparisonRow(
            quantity="flooding informs everyone",
            paper="the protocol disseminates to all vertices whp (§3.5)",
            measured=f"completion rates {[round(r['flood_completion_rate'], 2) for r in records]}",
            matches=all(r["flood_completion_rate"] >= 0.99 for r in records),
            note="the clique always provides the direct fallback edge",
        ),
        ComparisonRow(
            quantity="broadcast time is O(log n)",
            paper="dissemination completes in O(log n) time (§3.5 via Theorem 4)",
            measured=(
                f"fit time ≈ {fit.coefficients[0]:.2f}·log n + {fit.coefficients[1]:.2f} "
                f"(R²={fit.r_squared:.3f})"
            ),
            matches=fit.r_squared > 0.8,
            note="logarithmic growth of the measured broadcast time",
        ),
        ComparisonRow(
            quantity="comparable to the random phone-call model",
            paper="phone-call push also needs Θ(log n) rounds, but with protocol randomness (§1.1)",
            measured=(
                f"at n={largest['n']}: flooding {largest.get('flood_broadcast_time', float('nan')):.1f} "
                f"time steps vs phone-call {largest['phone_call_rounds']:.1f} rounds"
            ),
            matches=largest.get("flood_broadcast_time", float("inf"))
            < expected_direct_wait(int(largest["n"])) / 2,
            note="both are exponentially below the n/2 direct-wait baseline",
        ),
    ]
    return ExperimentReport(
        experiment_id="E4",
        title="Flooding dissemination vs. the phone-call baseline",
        claim=(
            "A vertex can spread a message to all others in O(log n) time on the hostile "
            "clique using the natural flooding protocol (§3.5); the random phone-call "
            "push baseline achieves the same order using protocol randomness (§1.1)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "Flood time is measured in temporal-label units, phone-call time in "
            "synchronous rounds; the comparison is about growth order, not units."
        ),
        scale=scale,
    )
