"""E1 — Temporal diameter of the normalized uniform random temporal clique.

Theorem 4 (plus the Remark following it): with one uniform label per arc drawn
from ``{1, …, n}``, the temporal diameter of the directed clique is
``Θ(log n)`` with high probability and in expectation — exponentially smaller
than the ``≈ n/2`` a single direct hop would need in expectation.

The workload itself is the declarative scenario ``"E1"`` (clique × normalized
U-RTN × distance-summary suite, defined in :mod:`repro.scenarios.library`);
this module is the thin report layer: :func:`run` executes the scenario
through the generic pipeline and :func:`build_report` turns the sweep into
the paper-vs-measured record —

* the mean temporal diameter and its ratio to ``log n`` (should stabilise at a
  constant ``γ``),
* the fitted ``c·log n + b`` model and its ``R²``,
* the fitted power-law exponent (should be ≈ 0.3 or less, i.e. clearly
  sub-linear, while the direct-wait baseline grows linearly).
"""

from __future__ import annotations

import math
from typing import Any

from ..analysis.bounds import expected_direct_wait, temporal_diameter_prediction
from ..analysis.comparison import ComparisonRow
from ..analysis.fitting import fit_log_model, fit_power_model
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E1_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_temporal_diameter", "run", "build_report", "SCALES"]

#: The scenario's trial function (kept for direct Experiment construction,
#: e.g. by the parallel-engine benchmarks; picklable for process pools).
trial_temporal_diameter = ScenarioTrial(get_scenario("E1"))


def run(
    scale: str = "default", *, seed: SeedLike = 2014, jobs: int | None = None
) -> ExperimentReport:
    """Run E1 through the scenario pipeline and build its report.

    ``jobs=N`` executes the trials of each sweep point on ``N`` worker
    processes via the parallel engine; the report is bit-identical to a
    serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E1"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E1 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    sizes: list[float] = []
    diameters: list[float] = []
    for point in sweep_result:
        n = int(point.parameters["n"])
        stats = point.summary("temporal_diameter")
        ratio = point.summary("ratio_to_log_n")
        records.append(
            {
                "n": n,
                "mean_temporal_diameter": stats.mean,
                "ci_low": stats.ci_low,
                "ci_high": stats.ci_high,
                "log_n": math.log(n),
                "ratio_TD_over_log_n": ratio.mean,
                "direct_wait_baseline": expected_direct_wait(n),
            }
        )
        sizes.append(float(n))
        diameters.append(stats.mean)

    log_fit = fit_log_model(sizes, diameters)
    power_fit = fit_power_model(sizes, diameters)
    gamma = log_fit.coefficients[0]
    ratios = [record["ratio_TD_over_log_n"] for record in records]
    ratio_spread = max(ratios) - min(ratios)
    largest_n = int(sizes[-1])
    largest_td = diameters[-1]

    comparison = [
        ComparisonRow(
            quantity="TD grows as Θ(log n)",
            paper="TD ≤ γ·log n whp, TD = Ω(log n) (Thm 4 + Remark)",
            measured=(
                f"fit TD ≈ {gamma:.2f}·log n + {log_fit.coefficients[1]:.2f} "
                f"(R²={log_fit.r_squared:.3f}); power-law exponent "
                f"{power_fit.coefficients[1]:.2f}"
            ),
            matches=log_fit.r_squared > 0.8 and power_fit.coefficients[1] < 0.6,
            note="logarithmic fit explains the growth; clearly sub-polynomial",
        ),
        ComparisonRow(
            quantity="TD/log n stabilises at a constant γ",
            paper="γ constant, γ > 1",
            measured=f"ratios in [{min(ratios):.2f}, {max(ratios):.2f}] across the sweep",
            matches=ratio_spread < max(ratios) and min(ratios) >= 1.0,
            note="ratio varies slowly compared to its magnitude",
        ),
        ComparisonRow(
            quantity=f"multi-hop journeys beat the direct edge (n={largest_n})",
            paper="direct wait ≈ n/2, journeys O(log n)",
            measured=(
                f"TD ≈ {largest_td:.1f} vs direct-wait baseline "
                f"{expected_direct_wait(largest_n):.1f}"
            ),
            matches=largest_td < expected_direct_wait(largest_n) / 2,
            note="the 'hostile clique is not secure' headline result",
        ),
    ]
    return ExperimentReport(
        experiment_id="E1",
        title="Temporal diameter of the normalized U-RT clique",
        claim=(
            "The temporal diameter of the directed clique with one uniform random "
            "label per arc from {1,…,n} is Θ(log n) whp and in expectation "
            "(Theorems 3–4 and the Remark in §3.4), far below the ≈ n/2 expected "
            "wait of the single direct edge."
        ),
        records=records,
        comparison=comparison,
        notes=(
            "Exact temporal diameters are computed per instance via all-pairs "
            "foremost journeys; the expectation is estimated over "
            f"{config['repetitions']} instances per n. Prediction reference: "
            f"γ·log n with fitted γ={temporal_diameter_prediction(2, gamma=gamma) / math.log(2):.2f}."
        ),
        scale=scale,
    )
