"""Reproduction experiments — one module per claim of the paper.

Every experiment module exposes a ``run(scale=..., seed=...)`` function that
returns an :class:`~repro.experiments.reporting.ExperimentReport`; the
registry maps experiment identifiers (E1 … E7, matching DESIGN.md §4) to those
functions and provides the ``repro-experiments`` command-line entry point.
"""

from .reporting import ExperimentReport, write_experiments_markdown
from .registry import EXPERIMENTS, get_experiment, main, run_experiments

__all__ = [
    "ExperimentReport",
    "write_experiments_markdown",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiments",
    "main",
]
