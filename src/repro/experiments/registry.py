"""Experiment registry and the ``repro-experiments`` command-line interface.

The registry maps the DESIGN.md experiment identifiers (E1 … E9) to the
corresponding ``run(scale, seed)`` functions; the CLI runs any subset at a
chosen scale and writes the combined EXPERIMENTS.md report.

A second command family drives the declarative scenario layer directly::

    repro-experiments scenario list
    repro-experiments scenario show E5
    repro-experiments scenario run hypercube-urtn-diameter --scale quick --jobs 4
    repro-experiments scenario sweep er-fcase-reachability --set n=64,128 --set r=2,8

``scenario show`` prints an entry's JSON spec (redirect it to a file and
``read_scenario_json`` rebuilds the scenario); ``scenario run`` executes any
registry entry — experiment-backed or not —
through the one generic pipeline; ``scenario sweep`` does the same after
overriding sweep axes from the command line, which is how a brand-new
workload point is probed without touching any code.

Observability: every run command accepts ``--telemetry summary`` (compact
counters/timings on stderr) or ``--telemetry jsonl:PATH`` (machine-readable
trace records appended to PATH), and ::

    repro-experiments profile <scenario> [--scale quick]

runs a scenario under a telemetry session and prints the per-layer breakdown
(scenario pipeline / parallel engine / artifact cache / CSR kernels) — see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from contextlib import nullcontext
from typing import Any, Callable, ContextManager, Sequence

from .. import telemetry
from ..core import blocked_sweeps, kernels
from ..exceptions import ConfigurationError
from ..io.tables import format_table
from ..scenarios import get_scenario, iter_scenarios, run_scenario
from ..scenarios.registry import experiment_scenarios
from ..utils.logging import enable_console_logging
from ..utils.seeding import SeedLike
from . import (
    exp_dissemination,
    exp_er_connectivity,
    exp_expansion,
    exp_fcase,
    exp_general_por,
    exp_lifetime,
    exp_multilabel,
    exp_star_por,
    exp_temporal_diameter,
)
from .reporting import ExperimentReport, write_experiments_markdown

__all__ = ["EXPERIMENTS", "DESCRIPTIONS", "get_experiment", "run_experiments", "main"]

#: Registry: experiment id → run callable (``run(scale=..., seed=...)``).
EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "E1": exp_temporal_diameter.run,
    "E2": exp_lifetime.run,
    "E3": exp_expansion.run,
    "E4": exp_dissemination.run,
    "E5": exp_star_por.run,
    "E6": exp_general_por.run,
    "E7": exp_er_connectivity.run,
    "E8": exp_fcase.run,
    "E9": exp_multilabel.run,
}

#: Human-readable one-line description per experiment id.
DESCRIPTIONS: dict[str, str] = {
    "E1": "Temporal diameter of the normalized U-RT clique (Theorem 4)",
    "E2": "Temporal diameter vs. lifetime (Theorem 5)",
    "E3": "Expansion Process / Algorithm 1 (Theorem 3, Figure 1)",
    "E4": "Flooding dissemination vs. phone-call baseline (Section 3.5)",
    "E5": "Star graph labels-per-edge threshold and PoR (Theorem 6, Figure 2)",
    "E6": "General graphs: Theorems 7-8 and the box assignment (Figure 3)",
    "E7": "Erdos-Renyi connectivity threshold substrate",
    "E8": "Extension: non-uniform label distributions (F-CASE)",
    "E9": "Extension: multi-label random cliques",
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up an experiment's run function by its identifier (case-insensitive)."""
    key = experiment_id.strip().upper()
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def _telemetry_session(spec: str | None) -> ContextManager[Any]:
    """Build the telemetry session context a ``--telemetry`` flag asked for.

    ``None`` (flag absent) yields a no-op context; ``"summary"`` prints the
    stderr counters/timings summary when the command finishes;
    ``"jsonl:PATH"`` appends the machine-readable trace records to PATH.
    """
    if spec is None:
        return nullcontext(None)
    if spec == "summary":
        return telemetry.session(telemetry.StderrSummarySink())
    if spec.startswith("jsonl:"):
        path = spec[len("jsonl:"):]
        if not path:
            raise ConfigurationError(
                "--telemetry jsonl: needs a path, e.g. --telemetry jsonl:trace.jsonl"
            )
        return telemetry.session(telemetry.JsonlSink(path))
    raise ConfigurationError(
        f"--telemetry expects 'summary' or 'jsonl:PATH', got {spec!r}"
    )


def _add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="SINK",
        help=(
            "record telemetry for the run: 'summary' prints counters/timings "
            "to stderr, 'jsonl:PATH' appends trace records to PATH"
        ),
    )


def _add_kernel_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel-backend",
        default=None,
        metavar="NAME",
        dest="kernel_backend",
        help=(
            "run every sweep on this kernel backend (see repro.core.kernels: "
            "'numpy', 'numba', ...; default: automatic selection).  An "
            "unusable explicit backend is an error, not a silent fallback"
        ),
    )


def _add_tile_size_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tile-size",
        default=None,
        type=int,
        metavar="ROWS",
        dest="tile_size",
        help=(
            "stream distance summaries through the out-of-core blocked sweep "
            "engine, ROWS sources per tile (O(n*ROWS) memory instead of "
            "O(n^2), bit-identical results; default: dense sweeps).  "
            "Composes with --jobs: tiles run within shards"
        ),
    )


def _tile_size_scope(args: argparse.Namespace) -> ContextManager[Any]:
    """Install the ``--tile-size`` choice as the process-wide tile size.

    An installed tile size flips the ``distance_summary`` metric onto the
    blocked (out-of-core) path; results are bit-identical, only the memory
    profile changes.  Like the kernel backend, the value is also shipped to
    engine workers through the shard task, so ``--jobs N`` runs stream
    inside every worker.
    """
    size = getattr(args, "tile_size", None)
    if size is None:
        return nullcontext(None)
    return blocked_sweeps.tile_size_scope(size)


def _kernel_backend_scope(args: argparse.Namespace) -> ContextManager[Any]:
    """Install the ``--kernel-backend`` choice as the process default.

    Strict: the CLI names the backend explicitly, so a missing or broken one
    raises :class:`~repro.exceptions.ConfigurationError` (exit code 2) rather
    than silently computing on another backend.  The default is also shipped
    to engine workers through the shard task, so ``--jobs N`` runs sweep on
    the same backend.
    """
    name = getattr(args, "kernel_backend", None)
    if name is None:
        return nullcontext(None)
    return kernels.backend_scope(name, strict=True)


def _accepts_jobs(run: Callable[..., ExperimentReport]) -> bool:
    """Whether an experiment's run function takes the ``jobs`` keyword."""
    try:
        return "jobs" in inspect.signature(run).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin/odd callables
        return False


def run_experiments(
    ids: Sequence[str] | None = None,
    *,
    scale: str = "default",
    seed: SeedLike = 2014,
    jobs: int | None = None,
) -> list[ExperimentReport]:
    """Run the requested experiments (all of them by default) and return the reports.

    ``jobs=N`` fans each experiment's work out over ``N`` worker processes
    through the parallel engine — every registry entry accepts it, and the
    flag never changes any experiment's results, only its wall-clock.
    """
    selected = list(ids) if ids else sorted(EXPERIMENTS)
    reports = []
    for experiment_id in selected:
        run = get_experiment(experiment_id)
        if jobs is not None and _accepts_jobs(run):
            reports.append(run(scale, seed=seed, jobs=jobs))
        else:
            reports.append(run(scale, seed=seed))
    return reports


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the claims of 'Ephemeral Networks with Random Availability "
            "of Links' (SPAA 2014). Runs Monte-Carlo experiments and writes a "
            "paper-vs-measured report. Use the 'scenario' subcommand to drive "
            "the declarative scenario registry directly."
        ),
    )
    parser.add_argument(
        "--ids",
        nargs="*",
        default=None,
        metavar="EID",
        help="experiment ids to run (default: all). " + "; ".join(
            f"{key}: {value}" for key, value in DESCRIPTIONS.items()
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "full"),
        default="default",
        help="parameter preset (quick ≈ seconds, default ≈ minutes, full ≈ tens of minutes)",
    )
    parser.add_argument("--seed", type=int, default=2014, help="master RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run Monte-Carlo trials on N worker processes (results are "
            "bit-identical to a serial run for the same seed)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the combined markdown report to this path (e.g. EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-experiment console output"
    )
    _add_telemetry_option(parser)
    _add_kernel_backend_option(parser)
    _add_tile_size_option(parser)
    return parser


# --------------------------------------------------------------------- #
# the `scenario` command family
# --------------------------------------------------------------------- #
def _build_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments scenario",
        description="Drive the declarative scenario registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered scenario")

    show_parser = sub.add_parser(
        "show",
        help="print a scenario's JSON spec (read_scenario_json round-trips it)",
    )
    show_parser.add_argument("name", help="scenario name (see 'scenario list')")

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("name", help="scenario name (see 'scenario list')")
        p.add_argument(
            "--scale", default="default", help="scale preset (default: 'default')"
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="master RNG seed (default: the scenario's default_seed)",
        )
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes (bit-identical to serial for the same seed)",
        )
        p.add_argument(
            "--records", default=None, metavar="PATH",
            help="write the flat result records as JSON to this path",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress the results table"
        )
        _add_telemetry_option(p)
        _add_kernel_backend_option(p)
        _add_tile_size_option(p)

    run_parser = sub.add_parser(
        "run", help="run one scenario through the generic pipeline"
    )
    add_run_options(run_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scenario with sweep axes overridden from the CLI"
    )
    add_run_options(sweep_parser)
    sweep_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        dest="overrides",
        help=(
            "replace (or introduce) a sweep axis, e.g. --set n=64,128; "
            "repeat for several axes"
        ),
    )
    return parser


def _parse_axis_value(token: str) -> Any:
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    for converter in (int, float):
        try:
            return converter(token)
        except ValueError:
            continue
    return token


def _parse_overrides(entries: Sequence[str]) -> dict[str, list[Any]]:
    overrides: dict[str, list[Any]] = {}
    for entry in entries:
        if "=" not in entry:
            raise ConfigurationError(
                f"--set expects AXIS=V1,V2,..., got {entry!r}"
            )
        axis, _, values = entry.partition("=")
        axis = axis.strip()
        parsed = [_parse_axis_value(v.strip()) for v in values.split(",") if v.strip()]
        if not axis or not parsed:
            raise ConfigurationError(
                f"--set expects AXIS=V1,V2,..., got {entry!r}"
            )
        overrides[axis] = parsed
    return overrides


def _scenario_list() -> int:
    backed = set(experiment_scenarios())
    rows = []
    for scenario in iter_scenarios():
        rows.append(
            {
                "name": scenario.name,
                "mode": scenario.mode,
                "scales": ",".join(scenario.scale_names),
                "experiment": scenario.name if scenario.name in backed else "-",
                "description": scenario.description,
            }
        )
    print(format_table(rows))
    return 0


def _scenario_run(args: argparse.Namespace, overrides: dict[str, list[Any]]) -> int:
    scenario = get_scenario(args.name)
    if overrides:
        scenario = scenario.with_axes(overrides, scale=args.scale)
    with _kernel_backend_scope(args), _tile_size_scope(args), _telemetry_session(
        getattr(args, "telemetry", None)
    ):
        result = run_scenario(
            scenario, scale=args.scale, seed=args.seed, jobs=args.jobs
        )
    records = result.to_records()
    if not args.quiet:
        print(f"{scenario.name} — {scenario.title} [scale={args.scale}]")
        print(format_table(records))
    if args.records:
        from ..io.serialization import write_records_json

        path = write_records_json(records, args.records)
        print(f"wrote {path}")
    return 0


def _scenario_show(name: str) -> int:
    """Print the scenario's JSON spec — the exact text
    :func:`repro.io.serialization.read_scenario_json` rebuilds the scenario
    from, so ``scenario show X > x.json`` yields a runnable workload file."""
    print(get_scenario(name).to_json())
    return 0


def _scenario_main(argv: Sequence[str]) -> int:
    parser = _build_scenario_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _scenario_list()
    if args.command == "show":
        return _scenario_show(args.name)
    overrides = _parse_overrides(getattr(args, "overrides", []))
    return _scenario_run(args, overrides)


# --------------------------------------------------------------------- #
# the `profile` command
# --------------------------------------------------------------------- #
def _profile_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments profile",
        description=(
            "Run one scenario under a telemetry session and print the "
            "per-layer breakdown: scenario pipeline, parallel engine, "
            "analysis artifact cache, CSR sweep kernels."
        ),
    )
    parser.add_argument("name", help="scenario name (see 'scenario list')")
    parser.add_argument(
        "--scale", default="default", help="scale preset (default: 'default')"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="master RNG seed (default: the scenario's default_seed)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (per-shard telemetry merges into the totals)",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also append the raw telemetry records to this JSONL file",
    )
    _add_kernel_backend_option(parser)
    _add_tile_size_option(parser)
    args = parser.parse_args(argv)
    scenario = get_scenario(args.name)
    sinks = [telemetry.JsonlSink(args.jsonl)] if args.jsonl else []
    with _kernel_backend_scope(args), _tile_size_scope(args), \
            telemetry.session(*sinks) as recorder:
        run_scenario(scenario, scale=args.scale, seed=args.seed, jobs=args.jobs)
    print(
        telemetry.format_layer_report(
            recorder, title=f"profile: {scenario.name} [scale={args.scale}]"
        )
    )
    return 0


# --------------------------------------------------------------------- #
# the `serve` command
# --------------------------------------------------------------------- #
def _serve_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description=(
            "Run the analysis service: an HTTP daemon over the persistent "
            "artifact store.  POST /scenarios submits runs through the "
            "checkpointing engine, GET /results/{fingerprint} serves stored "
            "summaries, POST /query answers per-network analytical queries "
            "from a bounded cache of live analysis handles."
        ),
    )
    parser.add_argument(
        "--data-dir", default="./service-data", metavar="DIR",
        help=(
            "root of persistent state: the SQLite store plus per-run engine "
            "checkpoint directories (default: ./service-data)"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8350,
        help="bind port; 0 picks an ephemeral port (default: 8350)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=None, metavar="N",
        dest="cache_capacity",
        help="live analysis handles kept resident (default: 32)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="engine worker processes per scenario run (default: serial)",
    )
    _add_kernel_backend_option(parser)
    _add_tile_size_option(parser)
    args = parser.parse_args(argv)
    from ..service import serve as build_server

    # The scopes hold for the server's whole lifetime, so the job worker and
    # every query thread compute on the selected backend / tile size.
    with _kernel_backend_scope(args), _tile_size_scope(args):
        server = build_server(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            cache_capacity=args.cache_capacity,
            engine_jobs=args.jobs,
            kernel_backend=args.kernel_backend,
            tile_size=args.tile_size,
        )
        print(f"serving on {server.url} (data: {args.data_dir})", flush=True)
        server.serve_forever()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    enable_console_logging()
    if argv and argv[0] == "serve":
        try:
            return _serve_main(argv[1:])
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if argv and argv[0] == "scenario":
        try:
            return _scenario_main(argv[1:])
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if argv and argv[0] == "profile":
        try:
            return _profile_main(argv[1:])
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        with _kernel_backend_scope(args), _tile_size_scope(args), \
                _telemetry_session(args.telemetry):
            reports = run_experiments(
                args.ids, scale=args.scale, seed=args.seed, jobs=args.jobs
            )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        for report in reports:
            print(report.to_text())
            print()
    if args.output:
        path = write_experiments_markdown(reports, args.output)
        print(f"wrote {path}")
    failures = [report.experiment_id for report in reports if not report.consistent]
    if failures:
        print(
            f"warning: {len(failures)} experiment(s) reported inconsistencies: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
