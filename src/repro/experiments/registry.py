"""Experiment registry and the ``repro-experiments`` command-line interface.

The registry maps the DESIGN.md experiment identifiers (E1 … E7) to the
corresponding ``run(scale, seed)`` functions; the CLI runs any subset at a
chosen scale and writes the combined EXPERIMENTS.md report.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Sequence

from ..exceptions import ConfigurationError
from ..utils.logging import enable_console_logging
from ..utils.seeding import SeedLike
from . import (
    exp_dissemination,
    exp_er_connectivity,
    exp_expansion,
    exp_fcase,
    exp_general_por,
    exp_lifetime,
    exp_multilabel,
    exp_star_por,
    exp_temporal_diameter,
)
from .reporting import ExperimentReport, write_experiments_markdown

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiments", "main"]

#: Registry: experiment id → run callable (``run(scale=..., seed=...)``).
EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "E1": exp_temporal_diameter.run,
    "E2": exp_lifetime.run,
    "E3": exp_expansion.run,
    "E4": exp_dissemination.run,
    "E5": exp_star_por.run,
    "E6": exp_general_por.run,
    "E7": exp_er_connectivity.run,
    "E8": exp_fcase.run,
    "E9": exp_multilabel.run,
}

#: Human-readable one-line description per experiment id.
DESCRIPTIONS: dict[str, str] = {
    "E1": "Temporal diameter of the normalized U-RT clique (Theorem 4)",
    "E2": "Temporal diameter vs. lifetime (Theorem 5)",
    "E3": "Expansion Process / Algorithm 1 (Theorem 3, Figure 1)",
    "E4": "Flooding dissemination vs. phone-call baseline (Section 3.5)",
    "E5": "Star graph labels-per-edge threshold and PoR (Theorem 6, Figure 2)",
    "E6": "General graphs: Theorems 7-8 and the box assignment (Figure 3)",
    "E7": "Erdos-Renyi connectivity threshold substrate",
    "E8": "Extension: non-uniform label distributions (F-CASE)",
    "E9": "Extension: multi-label random cliques",
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up an experiment's run function by its identifier (case-insensitive)."""
    key = experiment_id.strip().upper()
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def _accepts_jobs(run: Callable[..., ExperimentReport]) -> bool:
    """Whether an experiment's run function takes the ``jobs`` keyword."""
    try:
        return "jobs" in inspect.signature(run).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin/odd callables
        return False


def run_experiments(
    ids: Sequence[str] | None = None,
    *,
    scale: str = "default",
    seed: SeedLike = 2014,
    jobs: int | None = None,
) -> list[ExperimentReport]:
    """Run the requested experiments (all of them by default) and return the reports.

    ``jobs=N`` fans each experiment's Monte-Carlo trials out over ``N`` worker
    processes through the parallel engine.  Experiments whose run functions
    have not (yet) been wired through the engine simply run serially — the
    flag never changes any experiment's results, only its wall-clock.
    """
    selected = list(ids) if ids else sorted(EXPERIMENTS)
    reports = []
    for experiment_id in selected:
        run = get_experiment(experiment_id)
        if jobs is not None and _accepts_jobs(run):
            reports.append(run(scale, seed=seed, jobs=jobs))
        else:
            reports.append(run(scale, seed=seed))
    return reports


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the claims of 'Ephemeral Networks with Random Availability "
            "of Links' (SPAA 2014). Runs Monte-Carlo experiments and writes a "
            "paper-vs-measured report."
        ),
    )
    parser.add_argument(
        "--ids",
        nargs="*",
        default=None,
        metavar="EID",
        help="experiment ids to run (default: all). " + "; ".join(
            f"{key}: {value}" for key, value in DESCRIPTIONS.items()
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "default", "full"),
        default="default",
        help="parameter preset (quick ≈ seconds, default ≈ minutes, full ≈ tens of minutes)",
    )
    parser.add_argument("--seed", type=int, default=2014, help="master RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run Monte-Carlo trials on N worker processes (results are "
            "bit-identical to a serial run for the same seed)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the combined markdown report to this path (e.g. EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-experiment console output"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    enable_console_logging()
    try:
        reports = run_experiments(
            args.ids, scale=args.scale, seed=args.seed, jobs=args.jobs
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        for report in reports:
            print(report.to_text())
            print()
    if args.output:
        path = write_experiments_markdown(reports, args.output)
        print(f"wrote {path}")
    failures = [report.experiment_id for report in reports if not report.consistent]
    if failures:
        print(
            f"warning: {len(failures)} experiment(s) reported inconsistencies: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
