"""E7 — Erdős–Rényi connectivity threshold (substrate validation).

Both lower bounds of the paper (the Remark after Theorem 4 and Theorem 5)
rest on the classical fact that ``G(n, p)`` is disconnected whp when
``p`` is below ``log n / n`` and connected whp above it.  This experiment
validates that substrate: it sweeps ``p`` as a multiple of the critical value
and measures the connectivity probability and the giant-component fraction.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..analysis.thresholds import estimate_probability_threshold
from ..erdosrenyi.gnp import giant_component_fraction, is_gnp_connected, sample_gnp_edges
from ..erdosrenyi.thresholds import critical_probability
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.sweep import ParameterSweep
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_er_connectivity", "run", "SCALES"]

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 64, "multipliers": (0.25, 0.5, 1.0, 1.5, 2.0), "repetitions": 20},
    "default": {
        "n": 256,
        "multipliers": (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0),
        "repetitions": 40,
    },
    "full": {
        "n": 1024,
        "multipliers": (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0),
        "repetitions": 60,
    },
}


def trial_er_connectivity(
    params: Mapping[str, Any], rng: np.random.Generator
) -> dict[str, float]:
    """One trial: sample G(n, p) at p = multiplier·log n/n and test connectivity."""
    n = int(params["n"])
    multiplier = float(params["multiplier"])
    p = min(1.0, multiplier * critical_probability(n))
    edges_u, edges_v = sample_gnp_edges(n, p, seed=rng)
    return {
        "connected": 1.0 if is_gnp_connected(n, edges_u, edges_v) else 0.0,
        "giant_fraction": giant_component_fraction(n, edges_u, edges_v),
        "p": p,
    }


def run(
    scale: str = "default", *, seed: SeedLike = 2020, jobs: int | None = None
) -> ExperimentReport:
    """Run E7 and build its report.

    ``jobs=N`` executes the trials of each sweep point on ``N`` worker
    processes via the parallel engine; the report is bit-identical to a
    serial run for the same seed.
    """
    config = SCALES[scale]
    n = int(config["n"])
    sweep = ParameterSweep(
        {"multiplier": [float(m) for m in config["multipliers"]]}, constants={"n": n}
    )
    experiment = Experiment(
        name="E7-er-connectivity",
        trial=trial_er_connectivity,
        description="Connectivity of G(n, p) around the log n / n threshold",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed, jobs=jobs
    )
    sweep_result = runner.run_sweep(experiment, sweep)

    records: list[dict[str, Any]] = []
    multipliers: list[float] = []
    probabilities: list[float] = []
    for point in sweep_result:
        multiplier = float(point.parameters["multiplier"])
        connected = point.mean("connected")
        records.append(
            {
                "n": n,
                "p_over_critical": multiplier,
                "p": point.mean("p"),
                "P[connected]": connected,
                "giant_component_fraction": point.mean("giant_fraction"),
            }
        )
        multipliers.append(multiplier)
        probabilities.append(connected)

    below = [r["P[connected]"] for r in records if r["p_over_critical"] <= 0.5]
    above = [r["P[connected]"] for r in records if r["p_over_critical"] >= 2.0]
    crossing = estimate_probability_threshold(multipliers, probabilities, target=0.5)
    comparison = [
        ComparisonRow(
            quantity="G(n, p) is disconnected below the threshold",
            paper="p = o(log n / n) ⇒ disconnected whp (Bollobás, used in Thm 5 and the Remark)",
            measured=f"P[connected] at p ≤ 0.5·p*: {[round(x, 2) for x in below]}",
            matches=bool(below) and max(below) <= 0.2,
            note="the sub-threshold regime the lower bounds exploit",
        ),
        ComparisonRow(
            quantity="G(n, p) is connected above the threshold",
            paper="p ≥ (1+ε)·log n / n ⇒ connected whp",
            measured=f"P[connected] at p ≥ 2·p*: {[round(x, 2) for x in above]}",
            matches=bool(above) and min(above) >= 0.8,
            note="the supercritical regime",
        ),
        ComparisonRow(
            quantity="the transition sits near p* = log n / n",
            paper="sharp threshold at log n / n",
            measured=f"measured 50% crossing at ≈ {crossing:.2f}·p*" if crossing else "no crossing found",
            matches=crossing is not None and 0.5 <= crossing <= 2.0,
            note="finite-size effects shift the crossing slightly above 1·p*",
        ),
    ]
    return ExperimentReport(
        experiment_id="E7",
        title="Erdős–Rényi connectivity threshold (substrate)",
        claim=(
            "G(n, p) is disconnected whp for p below log n / n and connected whp above "
            "it — the classical result both of the paper's lower bounds reduce to."
        ),
        records=records,
        comparison=comparison,
        notes="Validation of the Erdős–Rényi substrate used by Theorem 5 and the Remark after Theorem 4.",
        scale=scale,
    )
