"""E7 — Erdős–Rényi connectivity threshold (substrate validation).

Both lower bounds of the paper (the Remark after Theorem 4 and Theorem 5)
rest on the classical fact that ``G(n, p)`` is disconnected whp when
``p`` is below ``log n / n`` and connected whp above it.  The workload is the
declarative scenario ``"E7"`` (no graph family, no label model — the
``er_connectivity`` metric samples raw ``G(n, p)`` edge arrays itself); this
module runs it through the generic pipeline, sweeping ``p`` as a multiple of
the critical value and measuring the connectivity probability and the
giant-component fraction.
"""

from __future__ import annotations

from typing import Any

from ..analysis.comparison import ComparisonRow
from ..analysis.thresholds import estimate_probability_threshold
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E7_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_er_connectivity", "run", "build_report", "SCALES"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_er_connectivity = ScenarioTrial(get_scenario("E7"))


def run(
    scale: str = "default", *, seed: SeedLike = 2020, jobs: int | None = None
) -> ExperimentReport:
    """Run E7 through the scenario pipeline and build its report.

    ``jobs=N`` executes the trials of each sweep point on ``N`` worker
    processes via the parallel engine; the report is bit-identical to a
    serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E7"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E7 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    n = int(config["n"])
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    multipliers: list[float] = []
    probabilities: list[float] = []
    for point in sweep_result:
        multiplier = float(point.parameters["multiplier"])
        connected = point.mean("connected")
        records.append(
            {
                "n": n,
                "p_over_critical": multiplier,
                "p": point.mean("p"),
                "P[connected]": connected,
                "giant_component_fraction": point.mean("giant_fraction"),
            }
        )
        multipliers.append(multiplier)
        probabilities.append(connected)

    below = [r["P[connected]"] for r in records if r["p_over_critical"] <= 0.5]
    above = [r["P[connected]"] for r in records if r["p_over_critical"] >= 2.0]
    crossing = estimate_probability_threshold(multipliers, probabilities, target=0.5)
    comparison = [
        ComparisonRow(
            quantity="G(n, p) is disconnected below the threshold",
            paper="p = o(log n / n) ⇒ disconnected whp (Bollobás, used in Thm 5 and the Remark)",
            measured=f"P[connected] at p ≤ 0.5·p*: {[round(x, 2) for x in below]}",
            matches=bool(below) and max(below) <= 0.2,
            note="the sub-threshold regime the lower bounds exploit",
        ),
        ComparisonRow(
            quantity="G(n, p) is connected above the threshold",
            paper="p ≥ (1+ε)·log n / n ⇒ connected whp",
            measured=f"P[connected] at p ≥ 2·p*: {[round(x, 2) for x in above]}",
            matches=bool(above) and min(above) >= 0.8,
            note="the supercritical regime",
        ),
        ComparisonRow(
            quantity="the transition sits near p* = log n / n",
            paper="sharp threshold at log n / n",
            measured=f"measured 50% crossing at ≈ {crossing:.2f}·p*" if crossing else "no crossing found",
            matches=crossing is not None and 0.5 <= crossing <= 2.0,
            note="finite-size effects shift the crossing slightly above 1·p*",
        ),
    ]
    return ExperimentReport(
        experiment_id="E7",
        title="Erdős–Rényi connectivity threshold (substrate)",
        claim=(
            "G(n, p) is disconnected whp for p below log n / n and connected whp above "
            "it — the classical result both of the paper's lower bounds reduce to."
        ),
        records=records,
        comparison=comparison,
        notes="Validation of the Erdős–Rényi substrate used by Theorem 5 and the Remark after Theorem 4.",
        scale=scale,
    )
