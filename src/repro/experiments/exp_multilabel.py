"""E9 (extension) — multi-label random cliques: buying extra availability.

Section 4 of the paper studies how many random labels per edge are needed for
reachability on *sparse* graphs; on the clique a single label already
suffices, so extra labels buy *speed* instead.  The workload is the
declarative scenario ``"E9"`` (clique × ``r`` uniform labels per edge ×
distance-summary and label-cost metrics); this module runs it through the
generic pipeline and measures how the temporal diameter of the normalized
random clique shrinks as ``r`` grows, quantifying the diminishing returns of
additional availability (the conclusions' "combining random availabilities"
direction).

Expected shape: the temporal diameter decreases monotonically in ``r`` and is
already within a small constant factor of its floor for ``r`` around
``log n`` — randomness is cheap on dense graphs.
"""

from __future__ import annotations

import math
from typing import Any

from ..analysis.comparison import ComparisonRow
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E9_SCALES as SCALES
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_multilabel", "run", "build_report", "SCALES"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_multilabel = ScenarioTrial(get_scenario("E9"))


def run(
    scale: str = "default", *, seed: SeedLike = 2022, jobs: int | None = None
) -> ExperimentReport:
    """Run E9 through the scenario pipeline and build its report.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E9"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E9 scenario run into the paper-vs-measured report."""
    scale = result.scale
    config = SCALES[scale]
    n = int(config["n"])
    sweep_result = result.sweep

    records: list[dict[str, Any]] = []
    for point in sweep_result:
        r = int(point.parameters["r"])
        td = point.mean("temporal_diameter")
        records.append(
            {
                "n": n,
                "labels_per_edge_r": r,
                "mean_temporal_diameter": td,
                "TD_over_log_n": td / math.log(n),
                "total_labels_cost": point.mean("total_labels"),
            }
        )

    diameters = [record["mean_temporal_diameter"] for record in records]
    monotone = all(b <= a + 0.5 for a, b in zip(diameters, diameters[1:]))
    comparison = [
        ComparisonRow(
            quantity="extra labels never slow dissemination down",
            paper="adding labels can only create journeys (monotonicity of the model)",
            measured=f"mean TD over r sweep: {[round(d, 1) for d in diameters]}",
            matches=monotone,
            note="monotone non-increasing within Monte-Carlo noise",
        ),
        ComparisonRow(
            quantity="single-label clique already achieves Θ(log n)",
            paper="Theorem 4: the r = 1 column reproduces the headline bound",
            measured=f"TD(r=1)/log n = {diameters[0] / math.log(n):.2f}",
            matches=1.0 <= diameters[0] / math.log(n) <= 10.0,
            note="cross-check against E1",
        ),
        ComparisonRow(
            quantity="diminishing returns of extra availability",
            paper="conclusions: combining random and optimal availabilities is future work",
            measured=(
                f"TD shrinks by a factor {diameters[0] / max(diameters[-1], 1e-9):.1f} "
                f"while the label cost grows {records[-1]['labels_per_edge_r']}×"
            ),
            matches=diameters[-1] <= diameters[0],
            note="extension measurement; no published number to match",
        ),
    ]
    return ExperimentReport(
        experiment_id="E9",
        title="Multi-label random cliques (extension)",
        claim=(
            "Extension: on the clique a single random label per edge already guarantees "
            "reachability, so additional labels buy speed — the temporal diameter "
            "decreases monotonically in r with diminishing returns."
        ),
        records=records,
        comparison=comparison,
        notes="Extension experiment motivated by §4 and the conclusions of the paper.",
        scale=scale,
    )
