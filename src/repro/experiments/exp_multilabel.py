"""E9 (extension) — multi-label random cliques: buying extra availability.

Section 4 of the paper studies how many random labels per edge are needed for
reachability on *sparse* graphs; on the clique a single label already
suffices, so extra labels buy *speed* instead.  This extension experiment
measures how the temporal diameter of the normalized random clique shrinks as
each edge receives ``r`` independent uniform labels, quantifying the
diminishing returns of additional availability (the conclusions' "combining
random availabilities" direction).

Expected shape: the temporal diameter decreases monotonically in ``r`` and is
already within a small constant factor of its floor for ``r`` around
``log n`` — randomness is cheap on dense graphs.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..core.distances import temporal_distance_summary
from ..core.labeling import uniform_random_labels
from ..graphs.generators import complete_graph
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.sweep import ParameterSweep
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_multilabel", "run", "SCALES"]

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"n": 48, "labels": (1, 2, 4), "repetitions": 5},
    "default": {"n": 128, "labels": (1, 2, 4, 8), "repetitions": 12},
    "full": {"n": 256, "labels": (1, 2, 4, 8, 16), "repetitions": 20},
}


def trial_multilabel(params: Mapping[str, Any], rng: np.random.Generator) -> dict[str, float]:
    """One trial: normalized clique with ``r`` uniform labels per arc."""
    n = int(params["n"])
    r = int(params["r"])
    clique = complete_graph(n, directed=True)
    network = uniform_random_labels(clique, labels_per_edge=r, lifetime=n, seed=rng)
    summary = temporal_distance_summary(network)
    return {
        "temporal_diameter": float(summary.diameter),
        "mean_temporal_distance": summary.average_distance,
        "total_labels": float(network.total_labels),
    }


def run(scale: str = "default", *, seed: SeedLike = 2022) -> ExperimentReport:
    """Run E9 and build its report."""
    config = SCALES[scale]
    n = int(config["n"])
    sweep = ParameterSweep({"r": list(config["labels"])}, constants={"n": n})
    experiment = Experiment(
        name="E9-multilabel",
        trial=trial_multilabel,
        description="Temporal diameter of the clique vs labels per edge",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed
    )
    sweep_result = runner.run_sweep(experiment, sweep)

    records: list[dict[str, Any]] = []
    for point in sweep_result:
        r = int(point.parameters["r"])
        td = point.mean("temporal_diameter")
        records.append(
            {
                "n": n,
                "labels_per_edge_r": r,
                "mean_temporal_diameter": td,
                "TD_over_log_n": td / math.log(n),
                "total_labels_cost": point.mean("total_labels"),
            }
        )

    diameters = [record["mean_temporal_diameter"] for record in records]
    monotone = all(b <= a + 0.5 for a, b in zip(diameters, diameters[1:]))
    comparison = [
        ComparisonRow(
            quantity="extra labels never slow dissemination down",
            paper="adding labels can only create journeys (monotonicity of the model)",
            measured=f"mean TD over r sweep: {[round(d, 1) for d in diameters]}",
            matches=monotone,
            note="monotone non-increasing within Monte-Carlo noise",
        ),
        ComparisonRow(
            quantity="single-label clique already achieves Θ(log n)",
            paper="Theorem 4: the r = 1 column reproduces the headline bound",
            measured=f"TD(r=1)/log n = {diameters[0] / math.log(n):.2f}",
            matches=1.0 <= diameters[0] / math.log(n) <= 10.0,
            note="cross-check against E1",
        ),
        ComparisonRow(
            quantity="diminishing returns of extra availability",
            paper="conclusions: combining random and optimal availabilities is future work",
            measured=(
                f"TD shrinks by a factor {diameters[0] / max(diameters[-1], 1e-9):.1f} "
                f"while the label cost grows {records[-1]['labels_per_edge_r']}×"
            ),
            matches=diameters[-1] <= diameters[0],
            note="extension measurement; no published number to match",
        ),
    ]
    return ExperimentReport(
        experiment_id="E9",
        title="Multi-label random cliques (extension)",
        claim=(
            "Extension: on the clique a single random label per edge already guarantees "
            "reachability, so additional labels buy speed — the temporal diameter "
            "decreases monotonically in r with diminishing returns."
        ),
        records=records,
        comparison=comparison,
        notes="Extension experiment motivated by §4 and the conclusions of the paper.",
        scale=scale,
    )
