"""Experiment reports and EXPERIMENTS.md generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..analysis.comparison import ComparisonRow, build_comparison_table
from ..io.tables import format_markdown_table, format_table

__all__ = ["ExperimentReport", "write_experiments_markdown"]


@dataclass
class ExperimentReport:
    """Everything an experiment produces for the written record.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md identifier (``"E1"`` … ``"E7"``).
    title:
        One-line description.
    claim:
        The paper statement being reproduced, in prose.
    records:
        The measurement table (one mapping per row).
    comparison:
        Paper-vs-measured verdict rows.
    notes:
        Free-text commentary (parameterisation, caveats, substitutions).
    scale:
        The preset that produced the numbers (``"quick"``, ``"default"``, …).
    """

    experiment_id: str
    title: str
    claim: str
    records: list[Mapping[str, Any]] = field(default_factory=list)
    comparison: list[ComparisonRow] = field(default_factory=list)
    notes: str = ""
    scale: str = "default"

    @property
    def consistent(self) -> bool:
        """Whether every comparison row is consistent with the paper."""
        return all(row.matches for row in self.comparison)

    def to_markdown(self) -> str:
        """Render the full report section as markdown."""
        lines = [
            f"## {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.claim}",
            "",
            f"*Scale preset:* `{self.scale}`",
            "",
        ]
        if self.records:
            lines.append("### Measurements")
            lines.append("")
            lines.append(format_markdown_table(self.records))
            lines.append("")
        if self.comparison:
            lines.append("### Paper vs. measured")
            lines.append("")
            lines.append(build_comparison_table(self.comparison))
            lines.append("")
        if self.notes:
            lines.append(f"**Notes.** {self.notes}")
            lines.append("")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Render a console-friendly plain-text version of the report."""
        lines = [f"{self.experiment_id} — {self.title}", "=" * 72]
        if self.records:
            lines.append(format_table(self.records))
        for row in self.comparison:
            verdict = "OK " if row.matches else "FAIL"
            lines.append(f"[{verdict}] {row.quantity}: paper={row.paper} measured={row.measured}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


def write_experiments_markdown(
    reports: Sequence[ExperimentReport],
    path: str | Path,
    *,
    header: str | None = None,
) -> Path:
    """Assemble EXPERIMENTS.md from a collection of experiment reports."""
    path = Path(path)
    parts: list[str] = []
    if header is None:
        header = (
            "# EXPERIMENTS — paper vs. measured\n\n"
            "Reproduction record for *Ephemeral Networks with Random Availability "
            "of Links: Diameter and Connectivity* (Akrida, Gąsieniec, Mertzios, "
            "Spirakis — SPAA 2014).  Every experiment identifier matches the "
            "per-experiment index in DESIGN.md §4.  Absolute constants are not "
            "expected to match a testbed (the substrate is a simulator); the "
            "reported check is the *shape* of each claim — growth rates, "
            "thresholds and who-wins orderings.\n"
        )
    parts.append(header)
    for report in reports:
        parts.append(report.to_markdown())
    content = "\n".join(parts)
    path.write_text(content, encoding="utf-8")
    return path
