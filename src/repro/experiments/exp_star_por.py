"""E5 / F2 — Labels needed on the star and its Price of Randomness (Theorem 6).

Theorem 6 shows, for the star ``K_{1,n−1}`` (diameter 2):

* (a) ``ρ·log n`` random labels per edge with ``ρ > 8`` strongly guarantee
  temporal reachability whp — established through *2-split journeys* (first
  hop before ``n/2``, second after; Figure 2);
* (b) ``o(log n)`` labels per edge fail whp;
* hence ``r(n) = Θ(log n)`` and, since ``OPT = 2m``, ``PoR(star) = Θ(log n)``.

The experiment sweeps the number of labels per edge ``r`` for each ``n``,
measures the reachability probability, locates the empirical threshold
``r̂(n)`` at the 90% level, and reports ``r̂ / log n`` (should be roughly
constant) together with the resulting PoR.  The 2-split journey probability
(the measured Figure 2 quantity) is reported alongside its exact analytic
value.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..analysis.comparison import ComparisonRow
from ..analysis.thresholds import estimate_probability_threshold
from ..core.guarantees import (
    two_split_journey_probability,
    two_split_journey_probability_analytic,
)
from ..core.labeling import uniform_random_labels
from ..core.price_of_randomness import opt_labels_star, price_of_randomness
from ..core.reachability import preserves_reachability
from ..graphs.generators import star_graph
from ..montecarlo.experiment import Experiment
from ..montecarlo.runner import MonteCarloRunner
from ..montecarlo.convergence import FixedBudgetStopping
from ..montecarlo.sweep import ParameterSweep
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_star_reachability", "run", "SCALES"]

SCALES: dict[str, dict[str, Any]] = {
    "quick": {"sizes": (32, 64), "repetitions": 20, "max_r_factor": 3.0},
    "default": {"sizes": (64, 128, 256), "repetitions": 40, "max_r_factor": 3.0},
    "full": {"sizes": (64, 128, 256, 512, 1024), "repetitions": 60, "max_r_factor": 3.0},
}

#: Target probability defining the empirical threshold r̂(n).
TARGET_PROBABILITY = 0.9


def trial_star_reachability(
    params: Mapping[str, Any], rng: np.random.Generator
) -> dict[str, float]:
    """One trial: does ``r`` labels per edge make the star temporally reachable?"""
    n = int(params["n"])
    r = int(params["r"])
    star = star_graph(n)
    network = uniform_random_labels(star, labels_per_edge=r, lifetime=n, seed=rng)
    return {"reachable": 1.0 if preserves_reachability(network) else 0.0}


def _r_grid(n: int, max_r_factor: float) -> list[int]:
    """Label counts to probe: 1 … ≈ max_r_factor·log n (unique, increasing)."""
    upper = max(4, int(math.ceil(max_r_factor * math.log(n))))
    grid = sorted(set(list(range(1, min(upper, 8) + 1)) + list(
        np.unique(np.linspace(1, upper, num=min(upper, 12), dtype=int)).tolist()
    )))
    return [int(r) for r in grid]


def run(scale: str = "default", *, seed: SeedLike = 2018) -> ExperimentReport:
    """Run E5 (and the F2 two-split probability check) and build the report."""
    config = SCALES[scale]
    experiment = Experiment(
        name="E5-star-por",
        trial=trial_star_reachability,
        description="Reachability probability of the star vs labels per edge (Theorem 6)",
    )
    runner = MonteCarloRunner(
        stopping=FixedBudgetStopping(config["repetitions"]), seed=seed
    )

    records: list[dict[str, Any]] = []
    threshold_ratios: list[float] = []
    por_values: list[float] = []
    for n in config["sizes"]:
        n = int(n)
        grid = _r_grid(n, config["max_r_factor"])
        sweep = ParameterSweep({"r": grid}, constants={"n": n})
        sweep_result = runner.run_sweep(experiment, sweep)
        probabilities = [point.mean("reachable") for point in sweep_result]
        threshold = estimate_probability_threshold(
            [float(r) for r in grid], probabilities, target=TARGET_PROBABILITY
        )
        log_n = math.log(n)
        star = star_graph(n)
        record: dict[str, Any] = {
            "n": n,
            "log_n": log_n,
            "prob_r=1": probabilities[0],
            "prob_r=max": probabilities[-1],
            "empirical_r_hat": threshold if threshold is not None else float("nan"),
        }
        if threshold is not None:
            ratio = threshold / log_n
            por = price_of_randomness(
                star, max(1, int(math.ceil(threshold))), opt=opt_labels_star(n)
            )
            record["r_hat_over_log_n"] = ratio
            record["PoR"] = por
            record["PoR_over_log_n"] = por / log_n
            threshold_ratios.append(ratio)
            por_values.append(por)
        # F2: the 2-split journey probability at r ≈ log n, measured vs analytic.
        r_probe = max(1, int(round(log_n)))
        record["two_split_prob_measured(r=logn)"] = two_split_journey_probability(
            n, r_probe, trials=2000, seed=seed
        )
        record["two_split_prob_analytic(r=logn)"] = two_split_journey_probability_analytic(
            n, r_probe
        )
        records.append(record)

    single_label_probs = [record["prob_r=1"] for record in records]
    comparison = [
        ComparisonRow(
            quantity="one label per edge is not enough on the star",
            paper="any assignment of 1 label per edge fails to preserve reachability",
            measured=f"P[T_reach | r=1] = {[round(p, 3) for p in single_label_probs]}",
            matches=max(single_label_probs) < 0.05,
            note="both hops through the centre would need increasing labels",
        ),
        ComparisonRow(
            quantity="r(n) grows like log n",
            paper="r(n) = Θ(log n): ρ·log n (ρ>8) suffices, o(log n) fails (Theorem 6)",
            measured=(
                "empirical r̂/log n = "
                f"{[round(x, 2) for x in threshold_ratios]} across the n sweep"
            ),
            matches=bool(threshold_ratios)
            and max(threshold_ratios) / max(min(threshold_ratios), 1e-9) < 4.0,
            note="the ratio stays within a constant-factor band",
        ),
        ComparisonRow(
            quantity="PoR(star) = Θ(log n)",
            paper="PoR = m·r(n)/OPT with OPT = 2m, hence Θ(log n)",
            measured=(
                "PoR/log n = "
                f"{[round(r['PoR_over_log_n'], 2) for r in records if 'PoR_over_log_n' in r]}"
            ),
            matches=bool(por_values),
            note="the measured PoR equals r̂/2 by construction of OPT = 2m",
        ),
        ComparisonRow(
            quantity="2-split journey probability (Figure 2)",
            paper="P ≥ (1 − 2^{−r})² for r labels per edge",
            measured=(
                "measured vs analytic at r≈log n: "
                + ", ".join(
                    f"n={r['n']}: {r['two_split_prob_measured(r=logn)']:.3f}/"
                    f"{r['two_split_prob_analytic(r=logn)']:.3f}"
                    for r in records
                )
            ),
            matches=all(
                abs(
                    r["two_split_prob_measured(r=logn)"]
                    - r["two_split_prob_analytic(r=logn)"]
                )
                < 0.05
                for r in records
            ),
            note="Monte-Carlo agrees with the exact expression",
        ),
    ]
    return ExperimentReport(
        experiment_id="E5",
        title="Star graph: labels per edge and the Price of Randomness",
        claim=(
            "On the star K_{1,n−1}, Θ(log n) random labels per edge are necessary and "
            "sufficient to strongly guarantee temporal reachability whp, and since the "
            "optimal deterministic assignment uses OPT = 2m labels, the Price of "
            "Randomness is Θ(log n) (Theorem 6, Figure 2)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            f"The empirical threshold r̂(n) is the smallest r whose measured P[T_reach] "
            f"reaches {TARGET_PROBABILITY}; the paper's whp requirement (1 − n^-a) is "
            "stricter, so r̂ is a lower estimate of the paper's r(n) — the point of the "
            "comparison is the logarithmic growth, which survives the change of target."
        ),
        scale=scale,
    )
