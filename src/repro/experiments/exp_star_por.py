"""E5 / F2 — Labels needed on the star and its Price of Randomness (Theorem 6).

Theorem 6 shows, for the star ``K_{1,n−1}`` (diameter 2):

* (a) ``ρ·log n`` random labels per edge with ``ρ > 8`` strongly guarantee
  temporal reachability whp — established through *2-split journeys* (first
  hop before ``n/2``, second after; Figure 2);
* (b) ``o(log n)`` labels per edge fail whp;
* hence ``r(n) = Θ(log n)`` and, since ``OPT = 2m``, ``PoR(star) = Θ(log n)``.

The workload is the declarative scenario ``"E5"`` (star × ``r`` uniform labels
per edge × strong-reachability metric, one sweep block per ``n`` because the
probed label grid depends on ``n``); this module runs it through the generic
pipeline, locates the empirical threshold ``r̂(n)`` at the 90% level, and
reports ``r̂ / log n`` (should be roughly constant) together with the
resulting PoR.  The 2-split journey probability (the measured Figure 2
quantity) is reported alongside its exact analytic value.
"""

from __future__ import annotations

import math
from typing import Any

from ..analysis.comparison import ComparisonRow
from ..analysis.thresholds import estimate_probability_threshold
from ..core.guarantees import (
    two_split_journey_probability,
    two_split_journey_probability_analytic,
)
from ..core.price_of_randomness import opt_labels_star, price_of_randomness
from ..graphs.generators import star_graph
from ..scenarios import ScenarioRun, ScenarioTrial, get_scenario, run_scenario
from ..scenarios.library import E5_SCALES as SCALES, star_label_grid
from ..utils.seeding import SeedLike
from .reporting import ExperimentReport

__all__ = ["trial_star_reachability", "run", "build_report", "SCALES", "TARGET_PROBABILITY"]

#: The scenario's trial function (picklable; usable with Experiment directly).
trial_star_reachability = ScenarioTrial(get_scenario("E5"))

#: Target probability defining the empirical threshold r̂(n).
TARGET_PROBABILITY = 0.9


def _r_grid(n: int, max_r_factor: float) -> list[int]:
    """Label counts to probe: 1 … ≈ max_r_factor·log n (unique, increasing)."""
    return star_label_grid(n, max_r_factor)


def run(
    scale: str = "default", *, seed: SeedLike = 2018, jobs: int | None = None
) -> ExperimentReport:
    """Run E5 (and the F2 two-split probability check) through the pipeline.

    ``jobs=N`` fans the trials of each sweep point out over ``N`` worker
    processes; the report is bit-identical to a serial run for the same seed.
    """
    return build_report(
        run_scenario(get_scenario("E5"), scale=scale, seed=seed, jobs=jobs)
    )


def build_report(result: ScenarioRun) -> ExperimentReport:
    """Turn an E5 scenario run into the paper-vs-measured report."""
    scale = result.scale
    seed = result.seed

    records: list[dict[str, Any]] = []
    threshold_ratios: list[float] = []
    por_values: list[float] = []
    for sweep_result in result.sweeps:
        grid = [int(point.parameters["r"]) for point in sweep_result]
        n = int(sweep_result.points[0].parameters["n"])
        probabilities = [point.mean("reachable") for point in sweep_result]
        threshold = estimate_probability_threshold(
            [float(r) for r in grid], probabilities, target=TARGET_PROBABILITY
        )
        log_n = math.log(n)
        star = star_graph(n)
        record: dict[str, Any] = {
            "n": n,
            "log_n": log_n,
            "prob_r=1": probabilities[0],
            "prob_r=max": probabilities[-1],
            "empirical_r_hat": threshold if threshold is not None else float("nan"),
        }
        if threshold is not None:
            ratio = threshold / log_n
            por = price_of_randomness(
                star, max(1, int(math.ceil(threshold))), opt=opt_labels_star(n)
            )
            record["r_hat_over_log_n"] = ratio
            record["PoR"] = por
            record["PoR_over_log_n"] = por / log_n
            threshold_ratios.append(ratio)
            por_values.append(por)
        # F2: the 2-split journey probability at r ≈ log n, measured vs analytic.
        r_probe = max(1, int(round(log_n)))
        record["two_split_prob_measured(r=logn)"] = two_split_journey_probability(
            n, r_probe, trials=2000, seed=seed
        )
        record["two_split_prob_analytic(r=logn)"] = two_split_journey_probability_analytic(
            n, r_probe
        )
        records.append(record)

    single_label_probs = [record["prob_r=1"] for record in records]
    comparison = [
        ComparisonRow(
            quantity="one label per edge is not enough on the star",
            paper="any assignment of 1 label per edge fails to preserve reachability",
            measured=f"P[T_reach | r=1] = {[round(p, 3) for p in single_label_probs]}",
            matches=max(single_label_probs) < 0.05,
            note="both hops through the centre would need increasing labels",
        ),
        ComparisonRow(
            quantity="r(n) grows like log n",
            paper="r(n) = Θ(log n): ρ·log n (ρ>8) suffices, o(log n) fails (Theorem 6)",
            measured=(
                "empirical r̂/log n = "
                f"{[round(x, 2) for x in threshold_ratios]} across the n sweep"
            ),
            matches=bool(threshold_ratios)
            and max(threshold_ratios) / max(min(threshold_ratios), 1e-9) < 4.0,
            note="the ratio stays within a constant-factor band",
        ),
        ComparisonRow(
            quantity="PoR(star) = Θ(log n)",
            paper="PoR = m·r(n)/OPT with OPT = 2m, hence Θ(log n)",
            measured=(
                "PoR/log n = "
                f"{[round(r['PoR_over_log_n'], 2) for r in records if 'PoR_over_log_n' in r]}"
            ),
            matches=bool(por_values),
            note="the measured PoR equals r̂/2 by construction of OPT = 2m",
        ),
        ComparisonRow(
            quantity="2-split journey probability (Figure 2)",
            paper="P ≥ (1 − 2^{−r})² for r labels per edge",
            measured=(
                "measured vs analytic at r≈log n: "
                + ", ".join(
                    f"n={r['n']}: {r['two_split_prob_measured(r=logn)']:.3f}/"
                    f"{r['two_split_prob_analytic(r=logn)']:.3f}"
                    for r in records
                )
            ),
            matches=all(
                abs(
                    r["two_split_prob_measured(r=logn)"]
                    - r["two_split_prob_analytic(r=logn)"]
                )
                < 0.05
                for r in records
            ),
            note="Monte-Carlo agrees with the exact expression",
        ),
    ]
    return ExperimentReport(
        experiment_id="E5",
        title="Star graph: labels per edge and the Price of Randomness",
        claim=(
            "On the star K_{1,n−1}, Θ(log n) random labels per edge are necessary and "
            "sufficient to strongly guarantee temporal reachability whp, and since the "
            "optimal deterministic assignment uses OPT = 2m labels, the Price of "
            "Randomness is Θ(log n) (Theorem 6, Figure 2)."
        ),
        records=records,
        comparison=comparison,
        notes=(
            f"The empirical threshold r̂(n) is the smallest r whose measured P[T_reach] "
            f"reaches {TARGET_PROBABILITY}; the paper's whp requirement (1 − n^-a) is "
            "stricter, so r̂ is a lower estimate of the paper's r(n) — the point of the "
            "comparison is the logarithmic growth, which survives the change of target."
        ),
        scale=scale,
    )
