"""Static graph substrate.

The paper's temporal networks are built on top of an *underlying (di)graph*
``G = (V, E)``.  This subpackage provides a compact array-based representation
(:class:`StaticGraph`), the graph families used throughout the paper
(clique, star, path, cycle, grid, hypercube, Erdős–Rényi, …) and classic
static-graph properties (BFS distances, diameter, connectivity) needed by the
Price-of-Randomness machinery.
"""

from .static_graph import StaticGraph
from .generators import (
    barbell_graph,
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
    supercritical_erdos_renyi,
    wheel_graph,
)
from .properties import (
    all_pairs_shortest_paths,
    bfs_distances,
    connected_components,
    degree_sequence,
    diameter,
    eccentricities,
    is_connected,
)
from .conversion import from_networkx, to_networkx

__all__ = [
    "StaticGraph",
    "complete_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "binary_tree",
    "random_tree",
    "erdos_renyi_graph",
    "supercritical_erdos_renyi",
    "wheel_graph",
    "barbell_graph",
    "lollipop_graph",
    "bfs_distances",
    "all_pairs_shortest_paths",
    "eccentricities",
    "diameter",
    "is_connected",
    "connected_components",
    "degree_sequence",
    "from_networkx",
    "to_networkx",
]
