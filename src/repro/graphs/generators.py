"""Generators for the graph families used in the paper and its experiments.

The paper's experiments need: the complete graph (the "hostile clique" of
Section 3), the star ``K_{1,n−1}`` (Theorem 6), graphs of larger diameter for
Theorems 7–8 (paths, cycles, grids, hypercubes, trees), complete bipartite
graphs, and Erdős–Rényi graphs (both as general test graphs and as the
substrate of the Theorem 5 lower bound).  A few extra families (wheel,
barbell, lollipop) are provided because they exercise interesting
diameter/edge-count trade-offs for the Price-of-Randomness bound.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_non_negative_int, check_positive_int, check_probability
from .static_graph import StaticGraph

__all__ = [
    "complete_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "binary_tree",
    "random_tree",
    "erdos_renyi_graph",
    "supercritical_erdos_renyi",
    "wheel_graph",
    "barbell_graph",
    "lollipop_graph",
]


def complete_graph(n: int, *, directed: bool = False) -> StaticGraph:
    """Return the complete graph ``K_n`` (the paper's hostile clique).

    For ``directed=True`` every ordered pair ``(u, v)``, ``u ≠ v`` is an arc,
    matching the directed clique of Section 3.
    """
    n = check_positive_int(n, "n")
    if directed:
        edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    else:
        edges = list(combinations(range(n), 2))
    return StaticGraph(n, edges, directed=directed, name=f"K_{n}")


def star_graph(n: int) -> StaticGraph:
    """Return the star ``K_{1,n−1}``: vertex 0 is the centre, ``1 … n−1`` leaves.

    This is the diameter-2 graph of Theorem 6 for which the Price of
    Randomness is ``Θ(log n)``.
    """
    n = check_positive_int(n, "n")
    if n < 2:
        return StaticGraph(n, [], name=f"star_{n}")
    edges = [(0, leaf) for leaf in range(1, n)]
    return StaticGraph(n, edges, name=f"star_{n}")


def path_graph(n: int) -> StaticGraph:
    """Return the path ``P_n`` with vertices ``0 − 1 − … − (n−1)``."""
    n = check_positive_int(n, "n")
    edges = [(i, i + 1) for i in range(n - 1)]
    return StaticGraph(n, edges, name=f"path_{n}")


def cycle_graph(n: int) -> StaticGraph:
    """Return the cycle ``C_n`` (requires ``n >= 3``)."""
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return StaticGraph(n, edges, name=f"cycle_{n}")


def grid_graph(rows: int, cols: int) -> StaticGraph:
    """Return the ``rows × cols`` two-dimensional grid graph.

    Vertex ``(r, c)`` is indexed as ``r * cols + c``.
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return StaticGraph(rows * cols, edges, name=f"grid_{rows}x{cols}")


def hypercube_graph(dimension: int) -> StaticGraph:
    """Return the ``dimension``-dimensional hypercube ``Q_d`` (``2^d`` vertices)."""
    dimension = check_non_negative_int(dimension, "dimension")
    n = 1 << dimension
    edges = [
        (v, v ^ (1 << bit))
        for v in range(n)
        for bit in range(dimension)
        if v < (v ^ (1 << bit))
    ]
    return StaticGraph(n, edges, name=f"hypercube_{dimension}")


def complete_bipartite_graph(a: int, b: int) -> StaticGraph:
    """Return ``K_{a,b}``: part A is ``0 … a−1``, part B is ``a … a+b−1``."""
    a = check_positive_int(a, "a")
    b = check_positive_int(b, "b")
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return StaticGraph(a + b, edges, name=f"K_{a},{b}")


def binary_tree(depth: int) -> StaticGraph:
    """Return the complete binary tree of the given depth (root has depth 0)."""
    depth = check_non_negative_int(depth, "depth")
    n = (1 << (depth + 1)) - 1
    edges = []
    for v in range(1, n):
        parent = (v - 1) // 2
        edges.append((parent, v))
    return StaticGraph(n, edges, name=f"binary_tree_{depth}")


def random_tree(n: int, *, seed: SeedLike = None) -> StaticGraph:
    """Return a uniformly random labelled tree on ``n`` vertices.

    Sampled through a random Prüfer sequence, which is uniform over labelled
    trees; used as an extreme sparse test case (``m = n−1``) for the
    Price-of-Randomness experiments.
    """
    n = check_positive_int(n, "n")
    if n == 1:
        return StaticGraph(1, [], name="tree_1")
    if n == 2:
        return StaticGraph(2, [(0, 1)], name="tree_2")
    rng = normalize_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for v in prufer:
        degree[v] += 1
    edges: list[tuple[int, int]] = []
    # Standard Prüfer decoding with a pointer/leaf scan.
    ptr = 0
    leaf = -1
    for v in prufer:
        if leaf < 0:
            while degree[ptr] != 1:
                ptr += 1
            leaf = ptr
        edges.append((int(leaf), int(v)))
        degree[leaf] -= 1
        degree[v] -= 1
        if degree[v] == 1 and v < ptr:
            leaf = int(v)
        else:
            leaf = -1
            ptr += 1
    remaining = np.flatnonzero(degree == 1)
    edges.append((int(remaining[0]), int(remaining[1])))
    return StaticGraph(n, edges, name=f"tree_{n}")


def erdos_renyi_graph(
    n: int,
    p: float,
    *,
    directed: bool = False,
    seed: SeedLike = None,
) -> StaticGraph:
    """Sample an Erdős–Rényi graph ``G(n, p)``.

    Each of the ``n·(n−1)/2`` unordered pairs (or ``n·(n−1)`` ordered pairs
    when ``directed=True``) is included independently with probability ``p``.
    The sampling is vectorised over the full pair array, which is fine for the
    laptop-scale ``n`` used by the experiments.
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    rng = normalize_rng(seed)
    if n == 1:
        return StaticGraph(1, [], directed=directed, name=f"gnp_{n}_{p:g}")
    if directed:
        tails, heads = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        mask = tails != heads
        pairs = np.stack([tails[mask], heads[mask]], axis=1)
    else:
        idx_u, idx_v = np.triu_indices(n, k=1)
        pairs = np.stack([idx_u, idx_v], axis=1)
    keep = rng.random(pairs.shape[0]) < p
    edges = [tuple(e) for e in pairs[keep].tolist()]
    return StaticGraph(n, edges, directed=directed, name=f"gnp_{n}_{p:g}")


def supercritical_erdos_renyi(
    n: int, *, factor: float = 3.0, seed: SeedLike = None
) -> StaticGraph:
    """Sample ``G(n, p)`` at ``p = factor·log n / n`` (capped at 1).

    A convenience generator for the connected regime: ``factor > 1`` sits
    above the classical ``log n / n`` connectivity threshold, so the sample
    is connected whp — the substrate both E6 and the declarative
    scenario layer use when they need "a connected sparse random graph of
    roughly this size".
    """
    n = check_positive_int(n, "n")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    p = min(1.0, factor * math.log(max(n, 2)) / n)
    return erdos_renyi_graph(n, p, seed=seed)


def wheel_graph(n: int) -> StaticGraph:
    """Return the wheel ``W_n``: a cycle on ``n−1`` vertices plus a hub (vertex 0)."""
    n = check_positive_int(n, "n")
    if n < 4:
        raise ValueError(f"a wheel needs at least 4 vertices, got {n}")
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return StaticGraph(n, edges, name=f"wheel_{n}")


def barbell_graph(clique_size: int, bridge_length: int = 0) -> StaticGraph:
    """Return two cliques of ``clique_size`` vertices joined by a path.

    ``bridge_length`` is the number of intermediate path vertices between the
    two cliques (0 means the cliques are joined by a single edge).  Useful as
    a high-edge-count, moderate-diameter stress case for Theorem 8.
    """
    clique_size = check_positive_int(clique_size, "clique_size")
    bridge_length = check_non_negative_int(bridge_length, "bridge_length")
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    n = 2 * clique_size + bridge_length
    edges = list(combinations(range(clique_size), 2))
    offset = clique_size + bridge_length
    edges += [(offset + u, offset + v) for u, v in combinations(range(clique_size), 2)]
    chain = [clique_size - 1] + list(range(clique_size, clique_size + bridge_length)) + [offset]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return StaticGraph(n, edges, name=f"barbell_{clique_size}_{bridge_length}")


def lollipop_graph(clique_size: int, path_length: int) -> StaticGraph:
    """Return a clique with a path of ``path_length`` extra vertices attached."""
    clique_size = check_positive_int(clique_size, "clique_size")
    path_length = check_non_negative_int(path_length, "path_length")
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    n = clique_size + path_length
    edges = list(combinations(range(clique_size), 2))
    chain = [clique_size - 1] + list(range(clique_size, n))
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return StaticGraph(n, edges, name=f"lollipop_{clique_size}_{path_length}")
