"""Array-based static (di)graph representation.

:class:`StaticGraph` stores the edge list as two parallel ``int64`` arrays
(``tails``/``heads``) plus a CSR-style index for fast out-neighbour lookups.
This keeps the hot Monte-Carlo kernels (label assignment, journey sweeps)
fully vectorised: they operate directly on the edge arrays without Python
per-edge loops, following the "vectorise the inner loop" idiom of the
scientific-Python performance guides.

Undirected graphs are stored as symmetric digraphs (both arc directions are
present) because the paper's journey semantics always traverse an undirected
edge in either direction; the ``directed`` flag records the user's intent and
``edge_pairs`` exposes the canonical undirected edge list when needed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import GraphError, InvalidEdgeError, InvalidVertexError
from ..utils.validation import check_non_negative_int

__all__ = ["StaticGraph"]


class StaticGraph:
    """A fixed vertex-set graph with an array edge list.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are the integers ``0 … n−1``.
    edges:
        Iterable of ``(u, v)`` pairs.  For undirected graphs each pair is an
        unordered edge (self-loops are rejected, duplicates are collapsed);
        for directed graphs each pair is an arc.
    directed:
        Whether the graph is directed.
    name:
        Optional human-readable name used in ``repr`` and reports.
    """

    __slots__ = (
        "_n",
        "_directed",
        "_name",
        "_tails",
        "_heads",
        "_pair_tails",
        "_pair_heads",
        "_out_start",
        "_out_neighbors",
        "_out_arc_index",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        *,
        directed: bool = False,
        name: str = "",
    ) -> None:
        self._n = check_non_negative_int(n, "n")
        self._directed = bool(directed)
        self._name = str(name)

        pairs = self._normalise_edges(edges)
        self._pair_tails = pairs[:, 0].copy() if pairs.size else np.empty(0, np.int64)
        self._pair_heads = pairs[:, 1].copy() if pairs.size else np.empty(0, np.int64)

        if self._directed:
            arcs = pairs
        else:
            # Store both orientations so journey kernels need no special case.
            arcs = np.concatenate([pairs, pairs[:, ::-1]], axis=0) if pairs.size else pairs
        self._tails = arcs[:, 0].copy() if arcs.size else np.empty(0, np.int64)
        self._heads = arcs[:, 1].copy() if arcs.size else np.empty(0, np.int64)
        self._build_adjacency()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _normalise_edges(self, edges: Iterable[tuple[int, int]]) -> np.ndarray:
        edge_list = list(edges)
        if not edge_list:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(
                f"edges must be (u, v) pairs, got an array of shape {arr.shape!r}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self._n):
            bad = arr[(arr < 0).any(axis=1) | (arr >= self._n).any(axis=1)][0]
            raise InvalidVertexError(int(bad.max()), self._n)
        if np.any(arr[:, 0] == arr[:, 1]):
            loop = arr[arr[:, 0] == arr[:, 1]][0]
            raise GraphError(f"self-loops are not allowed, got {tuple(loop)!r}")
        if not self._directed:
            arr = np.sort(arr, axis=1)
        # Deduplicate while keeping a deterministic (sorted) order.
        arr = np.unique(arr, axis=0)
        return arr

    def _build_adjacency(self) -> None:
        order = np.argsort(self._tails, kind="stable")
        sorted_tails = self._tails[order]
        self._out_neighbors = self._heads[order]
        self._out_arc_index = order
        counts = np.bincount(sorted_tails, minlength=self._n)
        self._out_start = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._out_start[1:])

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def directed(self) -> bool:
        """Whether the graph was constructed as a digraph."""
        return self._directed

    @property
    def name(self) -> str:
        """Human-readable graph name (may be empty)."""
        return self._name

    @property
    def m(self) -> int:
        """Number of edges (undirected) or arcs (directed)."""
        return int(self._pair_tails.size)

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (``2·m`` for undirected graphs)."""
        return int(self._tails.size)

    @property
    def arc_tails(self) -> np.ndarray:
        """Tail vertex of every stored arc (read-only view)."""
        view = self._tails.view()
        view.flags.writeable = False
        return view

    @property
    def arc_heads(self) -> np.ndarray:
        """Head vertex of every stored arc (read-only view)."""
        view = self._heads.view()
        view.flags.writeable = False
        return view

    @property
    def edge_pairs(self) -> np.ndarray:
        """Canonical ``(m, 2)`` edge array (one row per undirected edge / arc)."""
        return np.stack([self._pair_tails, self._pair_heads], axis=1)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def vertices(self) -> range:
        """Return the vertex index range ``0 … n−1``."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over canonical edges as Python ``(u, v)`` tuples."""
        for u, v in zip(self._pair_tails.tolist(), self._pair_heads.tolist()):
            yield (u, v)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all stored arcs (both directions for undirected graphs)."""
        for u, v in zip(self._tails.tolist(), self._heads.tolist()):
            yield (u, v)

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a valid vertex index."""
        return 0 <= v < self._n

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``(u, v)`` (directed) or edge ``{u, v}`` exists."""
        if not (self.has_vertex(u) and self.has_vertex(v)):
            return False
        return bool(np.any(self.out_neighbors(u) == v))

    def out_neighbors(self, u: int) -> np.ndarray:
        """Out-neighbours of ``u`` as a read-only array."""
        if not self.has_vertex(u):
            raise InvalidVertexError(u, self._n)
        lo, hi = self._out_start[u], self._out_start[u + 1]
        view = self._out_neighbors[lo:hi].view()
        view.flags.writeable = False
        return view

    def out_arcs(self, u: int) -> np.ndarray:
        """Indices (into the arc arrays) of arcs leaving ``u``."""
        if not self.has_vertex(u):
            raise InvalidVertexError(u, self._n)
        lo, hi = self._out_start[u], self._out_start[u + 1]
        view = self._out_arc_index[lo:hi].view()
        view.flags.writeable = False
        return view

    def degree(self, u: int) -> int:
        """Out-degree of ``u`` (equals the undirected degree for undirected graphs)."""
        if not self.has_vertex(u):
            raise InvalidVertexError(u, self._n)
        return int(self._out_start[u + 1] - self._out_start[u])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self._out_start)

    def edge_index(self, u: int, v: int) -> int:
        """Return the canonical edge index of ``{u, v}`` (or arc ``(u, v)``).

        Raises
        ------
        InvalidEdgeError
            If the edge does not exist.
        """
        if not self._directed and u > v:
            u, v = v, u
        mask = (self._pair_tails == u) & (self._pair_heads == v)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            raise InvalidEdgeError((u, v))
        return int(idx[0])

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def to_directed(self) -> "StaticGraph":
        """Return the directed version (each undirected edge becomes two arcs)."""
        if self._directed:
            return self
        arcs = list(zip(self._tails.tolist(), self._heads.tolist()))
        return StaticGraph(self._n, arcs, directed=True, name=self._name)

    def reverse(self) -> "StaticGraph":
        """Return the graph with every arc reversed (no-op for undirected)."""
        if not self._directed:
            return self
        arcs = list(zip(self._heads.tolist(), self._tails.tolist()))
        return StaticGraph(self._n, arcs, directed=True, name=self._name)

    def subgraph(self, vertices: Sequence[int]) -> "StaticGraph":
        """Return the induced subgraph on ``vertices`` (re-indexed from 0)."""
        keep = np.zeros(self._n, dtype=bool)
        vert_arr = np.asarray(list(vertices), dtype=np.int64)
        if vert_arr.size and (vert_arr.min() < 0 or vert_arr.max() >= self._n):
            raise InvalidVertexError(int(vert_arr.max()), self._n)
        keep[vert_arr] = True
        remap = -np.ones(self._n, dtype=np.int64)
        remap[vert_arr] = np.arange(vert_arr.size)
        mask = keep[self._pair_tails] & keep[self._pair_heads]
        new_edges = np.stack(
            [remap[self._pair_tails[mask]], remap[self._pair_heads[mask]]], axis=1
        )
        return StaticGraph(
            int(vert_arr.size),
            [tuple(e) for e in new_edges.tolist()],
            directed=self._directed,
            name=self._name,
        )

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        kind = "digraph" if self._directed else "graph"
        label = f" {self._name!r}" if self._name else ""
        return f"StaticGraph({kind}{label}, n={self._n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._directed == other._directed
            and np.array_equal(self.edge_pairs, other.edge_pairs)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._directed, self.edge_pairs.tobytes()))
