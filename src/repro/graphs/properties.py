"""Static-graph properties: BFS distances, diameter, connectivity, degrees.

The Price-of-Randomness results (Theorems 7–8) are phrased in terms of the
*static* diameter ``d(G)`` and the edge count ``m``; the Theorem 5 lower bound
needs connectivity of edge-induced subgraphs.  Everything here is exact and
works on the array representation of :class:`~repro.graphs.StaticGraph`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError, InvalidVertexError
from .static_graph import StaticGraph

__all__ = [
    "bfs_distances",
    "all_pairs_shortest_paths",
    "eccentricities",
    "diameter",
    "radius",
    "is_connected",
    "connected_components",
    "degree_sequence",
    "density",
]

#: Sentinel distance for unreachable vertices in BFS outputs.
_UNREACHABLE = -1


def bfs_distances(graph: StaticGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every vertex (−1 when unreachable).

    Implemented as a frontier-at-a-time sweep using boolean masks over the arc
    arrays, so the cost per level is ``O(num_arcs)`` vectorised work rather
    than a Python loop over neighbours.
    """
    if not graph.has_vertex(source):
        raise InvalidVertexError(source, graph.n)
    n = graph.n
    dist = np.full(n, _UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    tails = graph.arc_tails
    heads = graph.arc_heads
    level = 0
    while frontier.any():
        level += 1
        # Arcs leaving the current frontier that reach unvisited vertices.
        active = frontier[tails]
        candidates = heads[active]
        new_frontier = np.zeros(n, dtype=bool)
        new_frontier[candidates] = True
        new_frontier &= dist == _UNREACHABLE
        if not new_frontier.any():
            break
        dist[new_frontier] = level
        frontier = new_frontier
    return dist


def all_pairs_shortest_paths(graph: StaticGraph) -> np.ndarray:
    """All-pairs hop distances as an ``(n, n)`` array (−1 when unreachable)."""
    n = graph.n
    result = np.empty((n, n), dtype=np.int64)
    for source in range(n):
        result[source] = bfs_distances(graph, source)
    return result


def eccentricities(graph: StaticGraph) -> np.ndarray:
    """Eccentricity of every vertex.

    Raises
    ------
    GraphError
        If the graph is not (strongly) connected, since eccentricities are
        undefined in that case.
    """
    dist = all_pairs_shortest_paths(graph)
    if np.any(dist == _UNREACHABLE):
        raise GraphError("eccentricities are undefined on a disconnected graph")
    return dist.max(axis=1)


def diameter(graph: StaticGraph) -> int:
    """Static diameter ``d(G)``: the maximum hop distance over all pairs."""
    if graph.n == 1:
        return 0
    return int(eccentricities(graph).max())


def radius(graph: StaticGraph) -> int:
    """Static radius: the minimum eccentricity over all vertices."""
    if graph.n == 1:
        return 0
    return int(eccentricities(graph).min())


def is_connected(graph: StaticGraph) -> bool:
    """Whether the graph is connected (strongly connected for digraphs)."""
    if graph.n == 0:
        return True
    dist = bfs_distances(graph, 0)
    if np.any(dist == _UNREACHABLE):
        return False
    if not graph.directed:
        return True
    reverse_dist = bfs_distances(graph.reverse(), 0)
    return not np.any(reverse_dist == _UNREACHABLE)


def connected_components(graph: StaticGraph) -> list[list[int]]:
    """Connected components (weak components for digraphs), as vertex lists.

    Components are returned sorted by their smallest vertex, and vertices are
    sorted inside each component, so the output is deterministic.
    """
    n = graph.n
    if n == 0:
        return []
    undirected = graph if not graph.directed else StaticGraph(
        n, list(graph.arcs()), directed=False
    )
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        dist = bfs_distances(undirected, start)
        members = dist != _UNREACHABLE
        labels[members & (labels == -1)] = current
        current += 1
    components: list[list[int]] = [[] for _ in range(current)]
    for v, c in enumerate(labels.tolist()):
        components[c].append(v)
    return components


def degree_sequence(graph: StaticGraph) -> np.ndarray:
    """Non-increasing degree sequence of the graph."""
    return np.sort(graph.degrees())[::-1]


def density(graph: StaticGraph) -> float:
    """Edge density: ``m`` divided by the maximum possible number of edges."""
    n = graph.n
    if n < 2:
        return 0.0
    possible = n * (n - 1) if graph.directed else n * (n - 1) // 2
    return graph.m / possible
