"""Round-trip conversion between :class:`StaticGraph` and networkx graphs.

networkx is only used at the boundary (interoperability and cross-validation
in the test suite); all hot paths stay on the array representation.
"""

from __future__ import annotations

import networkx as nx

from ..exceptions import GraphError
from .static_graph import StaticGraph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: StaticGraph) -> "nx.Graph | nx.DiGraph":
    """Convert a :class:`StaticGraph` to the corresponding networkx graph."""
    nx_graph: nx.Graph | nx.DiGraph = nx.DiGraph() if graph.directed else nx.Graph()
    nx_graph.add_nodes_from(range(graph.n))
    nx_graph.add_edges_from(graph.edges())
    if graph.name:
        nx_graph.graph["name"] = graph.name
    return nx_graph


def from_networkx(nx_graph: "nx.Graph | nx.DiGraph") -> StaticGraph:
    """Convert a networkx graph with integer-convertible nodes to a StaticGraph.

    Node labels are relabelled to ``0 … n−1`` following the sorted order of the
    original labels when they are sortable, or insertion order otherwise.
    Multigraphs are rejected because the temporal-label machinery attaches
    label *sets* to simple edges.
    """
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    nodes = list(nx_graph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
    name = str(nx_graph.graph.get("name", ""))
    return StaticGraph(
        len(nodes), edges, directed=nx_graph.is_directed(), name=name
    )
