"""Target-major (reverse) label-grouped CSR layout of a network's time arcs.

:class:`~repro.core.timearc_csr.TimeArcCSR` serves the *forward* kernels:
arcs sorted by ``(label, head)`` so an ascending sweep can min-reduce new
arrival times per head.  The reverse kernels — latest departure towards a
fixed target, single-target reverse reachability
(:mod:`repro.core.reverse_journeys`) — share the mirrored access pattern:
visit the arcs one label value at a time in *descending* order and reduce the
arcs that share a **tail** vertex (a sweep towards a target propagates
departure times backwards over each arc, from head to tail).  The
:class:`ReverseTimeArcCSR` precomputes exactly that view:

* arcs are sorted by ``(label, tail)`` and stored as flat ``tails``/``heads``
  column arrays;
* ``arc_offsets`` is the CSR row-offset array over label groups, identical in
  meaning to the forward layout (the two structures share their ``labels``
  array values by construction);
* for every group the distinct tail vertices and the start of each tail's run
  (``tail_values``/``tail_starts``, indexed through ``tail_offsets``) are
  precomputed so a kernel can OR-reduce per-tail "some usable arc" masks with
  one ``reduceat`` and no per-call ``np.unique``.

A descending sweep over the groups maintains the mirrored invariant "after
group ``g``, every departure time ``>= labels[g]`` is final" — labels along a
journey strictly increase, so an arc labelled ``l`` can extend a journey
suffix exactly when the suffix departs strictly later than ``l``.  The
structure is immutable and built lazily by
:attr:`TemporalGraph.reverse_timearc_csr`, so the ``O(A log A)`` sort is paid
once per network; forward and reverse layouts are independent caches (a
workload that never runs a reverse sweep never builds this one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .temporal_graph import TemporalGraph

__all__ = [
    "ReverseTimeArcCSR",
    "build_reverse_timearc_csr",
    "build_reverse_timearc_csr_from_arrays",
]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True, slots=True)
class ReverseTimeArcCSR:
    """Immutable target-major label-grouped CSR view of the time arcs.

    Attributes
    ----------
    n:
        Number of vertices of the network the layout was built from.
    lifetime:
        The network's lifetime ``a``.
    labels:
        The distinct label values present, ascending — one label group per
        entry; shape ``(G,)``.  Reverse sweeps iterate the groups from the
        *last* entry down.
    arc_offsets:
        Row-offset array of shape ``(G + 1,)``; group ``g`` spans arc
        positions ``arc_offsets[g]`` to ``arc_offsets[g + 1]``.
    tails, heads:
        Tail/head vertex of every arc, sorted by ``(label, tail)``; shape
        ``(A,)``.
    arc_order:
        Permutation mapping CSR arc position back to the index in the
        network's original time-arc arrays, for journey reconstruction;
        shape ``(A,)``.
    edge_index:
        Canonical edge index of every arc, in CSR order; shape ``(A,)``.
    tail_values:
        Distinct tail vertices of every group, concatenated; the tails of
        group ``g`` are ``tail_values[tail_offsets[g]:tail_offsets[g + 1]]``.
    tail_offsets:
        Offsets into ``tail_values``/``tail_starts`` per group; shape
        ``(G + 1,)``.
    tail_starts:
        For each entry of ``tail_values``, the start of that tail's run of
        arcs *relative to its group's first arc* — the ``reduceat`` index
        array for the group, shape matching ``tail_values``.
    """

    n: int
    lifetime: int
    labels: np.ndarray
    arc_offsets: np.ndarray
    tails: np.ndarray
    heads: np.ndarray
    arc_order: np.ndarray
    edge_index: np.ndarray
    tail_values: np.ndarray
    tail_offsets: np.ndarray
    tail_starts: np.ndarray

    @property
    def num_arcs(self) -> int:
        """Total number of time arcs stored."""
        return int(self.tails.size)

    @property
    def num_groups(self) -> int:
        """Number of label groups (distinct label values)."""
        return int(self.labels.size)

    @property
    def nbytes(self) -> int:
        """Total bytes of the column arrays (diagnostics / capacity planning)."""
        return int(
            sum(
                arr.nbytes
                for arr in (
                    self.labels,
                    self.arc_offsets,
                    self.tails,
                    self.heads,
                    self.arc_order,
                    self.edge_index,
                    self.tail_values,
                    self.tail_offsets,
                    self.tail_starts,
                )
            )
        )

    def group_slice(self, group: int) -> slice:
        """The ``slice`` into the arc arrays covered by label group ``group``."""
        return slice(int(self.arc_offsets[group]), int(self.arc_offsets[group + 1]))

    def iter_groups_descending(self) -> Iterator[tuple[int, slice]]:
        """Iterate ``(label, arc_slice)`` pairs in descending label order."""
        for group in range(self.num_groups - 1, -1, -1):
            yield int(self.labels[group]), self.group_slice(group)

    def __repr__(self) -> str:
        return (
            f"ReverseTimeArcCSR(n={self.n}, arcs={self.num_arcs}, "
            f"groups={self.num_groups}, lifetime={self.lifetime})"
        )


def build_reverse_timearc_csr(network: "TemporalGraph") -> ReverseTimeArcCSR:
    """Build the target-major label-grouped CSR layout for a temporal network.

    The arcs are sorted by ``(label, tail)`` so that inside each label group
    arcs sharing a tail are contiguous; the per-group distinct tails and
    their run starts are precomputed for the ``reduceat`` reduction used by
    the batched reverse kernels.  Cost is ``O(A log A)`` time and ``O(A)``
    memory; call sites should go through the cached
    :attr:`TemporalGraph.reverse_timearc_csr` rather than rebuilding.
    """
    return build_reverse_timearc_csr_from_arrays(
        network.n,
        network.lifetime,
        network.time_arc_tails,
        network.time_arc_heads,
        network.time_arc_labels,
        network.time_arc_edge_index,
    )


def build_reverse_timearc_csr_from_arrays(
    n: int,
    lifetime: int,
    raw_tails: np.ndarray,
    raw_heads: np.ndarray,
    raw_labels: np.ndarray,
    raw_edge_index: np.ndarray,
) -> ReverseTimeArcCSR:
    """Build the target-major CSR layout from flat time-arc arrays.

    Array-level entry point mirroring
    :func:`repro.core.timearc_csr.build_timearc_csr_from_arrays`; the four
    input columns must be parallel ``int64`` arrays of equal length.
    """
    num_arcs = int(raw_labels.size)
    if num_arcs == 0:
        empty = _readonly(np.empty(0, dtype=np.int64))
        return ReverseTimeArcCSR(
            n=n,
            lifetime=lifetime,
            labels=empty,
            arc_offsets=_readonly(np.zeros(1, dtype=np.int64)),
            tails=empty,
            heads=empty,
            arc_order=empty,
            edge_index=empty,
            tail_values=empty,
            tail_offsets=_readonly(np.zeros(1, dtype=np.int64)),
            tail_starts=empty,
        )

    order = np.lexsort((raw_tails, raw_labels))
    labels = raw_labels[order]
    tails = raw_tails[order]
    heads = raw_heads[order]
    edge_index = raw_edge_index[order]

    unique_labels, group_starts = np.unique(labels, return_index=True)
    arc_offsets = np.append(group_starts, num_arcs).astype(np.int64)

    # A tail run starts wherever the tail changes or a new label group begins.
    run_start = np.empty(num_arcs, dtype=bool)
    run_start[0] = True
    run_start[1:] = (tails[1:] != tails[:-1]) | (labels[1:] != labels[:-1])
    tail_starts_abs = np.flatnonzero(run_start).astype(np.int64)
    tail_values = tails[tail_starts_abs]
    # Every group start is itself a run start, so searchsorted lands exactly.
    tail_offsets = np.searchsorted(tail_starts_abs, arc_offsets).astype(np.int64)
    tails_per_group = np.diff(tail_offsets)
    tail_starts = tail_starts_abs - np.repeat(arc_offsets[:-1], tails_per_group)

    return ReverseTimeArcCSR(
        n=n,
        lifetime=lifetime,
        labels=_readonly(unique_labels.astype(np.int64)),
        arc_offsets=_readonly(arc_offsets),
        tails=_readonly(tails),
        heads=_readonly(heads),
        arc_order=_readonly(order.astype(np.int64)),
        edge_index=_readonly(edge_index),
        tail_values=_readonly(tail_values),
        tail_offsets=_readonly(tail_offsets),
        tail_starts=_readonly(tail_starts),
    )
