"""The :class:`TemporalGraph`: an ephemeral temporal network ``(G, L)``.

Definition 1 of the paper: a temporal network on a (di)graph ``G = (V, E)`` is
a pair ``(G, L)`` where ``L = {L_e ⊆ ℕ : e ∈ E}`` assigns a set of discrete
time labels to every edge.  When every ``L_e ⊆ {1, …, a}`` the network is
*ephemeral* with lifetime ``a``.

Internally the class keeps three synchronized representations:

* a per-edge mapping ``edge index → sorted tuple of labels`` for API-level
  queries (``labels_of``, ``total_labels``, …);
* flat *time-arc arrays* ``(tails, heads, labels)`` — one entry per
  availability of each arc — used by the single-source journey kernels.  For
  an undirected underlying graph a label on edge ``{u, v}`` produces the two
  time arcs ``(u, v, l)`` and ``(v, u, l)``, matching the paper's convention
  that an undirected edge can be crossed in either direction at its label;
* a lazily built, cached :class:`~repro.core.timearc_csr.TimeArcCSR` — the
  label-grouped CSR layout (arcs sorted by ``(label, head)`` with row offsets
  per label value) that backs every batched kernel, most importantly
  :func:`repro.core.journeys.earliest_arrival_matrix`.  The cache means the
  ``O(A log A)`` sort is paid once per network, not once per sweep; it is
  safe because the label data is immutable after construction.

Random label models sample a dense ``(m, r)`` label matrix and go through
:meth:`TemporalGraph.from_label_matrix`, which builds the time-arc arrays with
vectorised numpy operations and defers the per-edge tuple view until an
API-level query actually asks for it.  Both constructors produce identical
networks — same time-arc arrays, same CSR layout, same label tuples — so every
kernel and every Monte-Carlo result is bit-for-bit independent of which path
built the instance (``tests/test_labeling.py`` pins this).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidEdgeError, LabelingError, LifetimeError
from ..graphs.static_graph import StaticGraph
from ..types import TimeEdge
from ..utils.validation import check_positive_int

__all__ = ["TemporalGraph"]


class TemporalGraph:
    """An ephemeral temporal network: a static graph plus labels per edge.

    Parameters
    ----------
    graph:
        The underlying static (di)graph.
    labels:
        Either a mapping from canonical edge index (``0 … m−1``, the row index
        into ``graph.edge_pairs``) to an iterable of labels, or a sequence of
        length ``m`` whose ``i``-th entry is the label iterable of edge ``i``.
        Edges may have zero labels (they are then never available).
    lifetime:
        The lifetime ``a``.  Defaults to the largest assigned label (or
        ``graph.n`` if there are no labels at all, which matches the
        "normalized" convention of the paper).

    Raises
    ------
    LifetimeError
        If any label falls outside ``[1, lifetime]``.
    LabelingError
        If the label container is malformed.
    """

    __slots__ = (
        "_graph",
        "_lifetime",
        "_edge_labels",
        "_el_edge_index",
        "_el_labels",
        "_ta_tails",
        "_ta_heads",
        "_ta_labels",
        "_ta_edge_index",
        "_timearc_csr",
        "_reverse_timearc_csr",
    )

    def __init__(
        self,
        graph: StaticGraph,
        labels: Mapping[int, Iterable[int]] | Sequence[Iterable[int]],
        *,
        lifetime: int | None = None,
    ) -> None:
        self._graph = graph
        self._edge_labels = self._normalise_labels(graph, labels)
        self._el_edge_index = None
        self._el_labels = None

        max_label = 0
        for edge_labels in self._edge_labels:
            if edge_labels:
                max_label = max(max_label, edge_labels[-1])
        if lifetime is None:
            lifetime = max_label if max_label > 0 else max(graph.n, 1)
        self._lifetime = check_positive_int(lifetime, "lifetime")
        if max_label > self._lifetime:
            raise LifetimeError(max_label, self._lifetime)

        self._build_time_arcs()
        self._timearc_csr = None
        self._reverse_timearc_csr = None

    @classmethod
    def from_label_matrix(
        cls,
        graph: StaticGraph,
        label_matrix: np.ndarray,
        *,
        lifetime: int | None = None,
    ) -> "TemporalGraph":
        """Build a temporal network from a dense ``(m, r)`` label draw matrix.

        This is the vectorised fast path used by the random label models:
        row ``i`` of ``label_matrix`` holds the ``r`` (possibly duplicate)
        labels drawn for canonical edge ``i``.  Duplicates are collapsed —
        only the label *set* matters for journeys — and the flat time-arc
        arrays are produced with array operations instead of the per-edge
        Python loop of the mapping constructor.  The per-edge tuple view
        (:meth:`labels_of` and friends) is materialised lazily on first use.

        The resulting network is indistinguishable from
        ``TemporalGraph(graph, [tuple(sorted(set(row))) for row in matrix])``:
        identical time-arc arrays (same order), identical CSR layout,
        identical label tuples, so kernels and Monte-Carlo pipelines are
        bit-compatible across the two construction paths.

        Parameters
        ----------
        graph:
            The underlying static (di)graph.
        label_matrix:
            Integer array of shape ``(m, r)`` (or ``(m,)`` for one label per
            edge); every entry must lie in ``[1, lifetime]``.
        lifetime:
            The lifetime ``a``; defaults to the largest drawn label (or
            ``graph.n`` when the matrix is empty).
        """
        matrix = np.asarray(label_matrix, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix[:, np.newaxis]
        if matrix.ndim != 2 or matrix.shape[0] != graph.m:
            raise LabelingError(
                f"expected a label matrix with one row per edge ({graph.m} "
                f"edges), got shape {matrix.shape!r}"
            )
        max_label = 0
        if matrix.size:
            min_label = int(matrix.min())
            if min_label < 1:
                raise LabelingError(
                    f"labels must be positive integers, got {min_label}"
                )
            max_label = int(matrix.max())
        if lifetime is None:
            lifetime = max_label if max_label > 0 else max(graph.n, 1)
        lifetime = check_positive_int(lifetime, "lifetime")
        if max_label > lifetime:
            raise LifetimeError(max_label, lifetime)

        # Collapse duplicate draws per edge.  Encoding (edge, label) pairs as
        # edge·(a+1)+label keeps np.unique sorting them by edge then label —
        # exactly the enumeration order of the mapping constructor's loops.
        m, r = matrix.shape
        keys = np.unique(
            np.repeat(np.arange(m, dtype=np.int64), r) * np.int64(lifetime + 1)
            + matrix.ravel()
        )
        el_edges = keys // np.int64(lifetime + 1)
        el_labels = keys - el_edges * np.int64(lifetime + 1)

        pairs = graph.edge_pairs
        u = pairs[el_edges, 0] if el_edges.size else np.empty(0, np.int64)
        v = pairs[el_edges, 1] if el_edges.size else np.empty(0, np.int64)

        self = cls.__new__(cls)
        self._graph = graph
        self._lifetime = lifetime
        self._edge_labels = None
        self._el_edge_index = el_edges
        self._el_labels = el_labels
        if graph.directed:
            self._ta_tails = u
            self._ta_heads = v
            self._ta_labels = el_labels
            self._ta_edge_index = el_edges
        else:
            # Interleave the two arc directions of every undirected edge so
            # the arrays match the mapping constructor entry for entry.
            self._ta_tails = np.stack([u, v], axis=1).ravel()
            self._ta_heads = np.stack([v, u], axis=1).ravel()
            self._ta_labels = np.repeat(el_labels, 2)
            self._ta_edge_index = np.repeat(el_edges, 2)
        self._timearc_csr = None
        self._reverse_timearc_csr = None
        return self

    def _edge_label_tuples(self) -> list[tuple[int, ...]]:
        """Per-edge sorted label tuples, materialised on demand.

        The mapping constructor builds this list eagerly; the
        :meth:`from_label_matrix` fast path defers it until an API-level
        query needs per-edge tuples, keeping the Monte-Carlo hot loop (which
        only touches the flat arrays and the CSR) free of per-edge Python
        work.
        """
        if self._edge_labels is None:
            if self.m == 0:
                self._edge_labels = []
            else:
                counts = np.bincount(self._el_edge_index, minlength=self.m)
                chunks = np.split(self._el_labels, np.cumsum(counts)[:-1])
                self._edge_labels = [tuple(chunk.tolist()) for chunk in chunks]
        return self._edge_labels

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalise_labels(
        graph: StaticGraph,
        labels: Mapping[int, Iterable[int]] | Sequence[Iterable[int]],
    ) -> list[tuple[int, ...]]:
        m = graph.m
        per_edge: list[tuple[int, ...]] = [() for _ in range(m)]
        if isinstance(labels, Mapping):
            items = labels.items()
        else:
            seq = list(labels)
            if len(seq) != m:
                raise LabelingError(
                    f"expected one label collection per edge ({m} edges), got "
                    f"{len(seq)} collections"
                )
            items = enumerate(seq)
        for edge_index, edge_labels in items:
            edge_index = int(edge_index)
            if not 0 <= edge_index < m:
                raise LabelingError(
                    f"edge index {edge_index} out of range for a graph with {m} edges"
                )
            values = sorted({int(label) for label in edge_labels})
            for value in values:
                if value < 1:
                    raise LabelingError(
                        f"labels must be positive integers, got {value} on edge "
                        f"{edge_index}"
                    )
            per_edge[edge_index] = tuple(values)
        return per_edge

    def _build_time_arcs(self) -> None:
        pairs = self._graph.edge_pairs
        tails: list[int] = []
        heads: list[int] = []
        labels: list[int] = []
        edge_idx: list[int] = []
        for index, edge_labels in enumerate(self._edge_labels):
            if not edge_labels:
                continue
            u, v = int(pairs[index, 0]), int(pairs[index, 1])
            for label in edge_labels:
                tails.append(u)
                heads.append(v)
                labels.append(label)
                edge_idx.append(index)
                if not self._graph.directed:
                    tails.append(v)
                    heads.append(u)
                    labels.append(label)
                    edge_idx.append(index)
        self._ta_tails = np.asarray(tails, dtype=np.int64)
        self._ta_heads = np.asarray(heads, dtype=np.int64)
        self._ta_labels = np.asarray(labels, dtype=np.int64)
        self._ta_edge_index = np.asarray(edge_idx, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> StaticGraph:
        """The underlying static (di)graph."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of vertices of the underlying graph."""
        return self._graph.n

    @property
    def m(self) -> int:
        """Number of edges of the underlying graph."""
        return self._graph.m

    @property
    def directed(self) -> bool:
        """Whether the underlying graph is directed."""
        return self._graph.directed

    @property
    def lifetime(self) -> int:
        """The lifetime ``a``: no edge is available after time ``a``."""
        return self._lifetime

    @property
    def num_time_arcs(self) -> int:
        """Number of directed time arcs (availability events × directions)."""
        return int(self._ta_labels.size)

    @property
    def total_labels(self) -> int:
        """Total number of labels over all edges: ``Σ_e |L_e|`` (the paper's cost)."""
        if self._edge_labels is None:
            return int(self._el_labels.size)
        return int(sum(len(labels) for labels in self._edge_labels))

    @property
    def is_normalized(self) -> bool:
        """Whether the network is *normalized*: lifetime equals ``n``."""
        return self._lifetime == self.n

    @property
    def time_arc_tails(self) -> np.ndarray:
        """Tail of every time arc (read-only)."""
        view = self._ta_tails.view()
        view.flags.writeable = False
        return view

    @property
    def time_arc_heads(self) -> np.ndarray:
        """Head of every time arc (read-only)."""
        view = self._ta_heads.view()
        view.flags.writeable = False
        return view

    @property
    def time_arc_labels(self) -> np.ndarray:
        """Label of every time arc (read-only)."""
        view = self._ta_labels.view()
        view.flags.writeable = False
        return view

    @property
    def time_arc_edge_index(self) -> np.ndarray:
        """Canonical edge index of every time arc (read-only)."""
        view = self._ta_edge_index.view()
        view.flags.writeable = False
        return view

    @property
    def timearc_csr(self):
        """The label-grouped CSR layout of the time arcs, built lazily.

        Returns
        -------
        repro.core.timearc_csr.TimeArcCSR
            Immutable CSR structure shared by all batched kernels.  Building
            it costs ``O(A log A)`` on first access and nothing afterwards;
            the label data cannot change after construction, so the cache
            never goes stale.
        """
        if self._timearc_csr is None:
            from .timearc_csr import build_timearc_csr

            self._timearc_csr = build_timearc_csr(self)
        return self._timearc_csr

    @property
    def reverse_timearc_csr(self):
        """The target-major (reverse) CSR layout of the time arcs, built lazily.

        Returns
        -------
        repro.core.reverse_timearc_csr.ReverseTimeArcCSR
            Immutable CSR structure shared by the reverse (latest-departure)
            kernels — arcs sorted by ``(label, tail)`` with per-tail run
            indices, the mirror of :attr:`timearc_csr`.  The two layouts are
            independent caches: a forward-only workload never pays for this
            sort, and vice versa.
        """
        if self._reverse_timearc_csr is None:
            from .reverse_timearc_csr import build_reverse_timearc_csr

            self._reverse_timearc_csr = build_reverse_timearc_csr(self)
        return self._reverse_timearc_csr

    # ------------------------------------------------------------------ #
    # label queries
    # ------------------------------------------------------------------ #
    def labels_of_edge_index(self, edge_index: int) -> tuple[int, ...]:
        """Labels of the canonical edge with the given index (sorted tuple)."""
        if not 0 <= edge_index < self.m:
            raise LabelingError(
                f"edge index {edge_index} out of range for a graph with {self.m} edges"
            )
        return self._edge_label_tuples()[edge_index]

    def labels_of(self, u: int, v: int) -> tuple[int, ...]:
        """Labels of the edge ``{u, v}`` (or arc ``(u, v)`` for digraphs)."""
        try:
            index = self._graph.edge_index(u, v)
        except InvalidEdgeError:
            raise
        return self._edge_label_tuples()[index]

    def label_count_per_edge(self) -> np.ndarray:
        """Number of labels on each canonical edge, as an ``int64`` array."""
        if self._edge_labels is None:
            return np.bincount(self._el_edge_index, minlength=self.m).astype(np.int64)
        return np.asarray([len(labels) for labels in self._edge_labels], dtype=np.int64)

    def edge_label_items(self) -> Iterator[tuple[tuple[int, int], tuple[int, ...]]]:
        """Iterate over ``((u, v), labels)`` pairs for every canonical edge."""
        pairs = self._graph.edge_pairs
        for index, labels in enumerate(self._edge_label_tuples()):
            yield (int(pairs[index, 0]), int(pairs[index, 1])), labels

    def time_edges(self) -> Iterator[TimeEdge]:
        """Iterate over all directed time arcs as :class:`TimeEdge` objects."""
        for u, v, label in zip(
            self._ta_tails.tolist(), self._ta_heads.tolist(), self._ta_labels.tolist()
        ):
            yield TimeEdge(u, v, label)

    def has_time_edge(self, u: int, v: int, label: int) -> bool:
        """Whether the arc ``(u, v)`` is available exactly at ``label``."""
        mask = (self._ta_tails == u) & (self._ta_heads == v) & (self._ta_labels == label)
        return bool(mask.any())

    # ------------------------------------------------------------------ #
    # derived networks
    # ------------------------------------------------------------------ #
    def restricted_to_max_label(self, max_label: int) -> "TemporalGraph":
        """Return the temporal graph keeping only labels ``<= max_label``.

        This is the edge-induced subnetwork used in the Theorem 5 argument
        ("consider only the arcs with labels up to k").
        """
        max_label = check_positive_int(max_label, "max_label")
        new_labels = [
            tuple(label for label in labels if label <= max_label)
            for labels in self._edge_label_tuples()
        ]
        return TemporalGraph(self._graph, new_labels, lifetime=self._lifetime)

    def time_reversed(self) -> "TemporalGraph":
        """Return the time-reversed network: arcs flipped, labels mirrored.

        Every arc ``(u, v)`` becomes ``(v, u)`` (a no-op for undirected
        graphs, which already allow both directions) and every label ``l``
        becomes ``a + 1 − l`` where ``a`` is the lifetime.  A journey
        ``u → v`` with labels ``l_1 < … < l_k`` maps to a journey ``v → u``
        with labels ``a + 1 − l_k < … < a + 1 − l_1``, so earliest arrivals
        in the reversal are latest departures in the original (and vice
        versa) — the duality pinned by ``tests/test_reverse_sweep.py``.
        Applying :meth:`time_reversed` twice returns an equal network.
        """
        a = self._lifetime
        mapped = [
            tuple(a + 1 - label for label in reversed(labels))
            for labels in self._edge_label_tuples()
        ]
        if not self.directed:
            return TemporalGraph(self._graph, mapped, lifetime=a)
        reversed_graph = self._graph.reverse()
        # Map each original edge (u, v) to the canonical index its flipped
        # twin (v, u) received in the reversed graph (whose edge list is
        # sorted by (tail, head), so an encoded-key searchsorted lands it).
        pairs = self._graph.edge_pairs
        reversed_pairs = reversed_graph.edge_pairs
        keys = reversed_pairs[:, 0] * np.int64(self.n) + reversed_pairs[:, 1]
        flipped = pairs[:, 1] * np.int64(self.n) + pairs[:, 0]
        position = np.searchsorted(keys, flipped)
        reversed_labels: list[tuple[int, ...]] = [()] * self.m
        for index, pos in enumerate(position.tolist()):
            reversed_labels[pos] = mapped[index]
        return TemporalGraph(reversed_graph, reversed_labels, lifetime=a)

    def with_lifetime(self, lifetime: int) -> "TemporalGraph":
        """Return a copy with a different declared lifetime (labels unchanged)."""
        return TemporalGraph(self._graph, list(self._edge_label_tuples()), lifetime=lifetime)

    def underlying_edges_with_labels(self) -> StaticGraph:
        """Static graph keeping only the edges that received at least one label."""
        pairs = self._graph.edge_pairs
        keep = [i for i, labels in enumerate(self._edge_label_tuples()) if labels]
        edges = [tuple(pairs[i]) for i in keep]
        return StaticGraph(
            self.n,
            edges,
            directed=self.directed,
            name=f"{self._graph.name}+labels" if self._graph.name else "",
        )

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"TemporalGraph(n={self.n}, m={self.m}, lifetime={self._lifetime}, "
            f"total_labels={self.total_labels})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalGraph):
            return NotImplemented
        return (
            self._graph == other._graph
            and self._lifetime == other._lifetime
            and self._edge_label_tuples() == other._edge_label_tuples()
        )

    def __hash__(self) -> int:
        return hash((self._graph, self._lifetime, tuple(self._edge_label_tuples())))
