"""The Expansion Process of Algorithm 1.

Given an instance of the directed normalized uniform random temporal clique,
the algorithm grows a forward frontier out of the source ``s`` and a backward
frontier into the target ``t``, each layer using labels from a dedicated
interval:

* ``∆_1 = (0, c₁·log n]`` for the first forward layer,
* ``∆_i = (c₁·log n + (i−2)·c₂, c₁·log n + (i−1)·c₂]`` for forward layers
  ``i = 2 … d+1``,
* ``∆* = (c₁·log n + d·c₂, 2·c₁·log n + d·c₂]`` for the matching edge,
* ``∆'_i = (2·c₁·log n + (2d−i+1)·c₂, 2·c₁·log n + (2d−i+2)·c₂]`` for
  backward layers ``i = 2 … d+1``, and
* ``∆'_1 = (2·c₁·log n + 2d·c₂, 3·c₁·log n + 2d·c₂]`` for the last hop into
  ``t``.

If the two frontiers can be matched by an arc labelled in ``∆*``, the
concatenated journey arrives by time ``3·c₁·log n + 2·d·c₂ = Θ(log n)``
(Theorem 3).  The implementation records the layer sizes (``|Γ_i(s)|``,
``|Γ'_i(t)|``) so the experiment layer can regenerate the Figure 1 trace, and
reconstructs the explicit journey on success.

The paper's constants (``c₁ ≥ 33``, ``c₁·c₂ ≥ 1024``) are what the
probability-1−O(n⁻³) guarantee needs asymptotically; at laptop-scale ``n``
those intervals would exceed the lifetime, so :meth:`ExpansionParameters.suggest`
picks practical constants (documented in DESIGN.md §5) while keeping the
interval structure exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ExperimentError, GraphError
from ..types import Journey, TimeEdge
from .temporal_graph import TemporalGraph

__all__ = ["ExpansionParameters", "ExpansionResult", "expansion_process"]


@dataclass(frozen=True, slots=True)
class ExpansionParameters:
    """Constants of Algorithm 1: the interval widths ``c₁``, ``c₂`` and depth ``d``."""

    c1: float
    c2: float
    d: int

    def __post_init__(self) -> None:
        if self.c1 <= 0 or self.c2 <= 0:
            raise ValueError("c1 and c2 must be positive")
        if self.d < 1:
            raise ValueError("the expansion depth d must be at least 1")

    @classmethod
    def suggest(cls, n: int, *, c1: float = 3.0, c2: float = 8.0) -> "ExpansionParameters":
        """Pick a depth ``d`` so the expansion reaches ≈√n vertices.

        Mirrors the paper's choice ``(c₂/8)^d · c₁·log n ≈ √n`` but uses the
        *expected* per-layer growth factor (≈ ``c₂/2`` for small layers) so
        the resulting intervals stay well inside the lifetime at practical
        ``n``.
        """
        if n < 4:
            raise ValueError(f"the expansion process needs n >= 4, got {n}")
        log_n = math.log(n)
        base_layer = c1 * log_n
        growth = max(c2 / 2.0, 1.5)
        target = math.sqrt(n)
        if base_layer >= target:
            d = 1
        else:
            d = max(1, math.ceil(math.log(target / base_layer) / math.log(growth)))
        return cls(c1=c1, c2=c2, d=d)

    def time_bound(self, n: int) -> float:
        """The arrival-time bound ``3·c₁·log n + 2·d·c₂`` of the Note in §3."""
        return 3.0 * self.c1 * math.log(n) + 2.0 * self.d * self.c2

    # ------------------------------------------------------------------ #
    # interval bookkeeping (all intervals are half-open (low, high])
    # ------------------------------------------------------------------ #
    def forward_interval(self, n: int, i: int) -> tuple[float, float]:
        """The interval ``∆_i`` for forward layer ``i`` (1-based, up to d+1)."""
        if not 1 <= i <= self.d + 1:
            raise ValueError(f"forward layer index must be in [1, {self.d + 1}], got {i}")
        c1_log = self.c1 * math.log(n)
        if i == 1:
            return (0.0, c1_log)
        return (c1_log + (i - 2) * self.c2, c1_log + (i - 1) * self.c2)

    def matching_interval(self, n: int) -> tuple[float, float]:
        """The interval ``∆*`` for the matching edge."""
        c1_log = self.c1 * math.log(n)
        return (c1_log + self.d * self.c2, 2.0 * c1_log + self.d * self.c2)

    def backward_interval(self, n: int, i: int) -> tuple[float, float]:
        """The interval ``∆'_i`` for backward layer ``i`` (1-based, up to d+1)."""
        if not 1 <= i <= self.d + 1:
            raise ValueError(f"backward layer index must be in [1, {self.d + 1}], got {i}")
        c1_log = self.c1 * math.log(n)
        base = 2.0 * c1_log
        if i == 1:
            return (base + 2 * self.d * self.c2, 3.0 * c1_log + 2 * self.d * self.c2)
        return (
            base + (2 * self.d - i + 1) * self.c2,
            base + (2 * self.d - i + 2) * self.c2,
        )


@dataclass(slots=True)
class ExpansionResult:
    """Outcome of one run of the Expansion Process.

    Attributes
    ----------
    success:
        Whether a matching edge was found (line 8 of Algorithm 1).
    journey:
        The explicit s→t journey on success, ``None`` on failure.
    arrival_time:
        The journey's arrival time on success, ``None`` on failure.
    forward_layer_sizes / backward_layer_sizes:
        ``|Γ_i(s)|`` and ``|Γ'_i(t)|`` for ``i = 1 … d+1`` — the measured
        counterpart of the Figure 1 diagram.
    forward_layers / backward_layers:
        The actual vertex sets of each layer (lists of vertex indices).
    parameters / time_bound:
        The constants used and the analytic bound ``3c₁ log n + 2dc₂``.
    """

    success: bool
    journey: Journey | None
    arrival_time: int | None
    forward_layer_sizes: list[int]
    backward_layer_sizes: list[int]
    forward_layers: list[list[int]] = field(repr=False)
    backward_layers: list[list[int]] = field(repr=False)
    parameters: ExpansionParameters = field(repr=False)
    time_bound: float = 0.0


def _label_lookup(network: TemporalGraph) -> dict[tuple[int, int], int]:
    """Map (tail, head) → smallest label of that arc (single-label cliques have one)."""
    lookup: dict[tuple[int, int], int] = {}
    tails = network.time_arc_tails.tolist()
    heads = network.time_arc_heads.tolist()
    labels = network.time_arc_labels.tolist()
    for u, v, label in zip(tails, heads, labels):
        key = (u, v)
        if key not in lookup or label < lookup[key]:
            lookup[key] = label
    return lookup


def expansion_process(
    network: TemporalGraph,
    source: int,
    target: int,
    parameters: ExpansionParameters | None = None,
) -> ExpansionResult:
    """Run Algorithm 1 on an instance of the random temporal clique.

    Parameters
    ----------
    network:
        A temporal network whose underlying graph is the (directed or
        undirected) clique with exactly one label per arc/edge — the
        normalized U-RTN of Section 3.  Undirected cliques are accepted
        (Remark 1: the analysis carries over).
    source, target:
        The vertices ``s`` and ``t``.
    parameters:
        Algorithm constants; defaults to :meth:`ExpansionParameters.suggest`.

    Returns
    -------
    ExpansionResult

    Raises
    ------
    GraphError
        If the underlying graph is not a clique.
    ExperimentError
        If ``source == target``.
    """
    n = network.n
    if source == target:
        raise ExperimentError("the expansion process needs two distinct vertices")
    expected_m = n * (n - 1) if network.directed else n * (n - 1) // 2
    if network.m != expected_m:
        raise GraphError(
            "the expansion process is defined on the complete graph; got "
            f"m={network.m}, expected {expected_m}"
        )
    if parameters is None:
        parameters = ExpansionParameters.suggest(n)

    labels = _label_lookup(network)
    d = parameters.d

    def arcs_in_interval(tail_set: set[int], interval: tuple[float, float]) -> dict[int, tuple[int, int]]:
        """Heads reachable from ``tail_set`` by arcs labelled inside ``interval``.

        Returns ``head → (tail, label)`` choosing an arbitrary witness arc.
        """
        low, high = interval
        found: dict[int, tuple[int, int]] = {}
        for tail in tail_set:
            for head in range(n):
                if head == tail:
                    continue
                label = labels.get((tail, head))
                if label is None:
                    continue
                if low < label <= high and head not in found:
                    found[head] = (tail, label)
        return found

    def arcs_into_interval(head_set: set[int], interval: tuple[float, float]) -> dict[int, tuple[int, int]]:
        """Tails that can reach ``head_set`` by arcs labelled inside ``interval``.

        Returns ``tail → (head, label)``.
        """
        low, high = interval
        found: dict[int, tuple[int, int]] = {}
        for head in head_set:
            for tail in range(n):
                if tail == head:
                    continue
                label = labels.get((tail, head))
                if label is None:
                    continue
                if low < label <= high and tail not in found:
                    found[tail] = (head, label)
        return found

    # ------------------------------------------------------------------ #
    # forward expansion out of s (lines 2-4)
    # ------------------------------------------------------------------ #
    forward_layers: list[list[int]] = []
    forward_parent: dict[int, tuple[int, int]] = {}
    seen_forward: set[int] = {source}
    frontier: set[int] = {source}
    for i in range(1, d + 2):
        interval = parameters.forward_interval(n, i)
        candidates = arcs_in_interval(frontier, interval)
        layer = {v: w for v, w in candidates.items() if v not in seen_forward and v != target}
        forward_parent.update(layer)
        frontier = set(layer)
        seen_forward |= frontier
        forward_layers.append(sorted(frontier))
        if not frontier:
            break
    while len(forward_layers) < d + 1:
        forward_layers.append([])

    # ------------------------------------------------------------------ #
    # backward expansion into t (lines 5-7)
    # ------------------------------------------------------------------ #
    backward_layers: list[list[int]] = []
    backward_next: dict[int, tuple[int, int]] = {}
    seen_backward: set[int] = {target}
    frontier = {target}
    for i in range(1, d + 2):
        interval = parameters.backward_interval(n, i)
        candidates = arcs_into_interval(frontier, interval)
        layer = {v: w for v, w in candidates.items() if v not in seen_backward and v != source}
        backward_next.update(layer)
        frontier = set(layer)
        seen_backward |= frontier
        backward_layers.append(sorted(frontier))
        if not frontier:
            break
    while len(backward_layers) < d + 1:
        backward_layers.append([])

    result_common = dict(
        forward_layer_sizes=[len(layer) for layer in forward_layers],
        backward_layer_sizes=[len(layer) for layer in backward_layers],
        forward_layers=forward_layers,
        backward_layers=backward_layers,
        parameters=parameters,
        time_bound=parameters.time_bound(n),
    )

    # ------------------------------------------------------------------ #
    # matching step (line 8)
    # ------------------------------------------------------------------ #
    matching_interval = parameters.matching_interval(n)
    low, high = matching_interval
    last_forward = forward_layers[d] if len(forward_layers) > d else []
    last_backward = backward_layers[d] if len(backward_layers) > d else []
    match: tuple[int, int, int] | None = None
    for u in last_forward:
        for v in last_backward:
            if u == v:
                continue
            label = labels.get((u, v))
            if label is not None and low < label <= high:
                match = (u, v, label)
                break
        if match is not None:
            break

    if match is None:
        return ExpansionResult(
            success=False, journey=None, arrival_time=None, **result_common
        )

    # ------------------------------------------------------------------ #
    # journey reconstruction (line 9)
    # ------------------------------------------------------------------ #
    u, v, matching_label = match
    forward_hops: list[TimeEdge] = []
    current = u
    while current != source:
        parent, label = forward_parent[current]
        forward_hops.append(TimeEdge(parent, current, label))
        current = parent
    forward_hops.reverse()

    backward_hops: list[TimeEdge] = []
    current = v
    while current != target:
        nxt, label = backward_next[current]
        backward_hops.append(TimeEdge(current, nxt, label))
        current = nxt

    hops = tuple(forward_hops + [TimeEdge(u, v, matching_label)] + backward_hops)
    journey = Journey(source, target, hops)
    return ExpansionResult(
        success=True,
        journey=journey,
        arrival_time=journey.arrival_time,
        **result_common,
    )
