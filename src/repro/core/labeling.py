"""Label assignment strategies.

Random assignments
------------------
* :func:`uniform_random_labels` — the paper's random model: every edge
  independently receives ``r`` labels, each drawn from ``{1, …, a}`` (UNI-CASE
  by default, or an arbitrary :class:`~repro.randomness.LabelDistribution` for
  the F-CASE).  With ``r = 1`` and ``a = n`` this is exactly the *Normalized
  Uniform Random Temporal Network* of Definition 4.
* :func:`normalized_urtn` — convenience wrapper for the normalized U-RTN.

Deterministic assignments (baselines / OPT constructions)
----------------------------------------------------------
* :func:`box_assignment` — the Section 5 construction: the lifetime is split
  into ``d(G)`` boxes of size ``λ = q / d(G)`` and every edge receives one
  label per box; Claim 1 shows this preserves reachability.
* :func:`tree_broadcast_assignment` — a 2-labels-per-tree-edge construction
  (gather towards a root, then scatter) that preserves reachability with
  ``2·(n−1)`` total labels on any connected graph; it realises the paper's
  ``OPT = 2m`` assignment on the star (where the tree is the whole graph).
* :func:`assign_deterministic_labels` — assign explicit user-provided labels.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import GraphError, LabelingError
from ..graphs.properties import bfs_distances, diameter, is_connected
from ..graphs.static_graph import StaticGraph
from ..randomness.distributions import LabelDistribution, UniformLabelDistribution
from ..utils.seeding import SeedLike, normalize_rng
from ..utils.validation import check_positive_int
from .temporal_graph import TemporalGraph

__all__ = [
    "uniform_random_labels",
    "normalized_urtn",
    "box_assignment",
    "tree_broadcast_assignment",
    "assign_deterministic_labels",
]


def uniform_random_labels(
    graph: StaticGraph,
    *,
    labels_per_edge: int = 1,
    lifetime: int | None = None,
    distribution: LabelDistribution | None = None,
    seed: SeedLike = None,
) -> TemporalGraph:
    """Assign ``labels_per_edge`` independent random labels to every edge.

    Parameters
    ----------
    graph:
        The underlying static (di)graph.
    labels_per_edge:
        The paper's ``r``: how many independent labels each edge receives.
        Duplicate draws on the same edge are collapsed (the label *set* is what
        matters for journeys), so an edge may end up with fewer than ``r``
        distinct labels — exactly as in the paper's model where labels are
        drawn independently.
    lifetime:
        The label range upper bound ``a``.  Defaults to ``graph.n``
        (normalized case).
    distribution:
        Distribution of each label.  ``None`` means uniform over
        ``{1, …, lifetime}`` (UNI-CASE); otherwise the distribution's own
        lifetime must match ``lifetime`` (F-CASE).
    seed:
        RNG seed / generator.

    Returns
    -------
    TemporalGraph
        The sampled random temporal network.
    """
    r = check_positive_int(labels_per_edge, "labels_per_edge")
    a = check_positive_int(lifetime if lifetime is not None else graph.n, "lifetime")
    if distribution is None:
        distribution = UniformLabelDistribution(a)
    elif distribution.lifetime != a:
        raise LabelingError(
            f"distribution lifetime {distribution.lifetime} does not match the "
            f"requested lifetime {a}"
        )
    rng = normalize_rng(seed)
    m = graph.m
    if m == 0:
        return TemporalGraph(graph, [], lifetime=a)
    draws = distribution.sample((m, r), seed=rng)
    # Direct-to-CSR fast path: the dense draw matrix becomes flat time-arc
    # arrays through vectorised numpy operations, bypassing the per-edge
    # Python loops of the mapping constructor (benchmarks/bench_label_sampling.py
    # gates the speedup).  The resulting network is bit-identical.
    return TemporalGraph.from_label_matrix(graph, draws, lifetime=a)


def normalized_urtn(
    graph: StaticGraph, *, seed: SeedLike = None
) -> TemporalGraph:
    """Sample the Normalized Uniform Random Temporal Network on ``graph``.

    One label per edge, uniform over ``{1, …, n}`` (Definition 4).  Applied to
    the directed clique this is exactly the object of Section 3.
    """
    return uniform_random_labels(
        graph, labels_per_edge=1, lifetime=graph.n, seed=seed
    )


def box_assignment(
    graph: StaticGraph,
    *,
    lifetime: int | None = None,
    mode: str = "first",
    seed: SeedLike = None,
) -> TemporalGraph:
    """The Section 5 box construction: one label per box per edge.

    The lifetime ``q`` (default ``max(n, d(G))``) is split into ``d(G)``
    consecutive ranges ("boxes") of size ``λ = q / d(G)``; every edge gets one
    label inside each box.  Claim 1 of the paper shows the result preserves
    reachability: any static shortest path becomes a journey by taking, on its
    ``i``-th edge, that edge's label from box ``i``.

    Parameters
    ----------
    graph:
        A connected graph (the construction is meaningless otherwise).
    lifetime:
        Total label range ``q``; must be at least ``d(G)``.
    mode:
        Where inside each box the label is placed: ``"first"`` (deterministic,
        smallest label of the box), ``"middle"`` (deterministic, centre of the
        box) or ``"random"`` (uniform inside the box — the randomised reading
        of the construction used in the Theorem 7 proof).
    seed:
        RNG used only for ``mode="random"``.
    """
    if not is_connected(graph):
        raise GraphError("box_assignment requires a connected graph")
    d = max(diameter(graph), 1)
    q = check_positive_int(lifetime if lifetime is not None else max(graph.n, d), "lifetime")
    if q < d:
        raise LabelingError(
            f"lifetime {q} is smaller than the diameter {d}; the box construction "
            "needs at least one label value per box"
        )
    if mode not in {"first", "middle", "random"}:
        raise ValueError(f"mode must be 'first', 'middle' or 'random', got {mode!r}")
    rng = normalize_rng(seed)

    # Box i (1-based) covers labels ((i-1)*λ, i*λ] with λ = q / d; we work with
    # integer boundaries so every box is non-empty.
    boundaries = np.floor(np.linspace(0, q, d + 1)).astype(np.int64)
    labels: list[tuple[int, ...]] = []
    for _ in range(graph.m):
        edge_labels = []
        for i in range(d):
            low, high = int(boundaries[i]), int(boundaries[i + 1])
            low = max(low, 0)
            if high <= low:
                high = low + 1
            if mode == "first":
                label = low + 1
            elif mode == "middle":
                label = low + max(1, (high - low + 1) // 2)
            else:
                label = int(rng.integers(low + 1, high + 1))
            edge_labels.append(min(label, q))
        labels.append(tuple(sorted(set(edge_labels))))
    return TemporalGraph(graph, labels, lifetime=q)


def tree_broadcast_assignment(
    graph: StaticGraph,
    *,
    root: int = 0,
    lifetime: int | None = None,
) -> TemporalGraph:
    """A deterministic assignment with ``2·(n−1)`` labels preserving reachability.

    A BFS spanning tree rooted at ``root`` is labelled in two phases:

    * *gather phase* — every tree edge at depth ``k`` (the deeper endpoint has
      BFS depth ``k``) gets the label ``H − k + 1`` where ``H`` is the tree
      height, so labels strictly increase along every leaf-to-root path;
    * *scatter phase* — the same edge also gets the label ``H + k``, so labels
      strictly increase along every root-to-leaf path, and every scatter label
      exceeds every gather label.

    Any ordered pair ``(u, v)`` is then connected by the journey
    ``u → root → v``, so the assignment preserves reachability with total
    label count ``2·(n−1)``; non-tree edges receive no labels.  On the star
    this is exactly the paper's optimal assignment with ``OPT = 2m``.

    Raises
    ------
    GraphError
        If the graph is not connected (no spanning tree exists).
    """
    if graph.n == 0:
        raise GraphError("cannot label an empty graph")
    if not is_connected(graph if not graph.directed else graph):
        raise GraphError("tree_broadcast_assignment requires a connected graph")
    depth = bfs_distances(graph, root)
    height = int(depth.max()) if graph.n > 1 else 0

    # Reconstruct BFS tree parents: for each non-root vertex pick a neighbour
    # one level closer to the root.
    labels: dict[int, set[int]] = {}
    for v in range(graph.n):
        if v == root:
            continue
        parent_candidates = [
            int(u) for u in graph.out_neighbors(v) if depth[u] == depth[v] - 1
        ]
        if not parent_candidates:
            raise GraphError(
                "BFS tree reconstruction failed; is the graph connected?"
            )
        parent = min(parent_candidates)
        edge_index = graph.edge_index(parent, v)
        k = int(depth[v])
        gather = height - k + 1
        scatter = height + k
        labels.setdefault(edge_index, set()).update({gather, scatter})

    needed = 2 * height if height > 0 else 1
    a = check_positive_int(
        lifetime if lifetime is not None else max(graph.n, needed), "lifetime"
    )
    if a < needed:
        raise LabelingError(
            f"lifetime {a} is too small for the tree broadcast assignment, "
            f"which needs labels up to {needed}"
        )
    label_list = [tuple(sorted(labels.get(i, ()))) for i in range(graph.m)]
    return TemporalGraph(graph, label_list, lifetime=a)


def assign_deterministic_labels(
    graph: StaticGraph,
    labels: Mapping[tuple[int, int], Sequence[int]],
    *,
    lifetime: int | None = None,
) -> TemporalGraph:
    """Assign explicit labels given as a mapping ``(u, v) → labels``.

    Edges not mentioned in the mapping receive no labels.  Useful in tests and
    for constructing the small, hand-crafted instances used to illustrate the
    paper's definitions.
    """
    per_edge: dict[int, Sequence[int]] = {}
    for (u, v), edge_labels in labels.items():
        per_edge[graph.edge_index(u, v)] = edge_labels
    return TemporalGraph(graph, per_edge, lifetime=lifetime)
