"""Shortest and fastest journeys — the other two classic journey objectives.

The paper's journeys are *foremost* (minimum arrival time, Definition 3); the
dynamic-network literature it builds on (Bui-Xuan, Ferreira & Jarry, cited as
[6]) also studies *shortest* journeys (fewest hops) and *fastest* journeys
(minimum duration, i.e. arrival − departure).  Both are useful companions when
analysing the random temporal clique — e.g. the Expansion Process journeys are
short in hops but not foremost, and the fastest journey quantifies how long a
message actually spends in transit — so the library implements all three.

Algorithms
----------
* :func:`shortest_journey` runs a hop-bounded dynamic programme: for every hop
  count ``k`` it keeps the earliest arrival achievable at each vertex using at
  most ``k`` hops.  Keeping the minimum arrival per vertex is sufficient
  because an earlier arrival can always mimic any continuation of a later one.
* :func:`fastest_journey` scans the possible departure times (the labels of
  the arcs leaving the source) and, for each, reuses the foremost-journey
  kernel restricted to labels strictly greater than ``departure − 1``; the
  best ``arrival − departure`` over all departures is the minimum duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import UnreachableVertexError
from ..types import UNREACHABLE, Journey, TimeEdge
from .journeys import foremost_journey_tree
from .temporal_graph import TemporalGraph

__all__ = ["FastestJourneyResult", "shortest_journey", "fastest_journey"]


def _validate_pair(network: TemporalGraph, source: int, target: int) -> tuple[int, int]:
    n = network.n
    source, target = int(source), int(target)
    for vertex in (source, target):
        if not 0 <= vertex < n:
            raise ValueError(f"vertex {vertex} is not a vertex of a graph with {n} vertices")
    return source, target


def shortest_journey(network: TemporalGraph, source: int, target: int) -> Journey:
    """Return a journey from ``source`` to ``target`` with the fewest hops.

    Ties between equal-hop journeys are broken towards earlier arrival times
    (the dynamic programme tracks the earliest arrival per hop count).

    Raises
    ------
    UnreachableVertexError
        If no journey exists at all.
    """
    source, target = _validate_pair(network, source, target)
    if source == target:
        return Journey(source, target)
    n = network.n
    tails = network.time_arc_tails
    heads = network.time_arc_heads
    labels = network.time_arc_labels
    order = np.argsort(labels, kind="stable")
    sorted_tails = tails[order]
    sorted_heads = heads[order]
    sorted_labels = labels[order]

    # arrival[v] = earliest arrival at v using at most `hops` hops.
    arrival = np.full(n, UNREACHABLE, dtype=np.int64)
    arrival[source] = 0
    predecessor_per_level: list[np.ndarray] = []

    max_hops = min(n - 1, network.num_time_arcs)
    for _ in range(max_hops):
        previous = arrival.copy()
        predecessor = np.full(n, -1, dtype=np.int64)
        # One more hop: sweep arcs in label order against the *previous* level.
        usable = previous[sorted_tails] < sorted_labels
        improving = usable & (sorted_labels < arrival[sorted_heads])
        if improving.any():
            candidate_heads = sorted_heads[improving]
            candidate_arcs = order[improving]
            candidate_labels = sorted_labels[improving]
            # The arcs are label-sorted, so the first occurrence per head is the
            # earliest arrival reachable with this many hops.
            new_heads, first_idx = np.unique(candidate_heads, return_index=True)
            better = candidate_labels[first_idx] < arrival[new_heads]
            new_heads = new_heads[better]
            first_idx = first_idx[better]
            arrival[new_heads] = candidate_labels[first_idx]
            predecessor[new_heads] = candidate_arcs[first_idx]
        predecessor_per_level.append(predecessor)
        if arrival[target] < UNREACHABLE:
            break
        if np.array_equal(previous, arrival):
            break

    if arrival[target] >= UNREACHABLE:
        raise UnreachableVertexError(source, target)

    # Reconstruct backwards through the levels: the target was first reached at
    # the last level appended; walk down one level per hop.
    hops: list[TimeEdge] = []
    current = target
    level = len(predecessor_per_level) - 1
    while current != source:
        arc = -1
        while level >= 0:
            arc = int(predecessor_per_level[level][current])
            if arc >= 0:
                break
            level -= 1
        if arc < 0:
            raise UnreachableVertexError(source, target)
        hops.append(TimeEdge(int(tails[arc]), int(heads[arc]), int(labels[arc])))
        current = int(tails[arc])
        level -= 1
    hops.reverse()
    return Journey(source, target, tuple(hops))


@dataclass(frozen=True, slots=True)
class FastestJourneyResult:
    """A fastest journey together with its duration bookkeeping.

    Attributes
    ----------
    journey:
        The realising journey.
    departure / arrival:
        Label of the first and last hop.
    duration:
        ``arrival − departure + 1``: the number of time steps during which the
        message is in transit (a single-hop journey has duration 1).
    """

    journey: Journey
    departure: int
    arrival: int

    @property
    def duration(self) -> int:
        if self.journey.hops == 0:
            return 0
        return self.arrival - self.departure + 1


def fastest_journey(
    network: TemporalGraph, source: int, target: int
) -> FastestJourneyResult:
    """Return a journey from ``source`` to ``target`` of minimum duration.

    Among journeys of minimum duration, the one with the earliest departure is
    returned.

    Raises
    ------
    UnreachableVertexError
        If no journey exists.
    """
    source, target = _validate_pair(network, source, target)
    if source == target:
        return FastestJourneyResult(Journey(source, target), 0, 0)

    tails = network.time_arc_tails
    labels = network.time_arc_labels
    departure_candidates = np.unique(labels[tails == source])
    if departure_candidates.size == 0:
        raise UnreachableVertexError(source, target)

    best: FastestJourneyResult | None = None
    for departure in departure_candidates.tolist():
        # Restrict to labels >= departure by starting the sweep at departure − 1.
        arrival, predecessor = foremost_journey_tree(
            network, source, start_time=int(departure) - 1
        )
        if arrival[target] >= UNREACHABLE:
            continue
        duration = int(arrival[target]) - int(departure) + 1
        if best is not None and duration >= best.duration:
            continue
        hops: list[TimeEdge] = []
        current = target
        heads = network.time_arc_heads
        while current != source:
            arc = int(predecessor[current])
            hops.append(TimeEdge(int(tails[arc]), int(heads[arc]), int(labels[arc])))
            current = int(tails[arc])
        hops.reverse()
        journey = Journey(source, target, tuple(hops))
        candidate = FastestJourneyResult(
            journey, departure=journey.departure_time, arrival=journey.arrival_time
        )
        if best is None or candidate.duration < best.duration:
            best = candidate

    if best is None:
        raise UnreachableVertexError(source, target)
    return best
