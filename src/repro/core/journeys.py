"""Foremost journeys and temporal distances: single-source and batched kernels.

A *journey* (Definition 2) is a path whose consecutive edge labels strictly
increase; the *foremost* journey to a target minimises the arrival time (the
label of the last edge used — Definition 3), and that minimum arrival time is
the temporal distance δ(u, v).

All kernels share one sweep: process the time arcs one label value at a time,
in ascending label order.  Because labels along a journey must strictly
increase, a vertex whose current earliest arrival is ``τ`` can forward over an
arc labelled ``l`` exactly when ``τ < l``, so a single ordered pass computes
exact earliest arrivals (no Dijkstra priority queue needed for discrete
labels).  The label groups, and the per-group head-run indices the reductions
need, come precomputed from the cached
:class:`~repro.core.timearc_csr.TimeArcCSR` layout
(:attr:`TemporalGraph.timearc_csr`), so no kernel re-sorts the arcs.

Two execution strategies are exposed:

* :func:`earliest_arrival_times` — one source, a length-``n`` arrival vector
  advanced group by group;
* :func:`earliest_arrival_matrix` — the batched engine: an ``(S, n)`` arrival
  matrix for ``S`` sources advanced simultaneously, one vectorised reduction
  per label group regardless of how many sources are in flight.  All-pairs
  consumers (:func:`repro.core.distances.temporal_distance_matrix`, the
  temporal diameter, the Monte-Carlo experiments) route through it.

Both sweeps terminate early once every entry of the arrival state is at most
the current label: arrivals only ever decrease, and a group labelled ``l`` can
only improve entries currently greater than ``l``, so the remaining groups
cannot change anything.  On the paper's normalized clique this cuts the sweep
from ``a = n`` groups to about the temporal diameter ``Θ(log n)`` of them.
A scalar pure-Python reference (:func:`earliest_arrival_times_reference`) is
kept for cross-validation and the ablation benchmark.

The hot loop itself is pluggable: both entry points accept a ``backend=``
keyword naming a registered :mod:`repro.core.kernels` backend (``numpy`` —
the vectorised reference, ``numba`` — JIT-compiled scalar loops, …) and
delegate the group advance to it; with no keyword the registry's ambient
selection applies (process default, ``REPRO_KERNEL_BACKEND``, then the best
available backend).  All backends are pinned bit-identical, so the choice
only affects speed.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..exceptions import UnreachableVertexError
from ..telemetry import active as _telemetry_active
from ..types import UNREACHABLE, Journey, TimeEdge, as_vertex_array
from ..utils.validation import check_non_negative_int
from ._kernel_telemetry import record_sweep as _record_sweep
from .kernels import resolve_backend as _resolve_backend
from .temporal_graph import TemporalGraph

__all__ = [
    "earliest_arrival_times",
    "earliest_arrival_times_reference",
    "earliest_arrival_matrix",
    "foremost_journey",
    "foremost_journey_tree",
    "temporal_distance",
]


def _validate_source(graph_n: int, source: int) -> int:
    source = int(source)
    if not 0 <= source < graph_n:
        raise ValueError(f"source {source} is not a vertex of a graph with {graph_n} vertices")
    return source


def earliest_arrival_times(
    network: TemporalGraph,
    source: int,
    *,
    start_time: int = 0,
    backend: str | None = None,
) -> np.ndarray:
    """Earliest arrival time at every vertex for journeys departing ``source``.

    Parameters
    ----------
    network:
        The temporal network.
    source:
        Source vertex.
    start_time:
        The message only becomes available at ``source`` at this time; only
        arcs with labels strictly greater than ``start_time`` can be used as
        the first hop.  The default 0 allows every label, matching the paper.
    backend:
        Name of the :mod:`repro.core.kernels` backend to run the sweep on;
        ``None`` (the default) uses the ambient selection.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``n``; entry ``v`` is δ(source, v) or
        :data:`~repro.types.UNREACHABLE`.  The source itself has arrival
        ``start_time``.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    kernel = _resolve_backend(backend)
    recs = _telemetry_active()
    sweep_start = time.perf_counter() if recs else 0.0
    arrival = np.full(network.n, UNREACHABLE, dtype=np.int64)
    arrival[source] = start_time
    groups_scanned = 0
    saturated = False
    if network.num_time_arcs != 0:
        csr = network.timearc_csr
        first_group = int(np.searchsorted(csr.labels, start_time, side="right"))
        groups_scanned, saturated = kernel.forward_sweep(
            csr, arrival[:, None], first_group
        )
    if recs:
        _record_sweep(
            recs,
            "kernel.forward",
            start=sweep_start,
            tile_name="sources",
            tile=1,
            groups=groups_scanned,
            saturated=saturated,
            backend=kernel.name,
        )
    return arrival


def earliest_arrival_matrix(
    network: TemporalGraph,
    sources: Sequence[int] | None = None,
    *,
    start_time: int = 0,
    backend: str | None = None,
) -> np.ndarray:
    """Batched earliest arrivals: one label-group sweep for many sources.

    This is the engine behind every all-pairs quantity (temporal distance
    matrix, eccentricities, diameter, radius, average distance).  Instead of
    running ``len(sources)`` independent single-source sweeps it advances the
    whole ``(S, n)`` arrival matrix one label group at a time: for each group
    the per-source "can forward" mask is OR-reduced over the arcs sharing a
    head (``np.logical_or.reduceat`` with indices precomputed in the CSR
    layout), giving a handful of vectorised NumPy operations per label value
    regardless of ``S``.

    Parameters
    ----------
    network:
        The temporal network.
    sources:
        Sources to compute rows for; defaults to all vertices (the all-pairs
        case).
    start_time:
        The message becomes available at every source at this time; arcs
        labelled ``<= start_time`` cannot start a journey.  Default 0.
    backend:
        Name of the :mod:`repro.core.kernels` backend to run the sweep on;
        ``None`` (the default) uses the ambient selection.

    Returns
    -------
    numpy.ndarray
        ``(len(sources), n)`` ``int64`` matrix; entry ``[i, v]`` is the
        earliest arrival at ``v`` from ``sources[i]`` (``start_time`` on the
        source column, :data:`~repro.types.UNREACHABLE` when no journey
        exists).

    See Also
    --------
    earliest_arrival_times : the single-source specialisation.
    repro.core.distances.temporal_distance_matrix : thin wrapper fixing
        ``start_time = 0``.
    """
    n = network.n
    start_time = check_non_negative_int(start_time, "start_time")
    if sources is None:
        source_arr = np.arange(n, dtype=np.int64)
    else:
        source_arr = as_vertex_array(sources, n)
    num_sources = source_arr.size
    kernel = _resolve_backend(backend)
    recs = _telemetry_active()
    sweep_start = time.perf_counter() if recs else 0.0
    # Vertex-major state: row v holds the arrivals at v for every source, so
    # the per-group gathers, segment reductions and scatters all touch
    # contiguous rows (the arcs of a group are sorted by head).
    arrival = np.full((n, num_sources), UNREACHABLE, dtype=np.int64)
    arrival[source_arr, np.arange(num_sources)] = start_time
    groups_scanned = 0
    saturated = False
    if network.num_time_arcs != 0 and num_sources != 0:
        csr = network.timearc_csr
        # Arrivals start at start_time and only ever take values equal to some
        # label strictly greater than a tail's arrival, so groups labelled
        # <= start_time can never be used; skip straight past them.
        first_group = int(np.searchsorted(csr.labels, start_time, side="right"))
        groups_scanned, saturated = kernel.forward_sweep(csr, arrival, first_group)
    if recs:
        _record_sweep(
            recs,
            "kernel.forward",
            start=sweep_start,
            tile_name="sources",
            tile=num_sources,
            groups=groups_scanned,
            saturated=saturated,
            backend=kernel.name,
        )
    return np.ascontiguousarray(arrival.T)


def earliest_arrival_times_reference(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> np.ndarray:
    """Scalar (pure-Python) reference implementation of earliest arrivals.

    Used by the test suite to cross-validate both the vectorised single-source
    kernel and the batched :func:`earliest_arrival_matrix` engine, and by the
    kernel ablation benchmark.  Semantics are identical to
    :func:`earliest_arrival_times`.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    arrival = [UNREACHABLE] * network.n
    arrival[source] = start_time
    arcs = sorted(
        zip(
            network.time_arc_labels.tolist(),
            network.time_arc_tails.tolist(),
            network.time_arc_heads.tolist(),
        )
    )
    index = 0
    total = len(arcs)
    while index < total:
        label = arcs[index][0]
        group_end = index
        while group_end < total and arcs[group_end][0] == label:
            group_end += 1
        updates: list[tuple[int, int]] = []
        for _, tail, head in arcs[index:group_end]:
            if arrival[tail] < label and arrival[head] > label:
                updates.append((head, label))
        for head, label_value in updates:
            if arrival[head] > label_value:
                arrival[head] = label_value
        index = group_end
    return np.asarray(arrival, dtype=np.int64)


def foremost_journey_tree(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Earliest arrivals plus predecessor time arcs for journey reconstruction.

    Returns
    -------
    (arrival, predecessor):
        ``arrival`` is as in :func:`earliest_arrival_times`;
        ``predecessor[v]`` is the index (into the network's time-arc arrays)
        of the arc whose traversal first reached ``v``, or ``−1`` for the
        source and unreachable vertices.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    arrival = np.full(network.n, UNREACHABLE, dtype=np.int64)
    arrival[source] = start_time
    predecessor = np.full(network.n, -1, dtype=np.int64)
    if network.num_time_arcs == 0:
        return arrival, predecessor

    csr = network.timearc_csr
    labels = csr.labels
    offsets = csr.arc_offsets
    tails = csr.tails
    heads = csr.heads
    arc_order = csr.arc_order
    first_group = int(np.searchsorted(labels, start_time, side="right"))
    for group in range(first_group, labels.size):
        label = int(labels[group])
        lo, hi = int(offsets[group]), int(offsets[group + 1])
        group_tails = tails[lo:hi]
        group_heads = heads[lo:hi]
        usable = (arrival[group_tails] < label) & (arrival[group_heads] > label)
        if not usable.any():
            continue
        positions = np.flatnonzero(usable)
        # One arc per newly-improved head; np.unique keeps the first occurrence.
        new_heads, first_idx = np.unique(group_heads[positions], return_index=True)
        arrival[new_heads] = label
        predecessor[new_heads] = arc_order[lo + positions[first_idx]]
        if int(arrival.max()) <= label:
            break
    return arrival, predecessor


def foremost_journey(
    network: TemporalGraph, source: int, target: int, *, start_time: int = 0
) -> Journey:
    """Return a foremost (earliest-arrival) journey from ``source`` to ``target``.

    Raises
    ------
    UnreachableVertexError
        If no journey exists.
    """
    source = _validate_source(network.n, source)
    target = _validate_source(network.n, target)
    if source == target:
        return Journey(source, target)
    arrival, predecessor = foremost_journey_tree(network, source, start_time=start_time)
    if arrival[target] >= UNREACHABLE:
        raise UnreachableVertexError(source, target)

    tails = network.time_arc_tails
    heads = network.time_arc_heads
    labels = network.time_arc_labels
    hops: list[TimeEdge] = []
    current = target
    while current != source:
        arc = int(predecessor[current])
        if arc < 0:
            raise UnreachableVertexError(source, target)
        hops.append(TimeEdge(int(tails[arc]), int(heads[arc]), int(labels[arc])))
        current = int(tails[arc])
    hops.reverse()
    return Journey(source, target, tuple(hops))


def temporal_distance(
    network: TemporalGraph,
    source: int,
    target: int,
    *,
    start_time: int = 0,
    backend: str | None = None,
) -> int:
    """Temporal distance δ(source, target): the foremost journey's arrival time.

    Returns :data:`~repro.types.UNREACHABLE` when no journey exists (rather
    than raising), which keeps Monte-Carlo loops branch-free.
    """
    arrival = earliest_arrival_times(
        network, source, start_time=start_time, backend=backend
    )
    return int(arrival[_validate_source(network.n, target)])
