"""Foremost journeys and temporal distances from a single source.

A *journey* (Definition 2) is a path whose consecutive edge labels strictly
increase; the *foremost* journey to a target minimises the arrival time (the
label of the last edge used — Definition 3), and that minimum arrival time is
the temporal distance δ(u, v).

The kernel processes the time arcs in ascending label order.  Because labels
along a journey must strictly increase, a vertex whose current earliest
arrival is ``τ`` can forward over an arc labelled ``l`` exactly when
``τ < l``; processing one label value at a time therefore computes exact
earliest arrivals in a single sweep (no Dijkstra priority queue needed for
discrete labels).  The sweep is vectorised over each label group, following
the "vectorise the inner loop" guidance of the HPC guides; a scalar reference
implementation is kept for cross-validation and the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import UnreachableVertexError
from ..types import UNREACHABLE, Journey, TimeEdge
from ..utils.validation import check_non_negative_int
from .temporal_graph import TemporalGraph

__all__ = [
    "earliest_arrival_times",
    "earliest_arrival_times_reference",
    "foremost_journey",
    "foremost_journey_tree",
    "temporal_distance",
]


def _validate_source(graph_n: int, source: int) -> int:
    source = int(source)
    if not 0 <= source < graph_n:
        raise ValueError(f"source {source} is not a vertex of a graph with {graph_n} vertices")
    return source


def earliest_arrival_times(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> np.ndarray:
    """Earliest arrival time at every vertex for journeys departing ``source``.

    Parameters
    ----------
    network:
        The temporal network.
    source:
        Source vertex.
    start_time:
        The message only becomes available at ``source`` at this time; only
        arcs with labels strictly greater than ``start_time`` can be used as
        the first hop.  The default 0 allows every label, matching the paper.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``n``; entry ``v`` is δ(source, v) or
        :data:`~repro.types.UNREACHABLE`.  The source itself has arrival
        ``start_time``.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    arrival = np.full(network.n, UNREACHABLE, dtype=np.int64)
    arrival[source] = start_time
    if network.num_time_arcs == 0:
        return arrival

    labels = network.time_arc_labels
    tails = network.time_arc_tails
    heads = network.time_arc_heads
    order = np.argsort(labels, kind="stable")
    labels = labels[order]
    tails = tails[order]
    heads = heads[order]

    unique_labels, group_starts = np.unique(labels, return_index=True)
    group_ends = np.append(group_starts[1:], labels.size)
    for label, lo, hi in zip(unique_labels.tolist(), group_starts.tolist(), group_ends.tolist()):
        group_tails = tails[lo:hi]
        group_heads = heads[lo:hi]
        usable = arrival[group_tails] < label
        if not usable.any():
            continue
        np.minimum.at(arrival, group_heads[usable], label)
    return arrival


def earliest_arrival_times_reference(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> np.ndarray:
    """Scalar (pure-Python) reference implementation of earliest arrivals.

    Used by the test suite to cross-validate the vectorised kernel and by the
    kernel ablation benchmark.  Semantics are identical to
    :func:`earliest_arrival_times`.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    arrival = [UNREACHABLE] * network.n
    arrival[source] = start_time
    arcs = sorted(
        zip(
            network.time_arc_labels.tolist(),
            network.time_arc_tails.tolist(),
            network.time_arc_heads.tolist(),
        )
    )
    index = 0
    total = len(arcs)
    while index < total:
        label = arcs[index][0]
        group_end = index
        while group_end < total and arcs[group_end][0] == label:
            group_end += 1
        updates: list[tuple[int, int]] = []
        for _, tail, head in arcs[index:group_end]:
            if arrival[tail] < label and arrival[head] > label:
                updates.append((head, label))
        for head, label_value in updates:
            if arrival[head] > label_value:
                arrival[head] = label_value
        index = group_end
    return np.asarray(arrival, dtype=np.int64)


def foremost_journey_tree(
    network: TemporalGraph, source: int, *, start_time: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Earliest arrivals plus predecessor time arcs for journey reconstruction.

    Returns
    -------
    (arrival, predecessor):
        ``arrival`` is as in :func:`earliest_arrival_times`;
        ``predecessor[v]`` is the index (into the network's time-arc arrays)
        of the arc whose traversal first reached ``v``, or ``−1`` for the
        source and unreachable vertices.
    """
    source = _validate_source(network.n, source)
    start_time = check_non_negative_int(start_time, "start_time")
    arrival = np.full(network.n, UNREACHABLE, dtype=np.int64)
    arrival[source] = start_time
    predecessor = np.full(network.n, -1, dtype=np.int64)
    if network.num_time_arcs == 0:
        return arrival, predecessor

    labels = network.time_arc_labels
    tails = network.time_arc_tails
    heads = network.time_arc_heads
    order = np.argsort(labels, kind="stable")

    unique_labels, group_starts = np.unique(labels[order], return_index=True)
    group_ends = np.append(group_starts[1:], order.size)
    for label, lo, hi in zip(unique_labels.tolist(), group_starts.tolist(), group_ends.tolist()):
        group = order[lo:hi]
        group_tails = tails[group]
        group_heads = heads[group]
        usable = (arrival[group_tails] < label) & (arrival[group_heads] > label)
        if not usable.any():
            continue
        usable_arcs = group[usable]
        usable_heads = group_heads[usable]
        # One arc per newly-improved head; np.unique keeps the first occurrence.
        new_heads, first_idx = np.unique(usable_heads, return_index=True)
        arrival[new_heads] = label
        predecessor[new_heads] = usable_arcs[first_idx]
    return arrival, predecessor


def foremost_journey(
    network: TemporalGraph, source: int, target: int, *, start_time: int = 0
) -> Journey:
    """Return a foremost (earliest-arrival) journey from ``source`` to ``target``.

    Raises
    ------
    UnreachableVertexError
        If no journey exists.
    """
    source = _validate_source(network.n, source)
    target = _validate_source(network.n, target)
    if source == target:
        return Journey(source, target)
    arrival, predecessor = foremost_journey_tree(network, source, start_time=start_time)
    if arrival[target] >= UNREACHABLE:
        raise UnreachableVertexError(source, target)

    tails = network.time_arc_tails
    heads = network.time_arc_heads
    labels = network.time_arc_labels
    hops: list[TimeEdge] = []
    current = target
    while current != source:
        arc = int(predecessor[current])
        if arc < 0:
            raise UnreachableVertexError(source, target)
        hops.append(TimeEdge(int(tails[arc]), int(heads[arc]), int(labels[arc])))
        current = int(tails[arc])
    hops.reverse()
    return Journey(source, target, tuple(hops))


def temporal_distance(
    network: TemporalGraph, source: int, target: int, *, start_time: int = 0
) -> int:
    """Temporal distance δ(source, target): the foremost journey's arrival time.

    Returns :data:`~repro.types.UNREACHABLE` when no journey exists (rather
    than raising), which keeps Monte-Carlo loops branch-free.
    """
    arrival = earliest_arrival_times(network, source, start_time=start_time)
    return int(arrival[_validate_source(network.n, target)])
